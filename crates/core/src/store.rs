//! Dataset persistence.
//!
//! §3.1: "Each graph is stored in a text file... The final output is an
//! organized list comprising the graph structures along with important
//! metadata like approximate ratio and values for the best cuts." This
//! module mirrors that layout: one `graph_<i>.txt` per instance (the
//! [`qgraph::io`] format) plus a `labels.tsv` index holding the QAOA
//! metadata, so a labeled dataset survives between runs — full-scale
//! labeling is by far the most expensive pipeline stage.
//!
//! The second half of this module is the **checkpoint journal**
//! ([`LabelJournal`], [`Dataset::resume_labeling`]): an append-only,
//! fsync'd record of completed labels that lets the paper-scale labeling
//! run survive interrupts. Every completed label costs one `O(1)` append;
//! `Ctrl-C` at graph 7000 of 9598 costs nothing on restart because resume
//! skips every journaled index, and per-graph RNG substreams make the
//! resumed labels bit-identical to an uninterrupted run.

use std::collections::HashSet;
use std::fs;
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel, ModelWeights, WeightError};
use qaoa::Params;
use qgraph::Graph;

use crate::dataset::{label_graph, Dataset, LabelConfig, LabelReport, LabeledGraph};
use crate::faults;
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::pipeline::PipelineConfig;

/// Name of the index file inside a dataset directory.
pub const INDEX_FILE: &str = "labels.tsv";

fn graph_file_name(index: usize) -> String {
    format!("graph_{index:05}.txt")
}

/// Writes a dataset into `dir` (created if missing): one graph text file
/// per entry plus a `labels.tsv` index.
///
/// # Errors
///
/// Propagates filesystem errors. Existing files are overwritten.
pub fn save_dataset<P: AsRef<Path>>(dataset: &Dataset, dir: P) -> io::Result<()> {
    let dir = dir.as_ref();
    fs::create_dir_all(dir)?;
    let mut index = String::from("file\tdepth\tgammas\tbetas\texpectation\toptimal\tapprox_ratio\n");
    for (i, entry) in dataset.entries.iter().enumerate() {
        let name = graph_file_name(i);
        qgraph::io::write_graph(&entry.graph, dir.join(&name))?;
        let join = |xs: &[f64]| {
            xs.iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        index.push_str(&format!(
            "{name}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            entry.params.depth(),
            join(entry.params.gammas()),
            join(entry.params.betas()),
            entry.expectation,
            entry.optimal,
            entry.approx_ratio,
        ));
    }
    fs::write(dir.join(INDEX_FILE), index)
}

fn invalid<E: std::fmt::Display>(line: usize, message: E) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("labels.tsv line {line}: {message}"),
    )
}

/// Loads a dataset previously written by [`save_dataset`].
///
/// # Errors
///
/// Returns filesystem errors as-is and malformed index/graph files as
/// [`io::ErrorKind::InvalidData`].
pub fn load_dataset<P: AsRef<Path>>(dir: P) -> io::Result<Dataset> {
    let dir = dir.as_ref();
    let index = fs::read_to_string(dir.join(INDEX_FILE))?;
    let mut entries = Vec::new();
    for (i, line) in index.lines().enumerate().skip(1) {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 7 {
            return Err(invalid(lineno, format!("expected 7 fields, got {}", fields.len())));
        }
        let graph = qgraph::io::read_graph(dir.join(fields[0]))?;
        let parse_f64 = |s: &str| s.parse::<f64>().map_err(|e| invalid(lineno, e));
        let parse_vec = |s: &str| -> io::Result<Vec<f64>> {
            s.split(',').map(parse_f64).collect()
        };
        let depth: usize = fields[1].parse().map_err(|e| invalid(lineno, e))?;
        let gammas = parse_vec(fields[2])?;
        let betas = parse_vec(fields[3])?;
        if gammas.len() != depth || betas.len() != depth {
            return Err(invalid(lineno, "angle count does not match depth"));
        }
        entries.push(LabeledGraph {
            graph,
            params: Params::new(gammas, betas),
            expectation: parse_f64(fields[4])?,
            optimal: parse_f64(fields[5])?,
            approx_ratio: parse_f64(fields[6])?,
        });
    }
    Ok(Dataset { entries })
}

// ---------------------------------------------------------------------------
// Checkpoint journal
// ---------------------------------------------------------------------------

/// Name of the journal metadata file inside a checkpoint directory.
pub const JOURNAL_META_FILE: &str = "journal.meta.json";

/// Name of the append-only completed-label record inside a checkpoint
/// directory.
pub const JOURNAL_FILE: &str = "journal.tsv";

/// Journal layout version; bumped on incompatible format changes.
const JOURNAL_VERSION: u64 = 1;

/// Order-sensitive FNV-1a fingerprint of a graph batch: node counts, edge
/// endpoints, and weight bits. A checkpoint records this so a resume
/// against different graphs (or a reordered batch, which would silently
/// shift every RNG substream) is rejected instead of producing garbage.
pub fn fingerprint_graphs(graphs: &[Graph]) -> u64 {
    fingerprint_graph_refs(graphs.iter())
}

/// [`fingerprint_graphs`] over any exact-size graph iterator, so callers
/// holding graphs inside larger records (e.g. [`LabeledGraph`] entries) can
/// fingerprint without cloning the batch.
pub fn fingerprint_graph_refs<'a, I>(graphs: I) -> u64
where
    I: ExactSizeIterator<Item = &'a Graph>,
{
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(graphs.len() as u64);
    for graph in graphs {
        mix(graph.n() as u64);
        for edge in graph.edges() {
            mix(edge.u as u64);
            mix(edge.v as u64);
            mix(edge.weight.to_bits());
        }
    }
    hash
}

fn journal_corrupt<E: std::fmt::Display>(message: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint journal: {message}"))
}

fn journal_line(index: usize, entry: &LabeledGraph) -> String {
    // `{v}` (like `{v:?}`) is the shortest representation that parses back
    // to the same bits, so journaled labels round-trip exactly.
    let join = |xs: &[f64]| {
        xs.iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{index}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        entry.params.depth(),
        join(entry.params.gammas()),
        join(entry.params.betas()),
        entry.expectation,
        entry.optimal,
        entry.approx_ratio,
    )
}

fn parse_journal_line(line: &str, graphs: &[Graph]) -> io::Result<(usize, LabeledGraph)> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 7 {
        return Err(journal_corrupt(format!(
            "expected 7 fields, got {}",
            fields.len()
        )));
    }
    let index: usize = fields[0].parse().map_err(journal_corrupt)?;
    let graph = graphs
        .get(index)
        .ok_or_else(|| journal_corrupt(format!("index {index} out of range")))?;
    let parse_f64 = |s: &str| s.parse::<f64>().map_err(journal_corrupt);
    let parse_vec = |s: &str| -> io::Result<Vec<f64>> { s.split(',').map(parse_f64).collect() };
    let depth: usize = fields[1].parse().map_err(journal_corrupt)?;
    let gammas = parse_vec(fields[2])?;
    let betas = parse_vec(fields[3])?;
    if gammas.len() != depth || betas.len() != depth {
        return Err(journal_corrupt("angle count does not match depth"));
    }
    Ok((
        index,
        LabeledGraph {
            graph: graph.clone(),
            params: Params::new(gammas, betas),
            expectation: parse_f64(fields[4])?,
            optimal: parse_f64(fields[5])?,
            approx_ratio: parse_f64(fields[6])?,
        },
    ))
}

/// An append-only, fsync'd record of completed labels inside a checkpoint
/// directory. Layout:
///
/// - `journal.meta.json` — seed, batch size, graph fingerprint, and the
///   result-affecting labeling config, written once and verified on every
///   reopen so a checkpoint can never be resumed against the wrong run.
/// - `journal.tsv` — one line per completed label (`index`, params,
///   expectation, optimal, approximation ratio), appended and `fsync`'d as
///   each worker finishes a graph. A torn final line (crash mid-append) is
///   detected and truncated on reopen; interior corruption is an error.
/// - `graph_<index>.txt` — the labeled instance, same format as
///   [`save_dataset`], so a checkpoint directory is self-describing.
pub struct LabelJournal {
    dir: PathBuf,
    file: fs::File,
}

impl LabelJournal {
    /// Opens (or creates) the journal in `dir` for labeling `graphs` with
    /// `config` and `seed`, returning the journal plus every label already
    /// completed by a previous run.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] when the directory holds a journal
    /// for a *different* run (mismatched seed, config, batch size, or graph
    /// fingerprint) or an interior-corrupted record; filesystem errors
    /// as-is.
    pub fn open(
        dir: &Path,
        graphs: &[Graph],
        config: &LabelConfig,
        seed: u64,
    ) -> io::Result<(LabelJournal, Vec<(usize, LabeledGraph)>)> {
        fs::create_dir_all(dir)?;
        let meta = Self::meta_json(graphs, config, seed);
        let meta_path = dir.join(JOURNAL_META_FILE);
        if meta_path.exists() {
            let existing = Json::parse(&fs::read_to_string(&meta_path)?)
                .map_err(journal_corrupt)?;
            if existing != meta {
                return Err(journal_corrupt(format!(
                    "{} does not match this run (different seed, config, or graphs); \
                     refusing to resume",
                    JOURNAL_META_FILE
                )));
            }
        } else {
            let mut f = fs::File::create(&meta_path)?;
            f.write_all(meta.to_pretty().as_bytes())?;
            f.sync_data()?;
        }
        let journal_path = dir.join(JOURNAL_FILE);
        let (completed, valid_len) = match fs::read_to_string(&journal_path) {
            Ok(text) => Self::replay(&text, graphs)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => (Vec::new(), 0),
            Err(e) => return Err(e),
        };
        let mut file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(&journal_path)?;
        // Drop a torn tail (crash mid-append) before appending new records.
        file.set_len(valid_len)?;
        file.seek(io::SeekFrom::End(0))?;
        Ok((
            LabelJournal {
                dir: dir.to_path_buf(),
                file,
            },
            completed,
        ))
    }

    /// The result-affecting identity of a labeling run. Thread count is
    /// deliberately excluded: substream RNGs make results independent of
    /// parallelism, so a run may resume with a different worker count.
    fn meta_json(graphs: &[Graph], config: &LabelConfig, seed: u64) -> Json {
        Json::Obj(vec![
            ("version".to_string(), Json::uint(JOURNAL_VERSION)),
            ("seed".to_string(), Json::uint(seed)),
            ("count".to_string(), Json::uint(graphs.len() as u64)),
            (
                "fingerprint".to_string(),
                Json::uint(fingerprint_graphs(graphs)),
            ),
            ("depth".to_string(), Json::uint(config.depth as u64)),
            (
                "iterations".to_string(),
                Json::uint(config.iterations as u64),
            ),
        ])
    }

    /// Replays journal text into completed labels, returning them plus the
    /// byte length of the valid prefix. Unterminated trailing bytes are a
    /// torn append and are dropped; a malformed *terminated* line means the
    /// journal was corrupted in place and is an error.
    fn replay(text: &str, graphs: &[Graph]) -> io::Result<(Vec<(usize, LabeledGraph)>, u64)> {
        let mut completed = Vec::new();
        let mut seen = HashSet::new();
        let mut valid_len = 0u64;
        let mut offset = 0usize;
        while let Some(newline) = text[offset..].find('\n') {
            let line = &text[offset..offset + newline];
            offset += newline + 1;
            let (index, entry) = parse_journal_line(line, graphs)?;
            if seen.insert(index) {
                completed.push((index, entry));
            }
            valid_len = offset as u64;
        }
        Ok((completed, valid_len))
    }

    /// Records one completed label: writes the graph file, appends the
    /// label line, and `fsync`s so the record survives a crash. Called from
    /// the worker that produced the label.
    ///
    /// # Errors
    ///
    /// Filesystem errors; the labeling engine aborts the batch on the first
    /// one (a silently broken journal would defeat the checkpoint).
    pub fn append(&mut self, index: usize, entry: &LabeledGraph) -> io::Result<()> {
        if faults::fire_may_panic(faults::JOURNAL_IO).is_some() {
            return Err(io::Error::other("fault injected: journal_io"));
        }
        qgraph::io::write_graph(&entry.graph, self.dir.join(graph_file_name(index)))?;
        self.file.write_all(journal_line(index, entry).as_bytes())?;
        self.file.sync_data()
    }

    /// The checkpoint directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Dataset {
    /// Labels `graphs` through the checked engine, journaling every
    /// completed label into `dir` and skipping any index a previous
    /// (interrupted) run already journaled there. First call with an empty
    /// `dir` is simply a checkpointed run; subsequent calls resume.
    ///
    /// Because every graph's label is computed on an RNG substream derived
    /// only from `(seed, index)`, an interrupted-and-resumed run returns a
    /// dataset bit-identical (`==`) to a straight-through
    /// [`Dataset::label_graphs_checked`] with the same seed and config.
    ///
    /// # Errors
    ///
    /// Journal verification and filesystem errors (see
    /// [`LabelJournal::open`] and [`LabelJournal::append`]).
    pub fn resume_labeling(
        dir: &Path,
        graphs: &[Graph],
        config: &LabelConfig,
        seed: u64,
    ) -> io::Result<(Dataset, LabelReport)> {
        let (journal, done) = LabelJournal::open(dir, graphs, config, seed)?;
        let done_indices: HashSet<usize> = done.iter().map(|&(i, _)| i).collect();
        let todo: Vec<usize> = (0..graphs.len())
            .filter(|i| !done_indices.contains(i))
            .collect();
        let journal = Mutex::new(journal);
        let (mut labeled, failures) = crate::dataset::label_indices_checked(
            &|g, c, r| label_graph(g, c, r),
            graphs,
            &todo,
            config,
            seed,
            &|index, entry| journal.lock().expect("journal lock").append(index, entry),
        )?;
        labeled.extend(done);
        Ok(Dataset::assemble(graphs.len(), labeled, failures))
    }
}

// ---------------------------------------------------------------------------
// Run artifacts
// ---------------------------------------------------------------------------

/// The `format` tag every run artifact carries.
pub const ARTIFACT_FORMAT: &str = "qaoa-gnn-run-artifact";

/// Current artifact schema version; bumped on incompatible changes.
pub const ARTIFACT_VERSION: u64 = 1;

/// The artifact's section names, in serialization order. Every section is
/// individually checksummed.
const ARTIFACT_SECTIONS: [&str; 5] = ["config", "weights", "history", "label_report", "dataset"];

/// FNV-1a over raw bytes — the artifact's per-section integrity hash (the
/// same function family as [`fingerprint_graphs`], applied to serialized
/// section text instead of graph structure).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Flushes a directory so a rename inside it is durable. Some filesystems
/// refuse to open a directory for writing; `sync_all` on a read handle is
/// the portable spelling.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// The crash-safe write protocol every persisted file in this module uses:
/// write `path.tmp`, fsync it, fire `failpoint`, rename over `path`, fsync
/// the parent directory. A crash (or SIGKILL) at any instant leaves either
/// the previous file or the new one on disk — the rename is the single
/// commit point. Parent directories are created.
fn write_atomic(path: &Path, bytes: &[u8], failpoint: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_data()?;
    drop(file);
    // Between flush and rename: the widest window where a crash must leave
    // the previous file untouched. `Stall` parks here so a chaos harness
    // can SIGKILL into it deterministically.
    if faults::fire_may_panic(failpoint).is_some() {
        let _ = fs::remove_file(&tmp);
        return Err(io::Error::other(format!("fault injected: {failpoint}")));
    }
    fs::rename(&tmp, path)?;
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => fsync_dir(parent),
        _ => fsync_dir(Path::new(".")),
    }
}

/// The distribution a model was trained on, recorded inside its artifact
/// so a serving layer can tell in-distribution requests from
/// out-of-envelope ones (§3.1: the paper trains on 2–15-node graphs;
/// Jain et al., arXiv:2111.03016, show GNN warm-starts degrade
/// out-of-distribution).
///
/// Besides the envelope bounds, the mean *canonical* training label is
/// recorded: it is the natural "interpolated" fallback initialization when
/// the model itself cannot be trusted for a request.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingEnvelope {
    /// Smallest node count seen in training.
    pub min_nodes: usize,
    /// Largest node count seen in training.
    pub max_nodes: usize,
    /// Largest node degree seen in training.
    pub max_degree: usize,
    /// Input feature dimensionality the model was built for.
    pub feature_dim: usize,
    /// Mean canonical γ over the training labels.
    pub mean_gamma: f64,
    /// Mean canonical β over the training labels.
    pub mean_beta: f64,
}

/// How a request graph falls outside a [`TrainingEnvelope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvelopeViolation {
    /// The graph's node count is outside the trained range.
    NodeCount {
        /// Request graph's node count.
        n: usize,
        /// Trained minimum.
        min: usize,
        /// Trained maximum.
        max: usize,
    },
    /// The graph's maximum degree exceeds anything seen in training.
    Degree {
        /// Request graph's maximum degree.
        max_degree: usize,
        /// Trained maximum degree.
        trained_max: usize,
    },
}

impl std::fmt::Display for EnvelopeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeViolation::NodeCount { n, min, max } => {
                write!(f, "{n} nodes outside trained range [{min}, {max}]")
            }
            EnvelopeViolation::Degree {
                max_degree,
                trained_max,
            } => write!(
                f,
                "max degree {max_degree} exceeds trained maximum {trained_max}"
            ),
        }
    }
}

impl std::error::Error for EnvelopeViolation {}

impl TrainingEnvelope {
    /// Computes the envelope of a (training) dataset for a model whose
    /// input width is `feature_dim`. Returns `None` for an empty dataset —
    /// there is no envelope to speak of.
    pub fn from_dataset(dataset: &Dataset, feature_dim: usize) -> Option<TrainingEnvelope> {
        if dataset.entries.is_empty() {
            return None;
        }
        let mut min_nodes = usize::MAX;
        let mut max_nodes = 0usize;
        let mut max_degree = 0usize;
        let mut sum_gamma = 0.0;
        let mut sum_beta = 0.0;
        for entry in &dataset.entries {
            min_nodes = min_nodes.min(entry.graph.n());
            max_nodes = max_nodes.max(entry.graph.n());
            max_degree = max_degree.max(entry.graph.max_degree());
            let canonical = entry.params.canonical();
            sum_gamma += canonical.gammas()[0];
            sum_beta += canonical.betas()[0];
        }
        let count = dataset.entries.len() as f64;
        Some(TrainingEnvelope {
            min_nodes,
            max_nodes,
            max_degree,
            feature_dim,
            mean_gamma: sum_gamma / count,
            mean_beta: sum_beta / count,
        })
    }

    /// Checks a request graph against the envelope.
    ///
    /// # Errors
    ///
    /// The first [`EnvelopeViolation`], checked node count then degree.
    pub fn check(&self, graph: &Graph) -> Result<(), EnvelopeViolation> {
        let n = graph.n();
        if n < self.min_nodes || n > self.max_nodes {
            return Err(EnvelopeViolation::NodeCount {
                n,
                min: self.min_nodes,
                max: self.max_nodes,
            });
        }
        let max_degree = graph.max_degree();
        if max_degree > self.max_degree {
            return Err(EnvelopeViolation::Degree {
                max_degree,
                trained_max: self.max_degree,
            });
        }
        Ok(())
    }

    /// The mean canonical training label `(γ̄, β̄)` — the interpolated
    /// fallback initialization.
    pub fn mean_label(&self) -> (f64, f64) {
        (self.mean_gamma, self.mean_beta)
    }
}

/// Why a run artifact failed to load. Every corruption mode maps to a
/// variant — loading never panics on bad input.
#[derive(Debug)]
pub enum ArtifactError {
    /// A filesystem operation failed.
    Io(io::Error),
    /// The file is not valid JSON or a section failed to decode.
    Json(JsonError),
    /// The file is JSON but not a run artifact.
    Format {
        /// The `format` value found (empty when absent).
        found: String,
    },
    /// The artifact was written by an unsupported schema version.
    Version {
        /// Version the file declares.
        found: u64,
        /// Version this build reads.
        supported: u64,
    },
    /// A required section or its checksum is missing.
    MissingSection(&'static str),
    /// A section's content does not match its stored checksum.
    ChecksumMismatch {
        /// Which section failed verification.
        section: &'static str,
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum of the section as found.
        computed: u64,
    },
    /// The weights decoded but do not fit the declared architecture.
    Weights(WeightError),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact io: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact decode: {e}"),
            ArtifactError::Format { found } => write!(
                f,
                "not a run artifact: format '{found}' (expected '{ARTIFACT_FORMAT}')"
            ),
            ArtifactError::Version { found, supported } => write!(
                f,
                "unsupported artifact version {found} (this build reads {supported})"
            ),
            ArtifactError::MissingSection(section) => {
                write!(f, "artifact is missing section '{section}'")
            }
            ArtifactError::ChecksumMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "artifact section '{section}' is corrupt: checksum {computed:#018x} \
                 does not match stored {stored:#018x}"
            ),
            ArtifactError::Weights(e) => write!(f, "artifact weights: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Json(e) => Some(e),
            ArtifactError::Weights(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<JsonError> for ArtifactError {
    fn from(e: JsonError) -> Self {
        ArtifactError::Json(e)
    }
}

impl From<WeightError> for ArtifactError {
    fn from(e: WeightError) -> Self {
        ArtifactError::Weights(e)
    }
}

/// A whole training run as one self-describing file: the configuration that
/// produced it, the trained weights (bit-exact), the training history, the
/// labeling report, and a fingerprint of the dataset it was trained on.
///
/// The on-disk layout is versioned JSON:
///
/// ```text
/// {
///   "format": "qaoa-gnn-run-artifact",
///   "version": 1,
///   "sections": { "config": …, "weights": …, "history": …,
///                 "label_report": …, "dataset": {"fingerprint": …} },
///   "checksums": { "<section>": <fnv1a of the section's compact JSON> }
/// }
/// ```
///
/// [`RunArtifact::load`] verifies format, version, and every checksum
/// before decoding, and validates the weights against the declared
/// architecture before any model is constructed — a corrupted, truncated,
/// or mismatched-architecture file fails with a typed [`ArtifactError`],
/// never a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArtifact {
    /// The pipeline configuration the run used.
    pub config: PipelineConfig,
    /// The trained model: architecture, hyper-parameters, and parameters.
    pub weights: ModelWeights,
    /// What training did, epoch by epoch.
    pub history: TrainHistory,
    /// What the labeling stage reported.
    pub label_report: LabelReport,
    /// [`fingerprint_graphs`] of the raw labeled dataset.
    pub dataset_fingerprint: u64,
    /// The training distribution the weights are trustworthy on; `None`
    /// for artifacts written before envelopes existed (the serving layer
    /// then treats every request as out-of-envelope-unknown and says so).
    pub envelope: Option<TrainingEnvelope>,
}

impl RunArtifact {
    /// Builds the artifact's JSON tree, checksumming each section.
    pub fn to_json(&self) -> Json {
        let mut sections: Vec<(String, Json)> = vec![
            ("config".to_string(), self.config.to_json()),
            ("weights".to_string(), self.weights.to_json()),
            ("history".to_string(), self.history.to_json()),
            ("label_report".to_string(), self.label_report.to_json()),
            (
                "dataset".to_string(),
                Json::Obj(vec![(
                    "fingerprint".to_string(),
                    Json::uint(self.dataset_fingerprint),
                )]),
            ),
        ];
        if let Some(envelope) = &self.envelope {
            sections.push(("envelope".to_string(), envelope.to_json()));
        }
        let checksums: Vec<(String, Json)> = sections
            .iter()
            .map(|(name, value)| {
                (
                    name.clone(),
                    Json::uint(fnv1a_bytes(value.to_compact().as_bytes())),
                )
            })
            .collect();
        Json::Obj(vec![
            ("format".to_string(), Json::Str(ARTIFACT_FORMAT.to_string())),
            ("version".to_string(), Json::uint(ARTIFACT_VERSION)),
            ("sections".to_string(), Json::Obj(sections)),
            ("checksums".to_string(), Json::Obj(checksums)),
        ])
    }

    /// Decodes and fully validates an artifact from its JSON tree.
    ///
    /// # Errors
    ///
    /// See [`ArtifactError`]; checks run in order format → version →
    /// section presence → checksums → section decode → weight validation.
    pub fn from_json(json: &Json) -> Result<Self, ArtifactError> {
        let format = json
            .get_opt("format")
            .ok()
            .flatten()
            .and_then(|v| v.as_str().ok())
            .unwrap_or("");
        if format != ARTIFACT_FORMAT {
            return Err(ArtifactError::Format {
                found: format.to_string(),
            });
        }
        let version = json.get("version")?.as_u64()?;
        if version != ARTIFACT_VERSION {
            return Err(ArtifactError::Version {
                found: version,
                supported: ARTIFACT_VERSION,
            });
        }
        let sections = json.get("sections")?;
        let checksums = json.get("checksums")?;
        let mut verified: Vec<&Json> = Vec::with_capacity(ARTIFACT_SECTIONS.len());
        for name in ARTIFACT_SECTIONS {
            let section = sections
                .get_opt(name)?
                .ok_or(ArtifactError::MissingSection(name))?;
            let stored = checksums
                .get_opt(name)?
                .ok_or(ArtifactError::MissingSection(name))?
                .as_u64()?;
            // Parsing is lossless (shortest-round-trip floats, exact
            // integers), so re-serializing the parsed section reproduces
            // the exact bytes the writer hashed.
            let computed = fnv1a_bytes(section.to_compact().as_bytes());
            if computed != stored {
                return Err(ArtifactError::ChecksumMismatch {
                    section: name,
                    stored,
                    computed,
                });
            }
            verified.push(section);
        }
        // The envelope section is optional (added after version 1 shipped)
        // but checksummed like every other section when present.
        let envelope = match sections.get_opt("envelope")? {
            Some(section) => {
                let stored = checksums
                    .get_opt("envelope")?
                    .ok_or(ArtifactError::MissingSection("envelope"))?
                    .as_u64()?;
                let computed = fnv1a_bytes(section.to_compact().as_bytes());
                if computed != stored {
                    return Err(ArtifactError::ChecksumMismatch {
                        section: "envelope",
                        stored,
                        computed,
                    });
                }
                Some(TrainingEnvelope::from_json(section)?)
            }
            None => None,
        };
        let weights = ModelWeights::from_json(verified[1])?;
        weights.validate()?;
        Ok(RunArtifact {
            config: PipelineConfig::from_json(verified[0])?,
            weights,
            history: TrainHistory::from_json(verified[2])?,
            label_report: LabelReport::from_json(verified[3])?,
            dataset_fingerprint: verified[4].get("fingerprint")?.as_u64()?,
            envelope,
        })
    }

    /// Writes the artifact to `path` (pretty-printed, fsync'd; parent
    /// directories are created) **atomically**: the bytes go to a `*.tmp`
    /// sibling first and only a durable rename publishes them, so a crash
    /// at any instant leaves either the previous artifact or the new one —
    /// never a torn file.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or an injected [`faults::ARTIFACT_SAVE`] failure
    /// (fired between tmp-write and rename; the previous artifact
    /// survives).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut bytes = self.to_json().to_pretty().into_bytes();
        bytes.push(b'\n');
        write_atomic(path.as_ref(), &bytes, faults::ARTIFACT_SAVE)
    }

    /// Reads and fully validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`]: missing file, malformed JSON, wrong format or
    /// version, failed checksum, undecodable section, or weights that do
    /// not fit the declared architecture.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<RunArtifact, ArtifactError> {
        if faults::fire_may_panic(faults::ARTIFACT_LOAD).is_some() {
            return Err(ArtifactError::Io(io::Error::other(
                "fault injected: artifact_load",
            )));
        }
        let text = fs::read_to_string(path)?;
        let json = Json::parse(&text)?;
        Self::from_json(&json)
    }

    /// Reconstructs the trained model (see [`ModelWeights::build_model`]);
    /// its predictions are bit-identical to the model that was saved.
    ///
    /// # Errors
    ///
    /// [`WeightError`] when the weights do not fit the declared
    /// architecture (already checked by [`Self::load`], so this only fails
    /// on artifacts mutated in memory).
    pub fn build_model(&self) -> Result<GnnModel, WeightError> {
        self.weights.build_model()
    }

    /// The architecture this artifact's model uses.
    pub fn kind(&self) -> GnnKind {
        self.weights.kind
    }
}

/// Derives a per-architecture artifact path from a base path by inserting
/// the architecture slug before the extension: `run.json` + GAT →
/// `run.gat.json` (or appended when there is no extension). Lets the bench
/// bins save all four architectures from one `--artifact` flag without
/// overwriting.
pub fn artifact_path_for_kind(base: &Path, kind: GnnKind) -> PathBuf {
    let slug = kind_slug(kind);
    match (base.file_stem(), base.extension()) {
        (Some(stem), Some(ext)) => base.with_file_name(format!(
            "{}.{slug}.{}",
            stem.to_string_lossy(),
            ext.to_string_lossy()
        )),
        _ => base.with_file_name(format!(
            "{}.{slug}",
            base.file_name().map(|n| n.to_string_lossy()).unwrap_or_default()
        )),
    }
}

fn kind_slug(kind: GnnKind) -> &'static str {
    match kind {
        GnnKind::Gcn => "gcn",
        GnnKind::Gat => "gat",
        GnnKind::Gin => "gin",
        GnnKind::Sage => "sage",
    }
}

// ---------------------------------------------------------------------------
// Training checkpoints
// ---------------------------------------------------------------------------

/// The `format` tag every training checkpoint carries.
pub const TRAIN_CHECKPOINT_FORMAT: &str = "qaoa-gnn-train-checkpoint";

/// Current training-checkpoint schema version.
pub const TRAIN_CHECKPOINT_VERSION: u64 = 1;

/// The checkpoint's section names, in serialization order.
const TRAIN_CHECKPOINT_SECTIONS: [&str; 2] = ["meta", "state"];

/// Where a run's training checkpoint for `kind` lives inside a checkpoint
/// directory: `train.<slug>.ckpt.json`, one file per architecture so the
/// experiment binaries can train all four in one directory.
pub fn train_checkpoint_path(dir: &Path, kind: GnnKind) -> PathBuf {
    dir.join(format!("train.{}.ckpt.json", kind_slug(kind)))
}

/// The result-affecting identity of a training run, used to bind a
/// [`TrainCheckpoint`] to exactly one `(config, architecture, dataset, RNG
/// position)` tuple. Operational knobs that cannot change results —
/// checkpoint/artifact paths, checkpoint stride, worker-thread counts —
/// are normalized out, so a run may resume with different parallelism or a
/// relocated artifact path; anything else differing means the checkpoint
/// belongs to another run and resuming would silently mix them.
pub fn train_identity(
    kind: GnnKind,
    config: &PipelineConfig,
    dataset_fingerprint: u64,
    rng_state: [u64; 4],
) -> u64 {
    let mut normalized = config.clone();
    normalized.checkpoint_dir = None;
    normalized.artifact_path = None;
    normalized.checkpoint_every = 0;
    normalized.labeling.threads = 0;
    normalized.labeling.sim_threads = 0;
    let mut hash = fnv1a_bytes(normalized.to_json().to_compact().as_bytes());
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(fnv1a_bytes(kind_slug(kind).as_bytes()));
    mix(dataset_fingerprint);
    for word in rng_state {
        mix(word);
    }
    hash
}

/// A mid-training snapshot as one self-describing, checksummed file: the
/// architecture it belongs to, the [`train_identity`] binding it to its
/// run, and the full [`gnn::train::TrainState`] (parameters, Adam moments,
/// scheduler state, divergence-guard snapshot, epoch shuffle, RNG words,
/// history). Written atomically after epoch boundaries so SIGKILL at any
/// instant leaves a loadable checkpoint, and a relaunched run continues
/// bit-identically to one that was never killed.
///
/// The on-disk layout mirrors [`RunArtifact`]:
///
/// ```text
/// {
///   "format": "qaoa-gnn-train-checkpoint",
///   "version": 1,
///   "sections": { "meta": {"kind": …, "identity": …}, "state": … },
///   "checksums": { "<section>": <fnv1a of the section's compact JSON> }
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// The architecture being trained.
    pub kind: GnnKind,
    /// [`train_identity`] of the run that wrote this checkpoint.
    pub identity: u64,
    /// The captured training-loop state.
    pub state: gnn::train::TrainState,
}

impl TrainCheckpoint {
    /// Builds the checkpoint's JSON tree, checksumming each section.
    pub fn to_json(&self) -> Json {
        let sections: Vec<(String, Json)> = vec![
            (
                "meta".to_string(),
                Json::Obj(vec![
                    ("kind".to_string(), self.kind.to_json()),
                    ("identity".to_string(), Json::uint(self.identity)),
                ]),
            ),
            ("state".to_string(), self.state.to_json()),
        ];
        let checksums: Vec<(String, Json)> = sections
            .iter()
            .map(|(name, value)| {
                (
                    name.clone(),
                    Json::uint(fnv1a_bytes(value.to_compact().as_bytes())),
                )
            })
            .collect();
        Json::Obj(vec![
            (
                "format".to_string(),
                Json::Str(TRAIN_CHECKPOINT_FORMAT.to_string()),
            ),
            ("version".to_string(), Json::uint(TRAIN_CHECKPOINT_VERSION)),
            ("sections".to_string(), Json::Obj(sections)),
            ("checksums".to_string(), Json::Obj(checksums)),
        ])
    }

    /// Decodes and fully validates a checkpoint from its JSON tree.
    ///
    /// # Errors
    ///
    /// See [`ArtifactError`]; checks run format → version → section
    /// presence → checksums → section decode, so a torn, truncated, or
    /// bit-flipped file fails typed, never by panic.
    pub fn from_json(json: &Json) -> Result<Self, ArtifactError> {
        let format = json
            .get_opt("format")
            .ok()
            .flatten()
            .and_then(|v| v.as_str().ok())
            .unwrap_or("");
        if format != TRAIN_CHECKPOINT_FORMAT {
            return Err(ArtifactError::Format {
                found: format.to_string(),
            });
        }
        let version = json.get("version")?.as_u64()?;
        if version != TRAIN_CHECKPOINT_VERSION {
            return Err(ArtifactError::Version {
                found: version,
                supported: TRAIN_CHECKPOINT_VERSION,
            });
        }
        let sections = json.get("sections")?;
        let checksums = json.get("checksums")?;
        let mut verified: Vec<&Json> = Vec::with_capacity(TRAIN_CHECKPOINT_SECTIONS.len());
        for name in TRAIN_CHECKPOINT_SECTIONS {
            let section = sections
                .get_opt(name)?
                .ok_or(ArtifactError::MissingSection(name))?;
            let stored = checksums
                .get_opt(name)?
                .ok_or(ArtifactError::MissingSection(name))?
                .as_u64()?;
            let computed = fnv1a_bytes(section.to_compact().as_bytes());
            if computed != stored {
                return Err(ArtifactError::ChecksumMismatch {
                    section: name,
                    stored,
                    computed,
                });
            }
            verified.push(section);
        }
        Ok(TrainCheckpoint {
            kind: GnnKind::from_json(verified[0].get("kind")?)?,
            identity: verified[0].get("identity")?.as_u64()?,
            state: gnn::train::TrainState::from_json(verified[1])?,
        })
    }

    /// Writes the checkpoint to `path` atomically (tmp + fsync + rename +
    /// parent-dir fsync): a crash mid-write leaves the previous checkpoint,
    /// a crash after the rename leaves this one — never a torn file.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or an injected [`faults::CHECKPOINT_WRITE`]
    /// failure (fired between tmp-write and rename).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut bytes = self.to_json().to_pretty().into_bytes();
        bytes.push(b'\n');
        write_atomic(path.as_ref(), &bytes, faults::CHECKPOINT_WRITE)
    }

    /// Reads and fully validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`]: missing file, malformed JSON, wrong format or
    /// version, failed checksum, or an undecodable section.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<TrainCheckpoint, ArtifactError> {
        let text = fs::read_to_string(path)?;
        let json = Json::parse(&text)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabelConfig;
    use qgraph::generate::DatasetSpec;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("qaoa_gnn_store_tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dataset = Dataset::generate(
            &DatasetSpec::with_count(6),
            &LabelConfig::quick(30),
            17,
        )
        .unwrap();
        let dir = temp_dir("round_trip");
        save_dataset(&dataset, &dir).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert_eq!(dataset, back);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn directory_layout_matches_paper_description() {
        let dataset = Dataset::generate(
            &DatasetSpec::with_count(3),
            &LabelConfig::quick(20),
            18,
        )
        .unwrap();
        let dir = temp_dir("layout");
        save_dataset(&dataset, &dir).unwrap();
        assert!(dir.join("graph_00000.txt").is_file());
        assert!(dir.join("graph_00002.txt").is_file());
        assert!(dir.join(INDEX_FILE).is_file());
        let index = fs::read_to_string(dir.join(INDEX_FILE)).unwrap();
        assert!(index.starts_with("file\tdepth"));
        assert_eq!(index.lines().count(), 4); // header + 3 rows
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_dir_is_io_error() {
        assert!(load_dataset("/definitely/not/a/dataset").is_err());
    }

    #[test]
    fn load_rejects_malformed_index() {
        let dir = temp_dir("malformed");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(INDEX_FILE), "file\tdepth\nonly_two\tfields\n").unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn journal_graphs(seed: u64, count: usize) -> Vec<qgraph::Graph> {
        use qrand::SeedableRng;
        let mut rng = qrand::rngs::StdRng::seed_from_u64(seed);
        (0..count)
            .map(|i| qgraph::generate::erdos_renyi(4 + i % 4, 0.6, &mut rng).unwrap())
            .collect()
    }

    #[test]
    fn journaled_run_matches_straight_through() {
        let graphs = journal_graphs(30, 6);
        let config = LabelConfig::quick(25);
        let dir = temp_dir("journal_clean");
        let (journaled, report) = Dataset::resume_labeling(&dir, &graphs, &config, 77).unwrap();
        let (straight, _) = Dataset::label_graphs_checked(&graphs, &config, 77);
        assert_eq!(journaled, straight);
        assert!(report.is_complete());
        // Layout: meta + journal + one graph file per entry.
        assert!(dir.join(JOURNAL_META_FILE).is_file());
        let journal = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        assert_eq!(journal.lines().count(), graphs.len());
        assert!(dir.join("graph_00000.txt").is_file());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_resume_is_bit_identical_and_free() {
        let graphs = journal_graphs(31, 6);
        let config = LabelConfig::quick(25);
        let dir = temp_dir("journal_resume");
        // Full checkpointed run, then simulate a kill at the halfway point
        // by keeping only the first half of the journal lines.
        let (straight, _) = Dataset::resume_labeling(&dir, &graphs, &config, 78).unwrap();
        let journal_path = dir.join(JOURNAL_FILE);
        let full = fs::read_to_string(&journal_path).unwrap();
        let half: String = full
            .lines()
            .take(graphs.len() / 2)
            .flat_map(|l| [l, "\n"])
            .collect();
        fs::write(&journal_path, &half).unwrap();
        let (resumed, report) = Dataset::resume_labeling(&dir, &graphs, &config, 78).unwrap();
        assert_eq!(resumed, straight, "resume must be bit-identical");
        assert!(report.is_complete());
        assert_eq!(report.labeled, graphs.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_final_line_is_dropped_and_recomputed() {
        let graphs = journal_graphs(32, 5);
        let config = LabelConfig::quick(25);
        let dir = temp_dir("journal_torn");
        let (straight, _) = Dataset::resume_labeling(&dir, &graphs, &config, 79).unwrap();
        // Chop the journal mid-line: a crash between write and fsync.
        let journal_path = dir.join(JOURNAL_FILE);
        let full = fs::read(&journal_path).unwrap();
        fs::write(&journal_path, &full[..full.len() - 7]).unwrap();
        let (resumed, report) = Dataset::resume_labeling(&dir, &graphs, &config, 79).unwrap();
        assert_eq!(resumed, straight);
        assert!(report.is_complete());
        // The journal is whole again after the resume.
        let again = fs::read(&journal_path).unwrap();
        assert_eq!(again.len(), full.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_rejects_mismatched_run() {
        let graphs = journal_graphs(33, 4);
        let config = LabelConfig::quick(25);
        let dir = temp_dir("journal_mismatch");
        Dataset::resume_labeling(&dir, &graphs, &config, 80).unwrap();
        // Different seed: refuse.
        let err = Dataset::resume_labeling(&dir, &graphs, &config, 81).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Different graphs (reordered batch shifts every substream): refuse.
        let mut reordered = graphs.clone();
        reordered.swap(0, 1);
        let err = Dataset::resume_labeling(&dir, &reordered, &config, 80).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Different iteration budget: refuse.
        let err =
            Dataset::resume_labeling(&dir, &graphs, &LabelConfig::quick(26), 80).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The matching run still resumes (as a no-op).
        let (ds, report) = Dataset::resume_labeling(&dir, &graphs, &config, 80).unwrap();
        assert_eq!(ds.len(), graphs.len());
        assert!(report.is_complete());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_rejects_interior_corruption() {
        let graphs = journal_graphs(34, 4);
        let config = LabelConfig::quick(25);
        let dir = temp_dir("journal_interior");
        Dataset::resume_labeling(&dir, &graphs, &config, 82).unwrap();
        let journal_path = dir.join(JOURNAL_FILE);
        let full = fs::read_to_string(&journal_path).unwrap();
        let mut lines: Vec<&str> = full.lines().collect();
        lines[1] = "garbage\tnot\ta\trecord";
        let corrupted: String = lines.iter().flat_map(|l| [*l, "\n"]).collect();
        fs::write(&journal_path, corrupted).unwrap();
        let err = Dataset::resume_labeling(&dir, &graphs, &config, 82).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_is_order_and_structure_sensitive() {
        let graphs = journal_graphs(35, 3);
        let mut reordered = graphs.clone();
        reordered.swap(0, 2);
        assert_ne!(fingerprint_graphs(&graphs), fingerprint_graphs(&reordered));
        assert_eq!(fingerprint_graphs(&graphs), fingerprint_graphs(&graphs.clone()));
        assert_ne!(
            fingerprint_graphs(&graphs),
            fingerprint_graphs(&graphs[..2])
        );
    }

    fn tiny_artifact(kind: GnnKind, seed: u64) -> RunArtifact {
        use qrand::SeedableRng;
        let mut rng = qrand::rngs::StdRng::seed_from_u64(seed);
        let config = gnn::ModelConfig {
            hidden_dim: 4,
            ..gnn::ModelConfig::default()
        };
        let model = GnnModel::new(kind, config, &mut rng);
        RunArtifact {
            config: PipelineConfig::quick(),
            weights: model.export_weights(),
            history: TrainHistory::default(),
            label_report: LabelReport::clean(3),
            dataset_fingerprint: fingerprint_graphs(&journal_graphs(seed, 3)),
            envelope: None,
        }
    }

    #[test]
    fn artifact_save_load_round_trips() {
        let dir = temp_dir("artifact_round_trip");
        for (i, &kind) in GnnKind::ALL.iter().enumerate() {
            let artifact = tiny_artifact(kind, 400 + i as u64);
            let path = artifact_path_for_kind(&dir.join("run.json"), kind);
            artifact.save(&path).unwrap();
            let back = RunArtifact::load(&path).unwrap();
            assert_eq!(artifact, back, "{kind}");
            assert_eq!(back.kind(), kind);
            let g = qgraph::Graph::cycle(5).unwrap();
            assert_eq!(
                artifact.build_model().unwrap().predict(&g),
                back.build_model().unwrap().predict(&g)
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn envelope_round_trips_and_is_checksummed() {
        let mut artifact = tiny_artifact(GnnKind::Gat, 420);
        artifact.envelope = Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 7,
            feature_dim: 16,
            mean_gamma: 1.25,
            mean_beta: 0.5,
        });
        let dir = temp_dir("artifact_envelope");
        let path = dir.join("run.json");
        artifact.save(&path).unwrap();
        let back = RunArtifact::load(&path).unwrap();
        assert_eq!(artifact, back);
        // Tampering with the envelope section is caught like any other.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"max_degree\": 7", "\"max_degree\": 99");
        assert_ne!(text, tampered);
        fs::write(&path, tampered).unwrap();
        match RunArtifact::load(&path) {
            Err(ArtifactError::ChecksumMismatch { section: "envelope", .. }) => {}
            other => panic!("expected envelope checksum mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn envelope_from_dataset_records_bounds_and_mean_label() {
        use crate::dataset::LabelConfig;
        let dataset = Dataset::generate(
            &qgraph::generate::DatasetSpec::with_count(8),
            &LabelConfig::quick(20),
            21,
        )
        .unwrap();
        let env = TrainingEnvelope::from_dataset(&dataset, 16).unwrap();
        assert!(env.min_nodes <= env.max_nodes);
        assert!(env.max_degree < env.max_nodes);
        assert_eq!(env.feature_dim, 16);
        let (g, b) = env.mean_label();
        assert!(g.is_finite() && b.is_finite());
        // Canonical means live in the principal domain.
        assert!((0.0..=std::f64::consts::TAU).contains(&g));
        assert!((0.0..=std::f64::consts::FRAC_PI_2).contains(&b));
        // In-envelope graphs pass, out-of-envelope ones name the violation.
        assert!(env.check(&dataset.entries[0].graph).is_ok());
        let big = qgraph::Graph::cycle(env.max_nodes + 5).unwrap();
        assert!(matches!(
            env.check(&big),
            Err(EnvelopeViolation::NodeCount { .. })
        ));
        // Empty dataset: no envelope.
        assert!(TrainingEnvelope::from_dataset(&Dataset { entries: vec![] }, 16).is_none());
    }

    #[test]
    fn artifact_load_missing_file_is_io() {
        match RunArtifact::load("/definitely/not/an/artifact.json") {
            Err(ArtifactError::Io(_)) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn artifact_rejects_wrong_format_and_version() {
        match RunArtifact::from_json(&Json::parse(r#"{"hello": 1}"#).unwrap()) {
            Err(ArtifactError::Format { found }) => assert!(found.is_empty()),
            other => panic!("expected Format error, got {other:?}"),
        }
        let mut json = tiny_artifact(GnnKind::Gcn, 410).to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "version" {
                    *v = Json::uint(99);
                }
            }
        }
        match RunArtifact::from_json(&json) {
            Err(ArtifactError::Version { found: 99, supported }) => {
                assert_eq!(supported, ARTIFACT_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn artifact_detects_tampered_section() {
        let dir = temp_dir("artifact_tamper");
        let path = dir.join("run.json");
        tiny_artifact(GnnKind::Gin, 411).save(&path).unwrap();
        // Flip one weight digit without updating the checksum.
        let text = fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("0.0", "0.5", 1);
        assert_ne!(text, tampered, "fixture must contain a 0.0 to tamper");
        fs::write(&path, tampered).unwrap();
        match RunArtifact::load(&path) {
            Err(ArtifactError::ChecksumMismatch { .. } | ArtifactError::Json(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn artifact_rejects_arch_mismatch_typed() {
        // Declare GAT but carry GCN-shaped parameters: the weight validator
        // must reject before any model exists.
        let mut artifact = tiny_artifact(GnnKind::Gcn, 412);
        artifact.weights.kind = GnnKind::Gat;
        let dir = temp_dir("artifact_mismatch");
        let path = dir.join("run.json");
        artifact.save(&path).unwrap();
        match RunArtifact::load(&path) {
            Err(ArtifactError::Weights(
                WeightError::ParamCount { .. } | WeightError::ShapeMismatch { .. },
            )) => {}
            other => panic!("expected Weights error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn artifact_rejects_missing_section() {
        let mut json = tiny_artifact(GnnKind::Sage, 413).to_json();
        if let Json::Obj(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "sections" {
                    if let Json::Obj(sections) = v {
                        sections.retain(|(name, _)| name != "history");
                    }
                }
            }
        }
        match RunArtifact::from_json(&json) {
            Err(ArtifactError::MissingSection("history")) => {}
            other => panic!("expected MissingSection, got {other:?}"),
        }
    }

    #[test]
    fn artifact_path_per_kind_is_distinct() {
        let base = PathBuf::from("/tmp/runs/model.json");
        let paths: Vec<PathBuf> = GnnKind::ALL
            .iter()
            .map(|&k| artifact_path_for_kind(&base, k))
            .collect();
        assert_eq!(paths[1], PathBuf::from("/tmp/runs/model.gcn.json"));
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Extension-less base still gets a distinct name.
        assert_eq!(
            artifact_path_for_kind(&PathBuf::from("model"), GnnKind::Gat),
            PathBuf::from("model.gat")
        );
    }

    #[test]
    fn load_rejects_depth_mismatch() {
        let dir = temp_dir("depth_mismatch");
        fs::create_dir_all(&dir).unwrap();
        let g = qgraph::Graph::cycle(3).unwrap();
        qgraph::io::write_graph(&g, dir.join("graph_00000.txt")).unwrap();
        fs::write(
            dir.join(INDEX_FILE),
            "file\tdepth\tgammas\tbetas\texpectation\toptimal\tapprox_ratio\n\
             graph_00000.txt\t2\t0.5\t0.2\t1.0\t2.0\t0.5\n",
        )
        .unwrap();
        let err = load_dataset(&dir).unwrap_err();
        assert!(err.to_string().contains("does not match depth"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
