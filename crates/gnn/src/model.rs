use qrand::Rng;

use qgraph::features::FeatureConfig;
use qgraph::Graph;
use tensor::{Matrix, Tape, Tensor};

use crate::GraphContext;

/// The four GNN architectures benchmarked by the paper (§3.2, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnnKind {
    /// Graph Convolutional Network (Kipf & Welling) — Eqs. 2/5.
    Gcn,
    /// Graph Attention Network (Veličković et al.) — Eqs. 6–7.
    Gat,
    /// Graph Isomorphism Network (Xu et al.) — Eq. 8.
    Gin,
    /// GraphSAGE with max pooling (Hamilton et al.) — Eqs. 3–4.
    Sage,
}

impl GnnKind {
    /// All four benchmarked architectures, in the paper's table order.
    pub const ALL: [GnnKind; 4] = [GnnKind::Gat, GnnKind::Gcn, GnnKind::Gin, GnnKind::Sage];
}

impl std::fmt::Display for GnnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GnnKind::Gcn => write!(f, "GCN"),
            GnnKind::Gat => write!(f, "GAT"),
            GnnKind::Gin => write!(f, "GIN"),
            GnnKind::Sage => write!(f, "GraphSAGE"),
        }
    }
}

/// The graph-level READOUT of Eq. 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Readout {
    /// Mean pooling over node embeddings (the paper's choice, §3.2).
    #[default]
    Mean,
    /// Sum pooling (size-sensitive; GIN's canonical readout).
    Sum,
    /// Elementwise max pooling.
    Max,
}

/// Model hyper-parameters; the default mirrors §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Node-feature layout (degree + one-hot, §3.1).
    pub features: FeatureConfig,
    /// Embedding width (paper: 32).
    pub hidden_dim: usize,
    /// Number of message-passing layers (paper: 2).
    pub layers: usize,
    /// Dropout applied after every GNN layer during training (paper: 0.5).
    pub dropout: f64,
    /// Negative slope of GAT's LeakyReLU (standard: 0.2).
    pub leaky_slope: f64,
    /// GIN's ε (Eq. 8); fixed rather than learned.
    pub gin_eps: f64,
    /// Graph-level readout (Eq. 9; paper: mean).
    pub readout: Readout,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            features: FeatureConfig::default(),
            hidden_dim: 32,
            layers: 2,
            dropout: 0.5,
            leaky_slope: 0.2,
            gin_eps: 0.0,
            readout: Readout::Mean,
        }
    }
}

/// Per-layer trainable parameters.
#[derive(Debug, Clone)]
enum Layer {
    Gcn {
        w: Tensor,
    },
    Gat {
        w: Tensor,
        a_src: Tensor,
        a_dst: Tensor,
    },
    Gin {
        w1: Tensor,
        b1: Tensor,
        w2: Tensor,
        b2: Tensor,
    },
    Sage {
        w_pool: Tensor,
        b_pool: Tensor,
        w: Tensor,
    },
}

/// A GNN-based (γ, β) predictor: message-passing encoder, mean-pooling
/// readout (Eq. 9) and a two-layer MLP head with sigmoid outputs in the
/// normalized angle square `[0,1]²`.
#[derive(Debug, Clone)]
pub struct GnnModel {
    tape: Tape,
    kind: GnnKind,
    config: ModelConfig,
    layers: Vec<Layer>,
    head_w1: Tensor,
    head_b1: Tensor,
    head_w2: Tensor,
    head_b2: Tensor,
    params: Vec<Tensor>,
}

impl GnnModel {
    /// Creates a model with Xavier-initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`, `hidden_dim == 0` or `dropout` is outside
    /// `[0, 1)`.
    pub fn new<R: Rng + ?Sized>(kind: GnnKind, config: ModelConfig, rng: &mut R) -> Self {
        assert!(config.layers >= 1, "need at least one GNN layer");
        assert!(config.hidden_dim >= 1, "hidden_dim must be positive");
        assert!(
            (0.0..1.0).contains(&config.dropout),
            "dropout must be in [0, 1)"
        );
        let tape = Tape::new();
        let mut params: Vec<Tensor> = Vec::new();
        let track = |t: Tensor, params: &mut Vec<Tensor>| -> Tensor {
            params.push(t.clone());
            t
        };

        let mut layers = Vec::with_capacity(config.layers);
        let mut in_dim = config.features.dim();
        for _ in 0..config.layers {
            let out_dim = config.hidden_dim;
            let layer = match kind {
                GnnKind::Gcn => Layer::Gcn {
                    w: track(
                        tape.parameter(Matrix::xavier_uniform(in_dim, out_dim, rng)),
                        &mut params,
                    ),
                },
                GnnKind::Gat => Layer::Gat {
                    w: track(
                        tape.parameter(Matrix::xavier_uniform(in_dim, out_dim, rng)),
                        &mut params,
                    ),
                    a_src: track(
                        tape.parameter(Matrix::xavier_uniform(out_dim, 1, rng)),
                        &mut params,
                    ),
                    a_dst: track(
                        tape.parameter(Matrix::xavier_uniform(out_dim, 1, rng)),
                        &mut params,
                    ),
                },
                GnnKind::Gin => Layer::Gin {
                    w1: track(
                        tape.parameter(Matrix::xavier_uniform(in_dim, out_dim, rng)),
                        &mut params,
                    ),
                    b1: track(tape.parameter(Matrix::zeros(1, out_dim)), &mut params),
                    w2: track(
                        tape.parameter(Matrix::xavier_uniform(out_dim, out_dim, rng)),
                        &mut params,
                    ),
                    b2: track(tape.parameter(Matrix::zeros(1, out_dim)), &mut params),
                },
                GnnKind::Sage => Layer::Sage {
                    w_pool: track(
                        tape.parameter(Matrix::xavier_uniform(in_dim, out_dim, rng)),
                        &mut params,
                    ),
                    b_pool: track(tape.parameter(Matrix::zeros(1, out_dim)), &mut params),
                    // Combination W [h_v, a_v] (Eq. 4): input 2·dims.
                    w: track(
                        tape.parameter(Matrix::xavier_uniform(in_dim + out_dim, out_dim, rng)),
                        &mut params,
                    ),
                },
            };
            layers.push(layer);
            in_dim = config.hidden_dim;
        }

        let head_w1 = track(
            tape.parameter(Matrix::xavier_uniform(config.hidden_dim, config.hidden_dim, rng)),
            &mut params,
        );
        let head_b1 = track(tape.parameter(Matrix::zeros(1, config.hidden_dim)), &mut params);
        let head_w2 = track(
            tape.parameter(Matrix::xavier_uniform(config.hidden_dim, 2, rng)),
            &mut params,
        );
        let head_b2 = track(tape.parameter(Matrix::zeros(1, 2)), &mut params);

        GnnModel {
            tape,
            kind,
            config,
            layers,
            head_w1,
            head_b1,
            head_w2,
            head_b2,
            params,
        }
    }

    /// The architecture kind.
    pub fn kind(&self) -> GnnKind {
        self.kind
    }

    /// The hyper-parameter configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The underlying tape (exposed for the training loop).
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// All trainable parameter handles.
    pub fn parameters(&self) -> &[Tensor] {
        &self.params
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                r * c
            })
            .sum()
    }

    /// Saves all trainable parameters to a text checkpoint.
    ///
    /// Architecture and hyper-parameters are *not* stored; to restore,
    /// construct a model with the same [`GnnKind`] and [`ModelConfig`] and
    /// call [`Self::load_params`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_params<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let values: Vec<Matrix> = self.params.iter().map(Tensor::value).collect();
        tensor::io::write_params(&values, path)
    }

    /// Restores parameters from a checkpoint written by
    /// [`Self::save_params`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file is unreadable, malformed, or the
    /// parameter count/shapes do not match this model's architecture.
    pub fn load_params<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let values = tensor::io::read_params(path)?;
        if values.len() != self.params.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "checkpoint has {} parameters, model expects {}",
                    values.len(),
                    self.params.len()
                ),
            ));
        }
        for (param, value) in self.params.iter().zip(&values) {
            if param.shape() != value.shape() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "parameter shape mismatch: checkpoint {:?}, model {:?}",
                        value.shape(),
                        param.shape()
                    ),
                ));
            }
        }
        for (param, value) in self.params.iter().zip(values) {
            param.set_value(value);
        }
        Ok(())
    }

    /// In-memory copy of every trainable parameter — the file-free
    /// counterpart of [`Self::save_params`], used by the training loop to
    /// keep the best-epoch weights restorable after a divergence.
    pub fn snapshot(&self) -> Vec<Matrix> {
        self.params.iter().map(Tensor::value).collect()
    }

    /// Restores parameters from a [`Self::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's parameter count or shapes do not match
    /// this model (snapshots are only valid for the model they came from).
    pub fn restore(&self, snapshot: &[Matrix]) {
        if let Err(e) = self.try_restore(snapshot) {
            match e {
                crate::WeightError::ParamCount { .. } => {
                    panic!("snapshot parameter count mismatch: {e}")
                }
                _ => panic!("snapshot shape mismatch: {e}"),
            }
        }
    }

    /// Non-panicking [`Self::restore`]: validates the snapshot against this
    /// model's architecture before touching any parameter, so a foreign or
    /// corrupted snapshot (e.g. from a stale training checkpoint) leaves the
    /// model untouched and surfaces as a typed [`crate::WeightError`].
    ///
    /// # Errors
    ///
    /// [`crate::WeightError::ParamCount`] if the matrix count differs,
    /// [`crate::WeightError::ShapeMismatch`] on the first shape conflict.
    pub fn try_restore(&self, snapshot: &[Matrix]) -> Result<(), crate::WeightError> {
        if snapshot.len() != self.params.len() {
            return Err(crate::WeightError::ParamCount {
                expected: self.params.len(),
                found: snapshot.len(),
            });
        }
        for (index, (param, value)) in self.params.iter().zip(snapshot).enumerate() {
            if param.shape() != value.shape() {
                return Err(crate::WeightError::ShapeMismatch {
                    index,
                    expected: param.shape(),
                    found: value.shape(),
                });
            }
        }
        for (param, value) in self.params.iter().zip(snapshot) {
            param.set_value(value.clone());
        }
        Ok(())
    }

    /// Broadcast-adds a `1 × d` bias over every row of `h`.
    fn add_bias(&self, h: &Tensor, bias: &Tensor, rows: usize) -> Tensor {
        let ones = self.tape.constant(Matrix::ones(rows, 1));
        h.add(&ones.matmul(bias))
    }

    fn forward_layer(&self, layer: &Layer, h: &Tensor, ctx: &GraphContext) -> Tensor {
        let n = ctx.num_nodes;
        match layer {
            // Eq. 5: h' = ReLU(Â H W).
            Layer::Gcn { w } => {
                let a = self.tape.constant(ctx.norm_adj.clone());
                a.matmul(h).matmul(w).relu()
            }
            // Eqs. 6–7: attention scores over neighbors, masked softmax,
            // weighted aggregation.
            Layer::Gat { w, a_src, a_dst } => {
                let z = h.matmul(w); // n × d
                let s_src = z.matmul(a_src); // n × 1
                let s_dst = z.matmul(a_dst); // n × 1
                let ones_row = self.tape.constant(Matrix::ones(1, n));
                let ones_col = self.tape.constant(Matrix::ones(n, 1));
                // scores[v][u] = s_src[v] + s_dst[u]
                let scores = s_src
                    .matmul(&ones_row)
                    .add(&ones_col.matmul(&s_dst.transpose()))
                    .leaky_relu(self.config.leaky_slope);
                let alpha = scores.masked_row_softmax(&ctx.adj_mask);
                alpha.matmul(&z).relu()
            }
            // Eq. 8: h' = MLP((A + (1+ε)I) H).
            Layer::Gin { w1, b1, w2, b2 } => {
                let g = self.tape.constant(ctx.gin_matrix.clone());
                let agg = g.matmul(h);
                let hidden = self.add_bias(&agg.matmul(w1), b1, n).relu();
                self.add_bias(&hidden.matmul(w2), b2, n).relu()
            }
            // Eqs. 3–4: a_v = max over neighbors of ReLU(W_pool h_u);
            // h' = W [h_v, a_v].
            Layer::Sage { w_pool, b_pool, w } => {
                let m = self.add_bias(&h.matmul(w_pool), b_pool, n).relu();
                let agg = m.neighbor_max(&ctx.neighbors);
                h.concat_cols(&agg).matmul(w).relu()
            }
        }
    }

    /// Full forward pass: returns the `1 × 2` normalized prediction tensor
    /// (differentiable; used by the trainer).
    pub fn forward<R: Rng + ?Sized>(&self, ctx: &GraphContext, rng: &mut R) -> Tensor {
        let mut h = self.tape.constant(ctx.features.clone());
        for layer in &self.layers {
            h = self.forward_layer(layer, &h, ctx);
            if self.config.dropout > 0.0 {
                h = h.dropout(self.config.dropout, rng);
            }
        }
        // Eq. 9 readout, then the MLP head.
        let n = ctx.num_nodes;
        let pooled = match self.config.readout {
            Readout::Mean => h.mean_rows(),
            Readout::Sum => h.mean_rows().scale(n as f64),
            // Column-wise max: a single pseudo-node whose "neighbors" are
            // every row reuses the neighbor-max kernel.
            Readout::Max => {
                let all: std::rc::Rc<Vec<Vec<usize>>> =
                    std::rc::Rc::new(vec![(0..n).collect()]);
                h.neighbor_max(&all)
            }
        }; // 1 × hidden
        let hidden = self
            .add_bias(&pooled.matmul(&self.head_w1), &self.head_b1, 1)
            .relu();
        self.add_bias(&hidden.matmul(&self.head_w2), &self.head_b2, 1)
            .sigmoid()
    }

    /// Inference: predicts `(γ, β)` for a graph with dropout disabled and
    /// without touching gradients. Angles are denormalized to
    /// `γ ∈ [0, 2π]`, `β ∈ [0, π/2]` (the canonical Max-Cut domain).
    pub fn predict(&self, graph: &Graph) -> (f64, f64) {
        let ctx = GraphContext::new(graph, &self.config.features, self.config.gin_eps);
        self.predict_ctx(&ctx)
    }

    /// [`Self::predict`] for a prebuilt context.
    pub fn predict_ctx(&self, ctx: &GraphContext) -> (f64, f64) {
        let was_training = self.tape.is_training();
        self.tape.set_training(false);
        // Restore the training flag and drop the forward graph even when
        // the pass unwinds: a caller that catches the panic (e.g. a serving
        // layer isolating one bad request) must get the model back in a
        // usable state, not stuck in eval mode with a half-built tape.
        struct Restore<'a> {
            tape: &'a Tape,
            was_training: bool,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.tape.set_training(self.was_training);
                self.tape.reset();
            }
        }
        let _restore = Restore {
            tape: &self.tape,
            was_training,
        };
        // Dropout is disabled, so the RNG is never consulted; a trivial
        // deterministic generator keeps the signature honest.
        let mut rng = qrand::rngs::mock::StepRng::new(0, 1);
        let out = self.forward(ctx, &mut rng).value();
        crate::denormalize_target([out[(0, 0)], out[(0, 1)]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn all_models(seed: u64) -> Vec<GnnModel> {
        let mut rng = StdRng::seed_from_u64(seed);
        GnnKind::ALL
            .iter()
            .map(|&k| GnnModel::new(k, ModelConfig::default(), &mut rng))
            .collect()
    }

    #[test]
    fn forward_shapes_and_ranges() {
        let g = Graph::cycle(7).unwrap();
        for model in all_models(91) {
            let (gamma, beta) = model.predict(&g);
            assert!(
                (0.0..=std::f64::consts::TAU).contains(&gamma),
                "{}: gamma {gamma}",
                model.kind()
            );
            assert!(
                (0.0..=std::f64::consts::FRAC_PI_2).contains(&beta),
                "{}: beta {beta}",
                model.kind()
            );
        }
    }

    #[test]
    fn predict_is_deterministic_in_eval_mode() {
        let g = Graph::complete(5).unwrap();
        for model in all_models(92) {
            let a = model.predict(&g);
            let b = model.predict(&g);
            assert_eq!(a, b, "{}", model.kind());
        }
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        let g = Graph::complete(4).unwrap();
        let mut rng = StdRng::seed_from_u64(93);
        for &kind in &GnnKind::ALL {
            // Dropout off so no parameter is masked out by chance.
            let config = ModelConfig {
                dropout: 0.0,
                ..ModelConfig::default()
            };
            let model = GnnModel::new(kind, config, &mut rng);
            let ctx = GraphContext::new(&g, &model.config().features, 0.0);
            let out = model.forward(&ctx, &mut rng);
            let loss = out.mse(&Matrix::from_rows(&[&[0.9, 0.1]]));
            model.tape().backward(&loss);
            for (i, p) in model.parameters().iter().enumerate() {
                assert!(
                    p.grad().max_abs() > 0.0,
                    "{kind:?}: parameter {i} received no gradient"
                );
            }
            model.tape().reset();
        }
    }

    #[test]
    fn handles_all_dataset_sizes() {
        // Every size the dataset contains (2–15 nodes) must forward cleanly,
        // including graphs with isolated structure.
        let mut rng = StdRng::seed_from_u64(94);
        let model = GnnModel::new(GnnKind::Gat, ModelConfig::default(), &mut rng);
        for n in 2..=15 {
            let g = Graph::path(n).unwrap();
            let (gamma, beta) = model.predict(&g);
            assert!(gamma.is_finite() && beta.is_finite(), "n={n}");
        }
    }

    #[test]
    fn parameter_counts_scale_with_config() {
        let mut rng = StdRng::seed_from_u64(95);
        let small = GnnModel::new(
            GnnKind::Gcn,
            ModelConfig {
                hidden_dim: 8,
                ..ModelConfig::default()
            },
            &mut rng,
        );
        let big = GnnModel::new(
            GnnKind::Gcn,
            ModelConfig {
                hidden_dim: 64,
                ..ModelConfig::default()
            },
            &mut rng,
        );
        assert!(big.num_parameters() > small.num_parameters());
        assert!(small.num_parameters() > 0);
    }

    #[test]
    fn all_readouts_forward_and_differ() {
        let g = Graph::star(6).unwrap();
        let mut predictions = Vec::new();
        for readout in [Readout::Mean, Readout::Sum, Readout::Max] {
            // Same seed ⇒ same weights; only the readout differs.
            let mut rng = StdRng::seed_from_u64(90);
            let model = GnnModel::new(
                GnnKind::Gcn,
                ModelConfig {
                    readout,
                    ..ModelConfig::default()
                },
                &mut rng,
            );
            let (gamma, beta) = model.predict(&g);
            assert!(gamma.is_finite() && beta.is_finite(), "{readout:?}");
            predictions.push((gamma, beta));
        }
        // Star with 6 nodes: sum != mean (n > 1) and max != mean generically.
        assert_ne!(predictions[0], predictions[1]);
        assert_ne!(predictions[0], predictions[2]);
    }

    #[test]
    fn readout_permutation_invariance() {
        // With degree-only features (no one-hot), relabeling nodes must not
        // change the graph-level prediction, whatever the readout.
        use qrand::seq::SliceRandom;
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)]).unwrap();
        let mut perm: Vec<usize> = (0..6).collect();
        perm.shuffle(&mut StdRng::seed_from_u64(7));
        let relabeled = g.relabel(&perm);
        for readout in [Readout::Mean, Readout::Sum, Readout::Max] {
            let mut rng = StdRng::seed_from_u64(91);
            // Degree-only features (one-hot disabled): the model sees only
            // permutation-invariant inputs.
            let config = ModelConfig {
                readout,
                dropout: 0.0,
                features: qgraph::features::FeatureConfig {
                    one_hot_dim: 0,
                    include_degree: true,
                },
                ..ModelConfig::default()
            };
            let model = GnnModel::new(GnnKind::Gin, config, &mut rng);
            let a = model.predict(&g);
            let b = model.predict(&relabeled);
            assert!(
                (a.0 - b.0).abs() < 1e-9 && (a.1 - b.1).abs() < 1e-9,
                "{readout:?}: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn save_load_round_trips_predictions() {
        let dir = std::env::temp_dir().join("gnn_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gin.ckpt");
        let g = Graph::complete(5).unwrap();

        let mut rng = StdRng::seed_from_u64(97);
        let original = GnnModel::new(GnnKind::Gin, ModelConfig::default(), &mut rng);
        let want = original.predict(&g);
        original.save_params(&path).unwrap();

        // A differently initialized model converges to the same predictions
        // after loading.
        let mut rng2 = StdRng::seed_from_u64(98);
        let restored = GnnModel::new(GnnKind::Gin, ModelConfig::default(), &mut rng2);
        assert_ne!(restored.predict(&g), want, "fresh init should differ");
        restored.load_params(&path).unwrap();
        assert_eq!(restored.predict(&g), want);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn load_rejects_architecture_mismatch() {
        let dir = std::env::temp_dir().join("gnn_model_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gcn.ckpt");
        let mut rng = StdRng::seed_from_u64(99);
        let gcn = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        gcn.save_params(&path).unwrap();
        let gat = GnnModel::new(GnnKind::Gat, ModelConfig::default(), &mut rng);
        assert!(gat.load_params(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn snapshot_restore_round_trips_predictions() {
        let g = Graph::complete(5).unwrap();
        let mut rng = StdRng::seed_from_u64(100);
        let model = GnnModel::new(GnnKind::Sage, ModelConfig::default(), &mut rng);
        let want = model.predict(&g);
        let snapshot = model.snapshot();
        // Clobber every parameter, then restore.
        for p in model.parameters() {
            let (r, c) = p.shape();
            p.set_value(Matrix::zeros(r, c));
        }
        assert_ne!(model.predict(&g), want, "clobbered model should differ");
        model.restore(&snapshot);
        assert_eq!(model.predict(&g), want);
    }

    #[test]
    #[should_panic(expected = "snapshot parameter count")]
    fn restore_rejects_foreign_snapshot() {
        let mut rng = StdRng::seed_from_u64(101);
        let gcn = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let gin = GnnModel::new(GnnKind::Gin, ModelConfig::default(), &mut rng);
        gcn.restore(&gin.snapshot());
    }

    #[test]
    fn try_restore_rejects_without_mutating() {
        let g = Graph::complete(5).unwrap();
        let mut rng = StdRng::seed_from_u64(102);
        let gcn = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let gin = GnnModel::new(GnnKind::Gin, ModelConfig::default(), &mut rng);
        let before = gcn.predict(&g);
        match gcn.try_restore(&gin.snapshot()) {
            Err(crate::WeightError::ParamCount { .. }) => {}
            other => panic!("expected ParamCount error, got {other:?}"),
        }
        // Same count, wrong shape: a snapshot with one matrix transposed.
        let mut warped = gcn.snapshot();
        warped[0] = warped[0].transpose();
        match gcn.try_restore(&warped) {
            Err(crate::WeightError::ShapeMismatch { index: 0, .. }) => {}
            other => panic!("expected ShapeMismatch at 0, got {other:?}"),
        }
        assert_eq!(gcn.predict(&g), before, "failed restore must not mutate");
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(GnnKind::Gcn.to_string(), "GCN");
        assert_eq!(GnnKind::Gat.to_string(), "GAT");
        assert_eq!(GnnKind::Gin.to_string(), "GIN");
        assert_eq!(GnnKind::Sage.to_string(), "GraphSAGE");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_layers_rejected() {
        let mut rng = StdRng::seed_from_u64(96);
        let _ = GnnModel::new(
            GnnKind::Gcn,
            ModelConfig {
                layers: 0,
                ..ModelConfig::default()
            },
            &mut rng,
        );
    }
}
