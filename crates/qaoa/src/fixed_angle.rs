//! The fixed-angle conjecture for regular Max-Cut QAOA (§3.3).
//!
//! Wurtz & Lykov (Phys. Rev. A 104, 052419, 2021) observed that angles
//! optimized on the degree-d *tree subgraph* transfer to every d-regular
//! graph with near-optimal performance, removing per-instance optimization.
//! The paper consulted a published lookup covering degrees 3–11; here the
//! angles are *derived* rather than shipped: for p=1 the tree objective has
//! the closed form in [`crate::analytic::regular_tree_edge_expectation`]
//! whose maximizer is known analytically:
//!
//! ```text
//! β* = π/8,   γ* = arctan(1 / sqrt(d - 1))     (d > 1)
//! ```
//!
//! [`fixed_angles`] returns those closed-form angles and
//! [`tree_edge_value`] evaluates the tree objective at arbitrary angles
//! (used by the tests to confirm the closed form really is the maximizer).


use crate::analytic::regular_tree_edge_expectation;
use crate::Params;

/// Degree range the paper's external lookup covered (§3.3: "regular graphs
/// with degrees ranging from 3 to 11").
pub const LOOKUP_DEGREES: std::ops::RangeInclusive<usize> = 3..=11;

/// A fixed-angle entry for one degree.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedAngles {
    /// Regular-graph degree the angles were derived for.
    pub degree: usize,
    /// The p=1 parameters `(γ*, β*)`.
    pub params: Params,
    /// Per-edge tree-subgraph expectation at the fixed angles.
    pub tree_edge_value: f64,
}

/// Returns the p=1 fixed angles for a d-regular graph.
///
/// For `d = 1` the single-edge objective is maximized at `γ = π/2, β = π/8`;
/// for `d ≥ 2` the closed-form tree maximizer `γ* = arctan(1/√(d-1))`,
/// `β* = π/8` is used.
///
/// # Panics
///
/// Panics if `degree == 0` (no edges — nothing to fix).
pub fn fixed_angles(degree: usize) -> FixedAngles {
    assert!(degree >= 1, "fixed angles require degree >= 1");
    let beta = std::f64::consts::PI / 8.0;
    let gamma = if degree == 1 {
        std::f64::consts::FRAC_PI_2
    } else {
        (1.0 / ((degree - 1) as f64).sqrt()).atan()
    };
    let tree_edge_value = regular_tree_edge_expectation(gamma, beta, degree);
    FixedAngles {
        degree,
        params: Params::new(vec![gamma], vec![beta]),
        tree_edge_value,
    }
}

/// Evaluates the degree-d tree objective at arbitrary p=1 angles — the
/// function the conjecture maximizes.
///
/// # Panics
///
/// Panics if `degree == 0`.
pub fn tree_edge_value(degree: usize, gamma: f64, beta: f64) -> f64 {
    regular_tree_edge_expectation(gamma, beta, degree)
}

/// The fixed-angle table over the degree range the paper's lookup covered.
pub fn lookup_table() -> Vec<FixedAngles> {
    LOOKUP_DEGREES.map(fixed_angles).collect()
}

/// Returns fixed angles for a graph if it is regular with degree inside
/// [`LOOKUP_DEGREES`], mirroring the paper's partial coverage ("about 6% of
/// our dataset").
pub fn for_graph(graph: &qgraph::Graph) -> Option<FixedAngles> {
    let d = graph.regular_degree()?;
    if LOOKUP_DEGREES.contains(&d) {
        Some(fixed_angles(d))
    } else {
        None
    }
}

/// Best-effort fixed angles for *any* graph with at least one edge: uses
/// the exact degree when the graph is regular, otherwise the mean degree
/// rounded to the nearest integer, saturated at the top of
/// [`LOOKUP_DEGREES`] (the closed form covers degrees 1 and 2 below the
/// paper's table, so only the upper end is clamped).
///
/// Unlike [`for_graph`] — which mirrors the paper's partial coverage and
/// answers only for in-table regular graphs — this is the degradation
/// fallback for serving: when a GNN prediction cannot be trusted, the
/// nearest tree-subgraph angles are a principled initialization for
/// irregular and out-of-table instances too. Returns `None` only for
/// edgeless graphs (degree 0 — nothing to fix).
pub fn nearest_for_graph(graph: &qgraph::Graph) -> Option<FixedAngles> {
    if graph.m() == 0 {
        return None;
    }
    let d = match graph.regular_degree() {
        Some(d) => d,
        None => {
            let mean = 2.0 * graph.m() as f64 / graph.n() as f64;
            (mean.round() as usize).max(1)
        }
    };
    Some(fixed_angles(d.min(*LOOKUP_DEGREES.end())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxCutHamiltonian, QaoaCircuit};
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn closed_form_is_a_local_maximum_of_tree_objective() {
        for d in 1..=14 {
            let fa = fixed_angles(d);
            let g0 = fa.params.gammas()[0];
            let b0 = fa.params.betas()[0];
            let center = tree_edge_value(d, g0, b0);
            let eps = 1e-4;
            for (dg, db) in [(eps, 0.0), (-eps, 0.0), (0.0, eps), (0.0, -eps)] {
                let nearby = tree_edge_value(d, g0 + dg, b0 + db);
                assert!(
                    nearby <= center + 1e-9,
                    "degree {d}: perturbation improved objective"
                );
            }
        }
    }

    #[test]
    fn closed_form_beats_dense_grid() {
        for d in 2..=6 {
            let fa = fixed_angles(d);
            let mut best_grid = f64::NEG_INFINITY;
            for i in 0..200 {
                for j in 0..100 {
                    let g = std::f64::consts::PI * i as f64 / 200.0;
                    let b = std::f64::consts::PI * j as f64 / 100.0;
                    best_grid = best_grid.max(tree_edge_value(d, g, b));
                }
            }
            assert!(
                fa.tree_edge_value >= best_grid - 1e-4,
                "degree {d}: closed form {} vs grid {best_grid}",
                fa.tree_edge_value
            );
        }
    }

    #[test]
    fn degree_2_matches_ring_angles() {
        let fa = fixed_angles(2);
        assert!((fa.params.gammas()[0] - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((fa.params.betas()[0] - std::f64::consts::PI / 8.0).abs() < 1e-12);
        assert!((fa.tree_edge_value - 0.75).abs() < 1e-12);
    }

    #[test]
    fn tree_value_decreases_with_degree() {
        // Higher-degree graphs are harder at p=1: the per-edge guarantee
        // shrinks monotonically.
        let mut prev = f64::INFINITY;
        for d in 2..=14 {
            let v = fixed_angles(d).tree_edge_value;
            assert!(v < prev, "degree {d}");
            assert!(v > 0.5, "must beat random guessing");
            prev = v;
        }
    }

    #[test]
    fn lookup_table_covers_paper_range() {
        let table = lookup_table();
        assert_eq!(table.len(), 9);
        assert_eq!(table.first().unwrap().degree, 3);
        assert_eq!(table.last().unwrap().degree, 11);
    }

    #[test]
    fn for_graph_filters_by_regularity_and_range() {
        let ring = qgraph::Graph::cycle(6).unwrap(); // 2-regular, below range
        assert!(for_graph(&ring).is_none());
        let star = qgraph::Graph::star(5).unwrap(); // irregular
        assert!(for_graph(&star).is_none());
        let k4 = qgraph::Graph::complete(4).unwrap(); // 3-regular
        assert_eq!(for_graph(&k4).unwrap().degree, 3);
    }

    #[test]
    fn nearest_for_graph_covers_what_for_graph_cannot() {
        // Exact regular degree is used even below the paper's table.
        let ring = qgraph::Graph::cycle(6).unwrap(); // 2-regular
        assert_eq!(nearest_for_graph(&ring).unwrap().degree, 2);
        // Irregular: mean degree rounded. star(5) has 4 edges on 5 nodes
        // (mean 1.6 → 2).
        let star = qgraph::Graph::star(5).unwrap();
        assert_eq!(nearest_for_graph(&star).unwrap().degree, 2);
        // Above the table: saturate at its top.
        let k14 = qgraph::Graph::complete(14).unwrap(); // 13-regular
        assert_eq!(nearest_for_graph(&k14).unwrap().degree, 11);
        // Edgeless: nothing to fix.
        let empty = qgraph::Graph::empty(4).unwrap();
        assert!(nearest_for_graph(&empty).is_none());
        // Agrees with `for_graph` wherever the latter answers.
        let k4 = qgraph::Graph::complete(4).unwrap();
        assert_eq!(nearest_for_graph(&k4), for_graph(&k4));
    }

    #[test]
    fn fixed_angles_perform_well_on_actual_regular_graphs() {
        // The conjecture's claim: fixed angles give near-optimal p=1 AR on
        // real d-regular instances. Check they beat the uniform baseline
        // (AR of ~W/2 / opt) by a clear margin on random 3-regular graphs.
        let mut rng = StdRng::seed_from_u64(51);
        for _ in 0..5 {
            let g = qgraph::generate::random_regular(10, 3, &mut rng).unwrap();
            let fa = for_graph(&g).unwrap();
            let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
            let ar_fixed = circuit.approximation_ratio(&fa.params);
            let ar_uniform = circuit.approximation_ratio(&Params::zeros(1));
            assert!(
                ar_fixed > ar_uniform + 0.05,
                "fixed {ar_fixed} vs uniform {ar_uniform}"
            );
        }
    }
}
