//! Node feature construction.
//!
//! §3.1: "We compute node degrees and one-hot encoding of node IDs as node
//! features." The GNNs in the paper use input dimension 15 (§4.1), i.e. the
//! one-hot id padded to the maximum graph size. [`node_features`] reproduces
//! that layout; [`FeatureConfig`] lets ablations vary it.


use crate::Graph;

/// Configuration of the per-node feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureConfig {
    /// Width of the one-hot node-id block (paper: 15). Node ids `>= one_hot_dim`
    /// get an all-zero block; graphs are expected to satisfy `n <= one_hot_dim`.
    pub one_hot_dim: usize,
    /// Prepend the node degree (normalized by `one_hot_dim - 1` so that it
    /// stays in `[0, 1]` across the dataset).
    pub include_degree: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            one_hot_dim: 15,
            include_degree: true,
        }
    }
}

impl FeatureConfig {
    /// Total feature dimension per node.
    pub fn dim(&self) -> usize {
        self.one_hot_dim + usize::from(self.include_degree)
    }
}

/// Builds the `n x dim` node-feature matrix (row-major, one row per node).
///
/// Layout per row: `[degree?] [one-hot id]`.
///
/// # Example
///
/// ```
/// use qgraph::{features::{node_features, FeatureConfig}, Graph};
///
/// # fn main() -> Result<(), qgraph::GraphError> {
/// let g = Graph::path(3)?;
/// let cfg = FeatureConfig::default();
/// let x = node_features(&g, &cfg);
/// assert_eq!(x.len(), 3);
/// assert_eq!(x[0].len(), cfg.dim());
/// // Node 1 has degree 2 and one-hot position 1.
/// assert!((x[1][0] - 2.0 / 14.0).abs() < 1e-12);
/// assert_eq!(x[1][1 + 1], 1.0);
/// # Ok(())
/// # }
/// ```
pub fn node_features(graph: &Graph, config: &FeatureConfig) -> Vec<Vec<f64>> {
    let norm = (config.one_hot_dim.saturating_sub(1)).max(1) as f64;
    (0..graph.n())
        .map(|v| {
            let mut row = Vec::with_capacity(config.dim());
            if config.include_degree {
                row.push(graph.degree(v) as f64 / norm);
            }
            for i in 0..config.one_hot_dim {
                row.push(if i == v { 1.0 } else { 0.0 });
            }
            row
        })
        .collect()
}

/// Builds the dense adjacency matrix `A` (row-major `n x n`), entries are
/// edge weights.
pub fn adjacency_matrix(graph: &Graph) -> Vec<Vec<f64>> {
    let n = graph.n();
    let mut a = vec![vec![0.0; n]; n];
    for e in graph.edges() {
        a[e.u][e.v] = e.weight;
        a[e.v][e.u] = e.weight;
    }
    a
}

/// Builds the symmetrically normalized adjacency with self-loops used by GCN:
/// `D̃^{-1/2} (A + I) D̃^{-1/2}` where `D̃` is the degree matrix of `A + I`.
pub fn normalized_adjacency(graph: &Graph) -> Vec<Vec<f64>> {
    let n = graph.n();
    let mut a = adjacency_matrix(graph);
    for (v, row) in a.iter_mut().enumerate() {
        row[v] += 1.0;
    }
    let deg: Vec<f64> = a.iter().map(|row| row.iter().sum::<f64>()).collect();
    let inv_sqrt: Vec<f64> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    for i in 0..n {
        for j in 0..n {
            a[i][j] *= inv_sqrt[i] * inv_sqrt[j];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let cfg = FeatureConfig::default();
        assert_eq!(cfg.one_hot_dim, 15);
        assert!(cfg.include_degree);
        assert_eq!(cfg.dim(), 16);
    }

    #[test]
    fn one_hot_block_is_exact() {
        let g = Graph::complete(4).unwrap();
        let cfg = FeatureConfig {
            one_hot_dim: 6,
            include_degree: false,
        };
        let x = node_features(&g, &cfg);
        for (v, row) in x.iter().enumerate() {
            assert_eq!(row.len(), 6);
            for (i, &val) in row.iter().enumerate() {
                assert_eq!(val, if i == v { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn degree_feature_is_normalized() {
        let g = Graph::star(5).unwrap(); // center degree 4
        let cfg = FeatureConfig::default();
        let x = node_features(&g, &cfg);
        assert!((x[0][0] - 4.0 / 14.0).abs() < 1e-12);
        assert!((x[1][0] - 1.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_matrix_is_symmetric_weighted() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let a = adjacency_matrix(&g);
        assert_eq!(a[0][1], 2.0);
        assert_eq!(a[1][0], 2.0);
        assert_eq!(a[2][1], 3.0);
        assert_eq!(a[0][2], 0.0);
        assert_eq!(a[0][0], 0.0);
    }

    #[test]
    fn normalized_adjacency_rows() {
        // For K2 with self loops: A+I = [[1,1],[1,1]], degrees 2, so every
        // entry is 1/2.
        let g = Graph::complete(2).unwrap();
        let a = normalized_adjacency(&g);
        for row in &a {
            for &v in row {
                assert!((v - 0.5).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn normalized_adjacency_isolated_node() {
        // Isolated node has degree 1 after the self-loop: diagonal becomes 1.
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let a = normalized_adjacency(&g);
        assert!((a[2][2] - 1.0).abs() < 1e-12);
        assert_eq!(a[2][0], 0.0);
    }
}
