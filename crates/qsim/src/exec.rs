//! Execution policy for state-vector kernels: serial or pooled.
//!
//! An [`Executor`] bundles the two knobs the multi-threaded path needs —
//! a worker pool and the qubit-count crossover below which threading is
//! pure overhead — behind one value that callers thread through
//! [`crate::fused`] and [`crate::StateVector::expectation_diagonal_exec`].
//!
//! # Determinism contract
//!
//! - [`Executor::serial`] (and any state below the crossover) runs the
//!   exact pre-existing serial kernels: bit-identical to every release
//!   since the fused kernels landed, as pinned by the golden suites.
//! - A threaded executor partitions sweeps into contiguous chunks whose
//!   per-element arithmetic is the serial kernel's, and reduces
//!   expectations over fixed-size chunks folded in index order. Both are
//!   independent of the pool width, so **1, 2, 4, and 8 threads produce
//!   bit-identical results**; only parallel-vs-serial differs (reduction
//!   grouping), and that gap is pinned to ≤1e-12.

use std::fmt;

use qpool::ThreadPool;

/// Default qubit-count crossover: below this, sweeps stay serial even on
/// a threaded executor. Measured with the `crossover_sweep` bench bin
/// (see EXPERIMENTS.md); at 2^12 amplitudes a sweep is a few microseconds
/// and job dispatch stops paying for itself.
pub const DEFAULT_CROSSOVER_QUBITS: usize = 12;

/// Execution policy: serial, or a worker pool plus a crossover.
pub struct Executor {
    pool: Option<ThreadPool>,
    threads: usize,
    min_qubits: usize,
}

impl Executor {
    /// Fixed element count per parallel-reduction chunk. A constant (not
    /// a function of the pool width) so reductions are bit-identical for
    /// any thread count.
    pub(crate) const REDUCE_CHUNK: usize = 4096;

    /// The strictly serial policy — the historical single-threaded path.
    pub fn serial() -> Self {
        Executor {
            pool: None,
            threads: 0,
            min_qubits: DEFAULT_CROSSOVER_QUBITS,
        }
    }

    /// A pooled policy with `threads` total workers (the submitting
    /// thread participates, so `threads` is the genuine parallel width)
    /// and the default crossover. `threads` is clamped to at least 1;
    /// `threaded(1)` spawns no OS threads but still exercises the
    /// parallel chunking/reduction algorithm — useful for pinning
    /// thread-count invariance.
    pub fn threaded(threads: usize) -> Self {
        Self::threaded_with_crossover(threads, DEFAULT_CROSSOVER_QUBITS)
    }

    /// A pooled policy with an explicit qubit-count crossover. Tests use
    /// `min_qubits: 1` to force the parallel algorithm on small states.
    pub fn threaded_with_crossover(threads: usize, min_qubits: usize) -> Self {
        let threads = threads.max(1);
        Executor {
            pool: Some(ThreadPool::new(threads)),
            threads,
            min_qubits,
        }
    }

    /// Parallel width: 0 for the serial policy, otherwise the pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Qubit-count crossover below which even a pooled executor runs the
    /// serial kernels.
    pub fn min_qubits(&self) -> usize {
        self.min_qubits
    }

    /// Whether this is the strictly serial policy.
    pub fn is_serial(&self) -> bool {
        self.pool.is_none()
    }

    /// The pool to use for a state of `num_qubits`, or `None` when the
    /// serial path applies (serial policy, or below the crossover).
    pub(crate) fn pool_for(&self, num_qubits: usize) -> Option<&ThreadPool> {
        match &self.pool {
            Some(pool) if num_qubits >= self.min_qubits => Some(pool),
            _ => None,
        }
    }
}

impl Default for Executor {
    /// Defaults to [`Executor::serial`]: opting *in* to threading is
    /// explicit everywhere.
    fn default() -> Self {
        Self::serial()
    }
}

impl Clone for Executor {
    /// Clones the *policy*, not the pool: a threaded executor clones to a
    /// fresh pool of the same width (worker threads are not shareable).
    fn clone(&self) -> Self {
        if self.pool.is_some() {
            Self::threaded_with_crossover(self.threads, self.min_qubits)
        } else {
            Executor {
                pool: None,
                threads: 0,
                min_qubits: self.min_qubits,
            }
        }
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("min_qubits", &self.min_qubits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_policy_never_yields_a_pool() {
        let exec = Executor::serial();
        assert!(exec.is_serial());
        assert_eq!(exec.threads(), 0);
        assert!(exec.pool_for(24).is_none());
    }

    #[test]
    fn threaded_policy_respects_crossover() {
        let exec = Executor::threaded(2);
        assert!(!exec.is_serial());
        assert_eq!(exec.threads(), 2);
        assert!(exec.pool_for(DEFAULT_CROSSOVER_QUBITS - 1).is_none());
        assert!(exec.pool_for(DEFAULT_CROSSOVER_QUBITS).is_some());
    }

    #[test]
    fn explicit_crossover_overrides_default() {
        let exec = Executor::threaded_with_crossover(1, 3);
        assert!(exec.pool_for(2).is_none());
        assert!(exec.pool_for(3).is_some());
        assert_eq!(exec.min_qubits(), 3);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let exec = Executor::threaded_with_crossover(0, 1);
        assert_eq!(exec.threads(), 1);
        assert!(exec.pool_for(1).is_some());
    }

    #[test]
    fn clone_preserves_policy() {
        let serial = Executor::serial().clone();
        assert!(serial.is_serial());
        let threaded = Executor::threaded_with_crossover(3, 5).clone();
        assert_eq!(threaded.threads(), 3);
        assert_eq!(threaded.min_qubits(), 5);
        assert!(threaded.pool_for(5).is_some());
    }

    #[test]
    fn default_is_serial() {
        assert!(Executor::default().is_serial());
    }
}
