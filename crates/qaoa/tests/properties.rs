//! Property-based tests for the QAOA stack.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use qaoa::optimize::{Maximizer, NelderMead, Spsa};
use qaoa::{analytic, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::generate;

fn arb_graph() -> impl Strategy<Value = qgraph::Graph> {
    (3usize..9, 0.2f64..0.9, any::<u64>()).prop_map(|(n, p, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generate::erdos_renyi(n, p, &mut rng).expect("valid parameters")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn expectation_bounded_by_spectrum(
        g in arb_graph(),
        gamma in -7.0f64..7.0,
        beta in -4.0f64..4.0,
    ) {
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let e = circuit.expectation(&Params::new(vec![gamma], vec![beta]));
        prop_assert!(e >= -1e-9);
        prop_assert!(e <= circuit.hamiltonian().optimal_value() + 1e-9);
    }

    #[test]
    fn simulator_equals_analytic_p1(
        g in arb_graph(),
        gamma in -3.0f64..3.0,
        beta in -2.0f64..2.0,
    ) {
        prop_assume!(g.m() > 0);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let sim = circuit.expectation(&Params::new(vec![gamma], vec![beta]));
        let formula = analytic::graph_expectation(&g, gamma, beta);
        prop_assert!((sim - formula).abs() < 1e-8, "sim {sim} vs analytic {formula}");
    }

    #[test]
    fn canonicalization_is_idempotent_and_invariant(
        g in arb_graph(),
        gamma in -9.0f64..9.0,
        beta in -5.0f64..5.0,
    ) {
        let params = Params::new(vec![gamma], vec![beta]);
        let canonical = params.canonical();
        // Idempotent.
        prop_assert!(canonical.canonical().distance(&canonical) < 1e-9);
        // In-domain.
        prop_assert!(canonical.gammas()[0] >= 0.0 && canonical.gammas()[0] <= std::f64::consts::PI);
        prop_assert!(canonical.betas()[0] >= 0.0 && canonical.betas()[0] < std::f64::consts::FRAC_PI_2);
        // Physically equivalent (unit weights).
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let e1 = circuit.expectation(&params);
        let e2 = circuit.expectation(&canonical);
        prop_assert!((e1 - e2).abs() < 1e-8, "{e1} vs {e2}");
    }

    #[test]
    fn state_norm_preserved_at_any_depth(
        g in arb_graph(),
        angles in proptest::collection::vec(-3.0f64..3.0, 2..8),
    ) {
        let depth = angles.len() / 2;
        prop_assume!(depth >= 1);
        let params = Params::new(
            angles[..depth].to_vec(),
            angles[depth..2 * depth].to_vec(),
        );
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let psi = circuit.run(&params);
        prop_assert!((psi.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimizers_never_regress_from_start(
        g in arb_graph(),
        start_gamma in 0.0f64..6.2,
        start_beta in 0.0f64..3.1,
        seed in any::<u64>(),
    ) {
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let objective = |flat: &[f64]| {
            circuit.expectation(&Params::from_flat(flat).expect("p=1 layout"))
        };
        let start = [start_gamma, start_beta];
        let start_value = objective(&start);
        let mut rng = StdRng::seed_from_u64(seed);
        let nm = NelderMead::new(30).maximize(objective, &start, &mut rng);
        prop_assert!(nm.best_value >= start_value - 1e-9);
        let spsa = Spsa::new(30).maximize(objective, &start, &mut rng);
        prop_assert!(spsa.best_value >= start_value - 1e-9);
    }

    #[test]
    fn approximation_ratio_of_best_params_leq_one(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ham = MaxCutHamiltonian::new(&g);
        let outcome = qaoa::warm_start::run_random_init(
            &ham,
            1,
            &NelderMead::new(60),
            &mut rng,
        );
        prop_assert!(outcome.final_ratio <= 1.0 + 1e-9);
        prop_assert!(outcome.final_ratio >= outcome.initial_ratio - 1e-9);
        // History is monotone best-so-far.
        for w in outcome.history.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn interp_preserves_endpoint_schedule(
        angles in proptest::collection::vec(0.05f64..1.5, 2..10),
    ) {
        let depth = angles.len() / 2;
        prop_assume!(depth >= 1);
        let params = Params::new(
            angles[..depth].to_vec(),
            angles[depth..2 * depth].to_vec(),
        );
        let extended = qaoa::interp::interp_extend(&params);
        prop_assert_eq!(extended.depth(), depth + 1);
        // First and last angles are preserved by the INTERP rule.
        prop_assert!((extended.gammas()[0] - params.gammas()[0]).abs() < 1e-12);
        prop_assert!(
            (extended.gammas()[depth] - params.gammas()[depth - 1]).abs() < 1e-12
        );
    }
}
