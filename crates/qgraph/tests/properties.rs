//! Property-based tests for the graph substrate.

use qcheck::{any_u64, prop_assert, prop_assert_eq, prop_assume, properties, vec};
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qgraph::{generate, io, maxcut, stats, Graph};

/// Builds the canonical "arbitrary graph" from primitive case coordinates:
/// an Erdős–Rényi draw from a seeded generator. Keeping the generator
/// arguments primitive lets qcheck shrink `n`/`p` toward the small corner.
fn build_graph(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::erdos_renyi(n, p, &mut rng).expect("valid parameters")
}

properties! {
    fn handshake_lemma(n in 2usize..12, p in 0.0f64..=1.0, seed in any_u64()) {
        let g = build_graph(n, p, seed);
        let degree_sum: usize = g.degrees().iter().sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
    }

    fn degree_histogram_total_counts_all_nodes(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let h = stats::degree_histogram(std::iter::once(&g));
        prop_assert_eq!(h.total(), g.n());
    }

    fn text_io_round_trips(n in 2usize..12, p in 0.0f64..=1.0, seed in any_u64()) {
        let g = build_graph(n, p, seed);
        let s = io::graph_to_string(&g);
        let back = io::graph_from_str(&s).unwrap();
        prop_assert_eq!(g, back);
    }

    fn random_regular_is_regular(
        n in 2usize..16,
        d_raw in 0usize..15,
        seed in any_u64(),
    ) {
        let d = d_raw % n;
        prop_assume!((n * d) % 2 == 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::random_regular(n, d, &mut rng).unwrap();
        prop_assert_eq!(g.regular_degree(), Some(d));
        prop_assert_eq!(g.m(), n * d / 2);
        // Simplicity is enforced by construction; double-check no duplicates.
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            prop_assert!(e.u < e.v);
            prop_assert!(seen.insert((e.u, e.v)));
        }
    }

    fn brute_force_at_least_half_total_weight(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        // A classical fact: max cut >= W/2 (random assignment argument).
        let best = maxcut::brute_force(&g);
        prop_assert!(best.value >= g.total_weight() / 2.0 - 1e-9);
        prop_assert!(best.value <= g.total_weight() + 1e-9);
    }

    fn brute_force_dominates_heuristics(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
        cut_seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let opt = maxcut::brute_force(&g).value;
        prop_assert!(maxcut::greedy(&g).value <= opt + 1e-9);
        let rc = maxcut::random_cut(&g, &mut rng);
        prop_assert!(rc.value <= opt + 1e-9);
        prop_assert!(maxcut::local_search(&g, rc.side).value <= opt + 1e-9);
    }

    fn cut_value_invariant_under_complement(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
        cut_seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let mut rng = StdRng::seed_from_u64(cut_seed);
        let c = maxcut::random_cut(&g, &mut rng);
        prop_assert!((c.complement(&g).value - c.value).abs() < 1e-9);
    }

    fn relabeling_preserves_maxcut(
        n in 2usize..12,
        p in 0.0f64..=1.0,
        seed in any_u64(),
        perm_seed in any_u64(),
    ) {
        use qrand::seq::SliceRandom;
        let g = build_graph(n, p, seed);
        let mut rng = StdRng::seed_from_u64(perm_seed);
        let mut perm: Vec<usize> = (0..g.n()).collect();
        perm.shuffle(&mut rng);
        let h = g.relabel(&perm);
        prop_assert!((maxcut::brute_force(&g).value - maxcut::brute_force(&h).value).abs() < 1e-9);
    }

    fn mean_std_bounds(values in vec(-100.0f64..100.0, 1usize..50)) {
        let (mean, std) = stats::mean_std(&values);
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        prop_assert!(std >= 0.0);
        prop_assert!(std <= (hi - lo) + 1e-9);
    }
}
