//! Deterministic fault injection.
//!
//! Robustness claims are only as good as the failures they were tested
//! against. This module provides **named failpoints** — fixed places in
//! the serving and persistence paths where a test (or an operator, via the
//! `QAOA_GNN_FAULTS` environment variable) can deterministically inject a
//! panic, a NaN, or a typed error. Every rung of the serving degradation
//! ladder and every typed error path is exercised by arming a failpoint
//! and asserting the observable outcome, instead of trusting that the
//! handler would work if the failure ever happened.
//!
//! # Failpoints
//!
//! | name | hooked in | effect when armed |
//! |------|-----------|-------------------|
//! | [`ARTIFACT_LOAD`] | [`crate::store::RunArtifact::load`] | load fails (`Error`) or panics (`Panic`) |
//! | [`WEIGHT_BUILD`] | [`crate::serve::GuardedPredictor`] model construction | build fails or panics |
//! | [`FORWARD`] | the guarded GNN forward pass | prediction panics (`Panic`) or returns NaN (`Nan`) |
//! | [`SIM_EVAL`] | the guarded simulator verification | score becomes NaN (`Nan`) or evaluation panics |
//! | [`JOURNAL_IO`] | [`crate::store::LabelJournal::append`] | append fails or panics |
//! | [`HOT_SWAP`] | [`crate::serve_loop::ServeLoop::swap_artifact`] | swap rejected (`Error`) or panics; the old artifact keeps serving |
//! | [`ADMISSION`] | [`crate::serve_loop::ServeLoop::submit`] | request refused (`Error`) or panics at admission |
//! | [`WORKER`] | the serve-loop worker, *outside* the per-request guard | the worker thread dies (`Panic`); the supervisor must respawn it |
//! | [`CACHE_LOOKUP`] | [`crate::cache::PredictionCache::lookup`] | the canonical-hash/lookup path panics (`Panic`) or aborts (`Error`/`Nan`); the request degrades to a normal GNN-rung miss |
//! | [`CHECKPOINT_WRITE`] | the atomic training-checkpoint write, between tmp-file flush and rename | write fails (`Error`), panics (`Panic`), or pauses (`Stall`) with the tmp file visible — a kill window for crash harnesses |
//! | [`ARTIFACT_SAVE`] | [`crate::store::RunArtifact::save`], between tmp-file flush and rename | save fails (`Error`), panics (`Panic`), or pauses (`Stall`); the previous artifact stays intact either way |
//!
//! # Arming
//!
//! Programmatic (tests): [`armed`] returns an RAII guard that also holds a
//! global lock, so concurrently running `#[test]`s that inject faults are
//! serialized. Guard-armed failpoints additionally fire only on the arming
//! thread, so tests that *don't* inject faults can run concurrently with
//! ones that do and never observe their injections:
//!
//! ```
//! use qaoa_gnn::faults::{self, FaultAction};
//! let _guard = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
//! assert_eq!(faults::fire(faults::FORWARD), Some(FaultAction::Nan));
//! assert_eq!(faults::fire(faults::FORWARD), None); // budget of 1 spent
//! ```
//!
//! Environment (smoke tests, operations):
//! `QAOA_GNN_FAULTS="forward=nan,artifact_load=err:2"` arms `forward` with
//! one NaN injection and `artifact_load` with two error injections; the
//! armed process behaves identically on every run — injection is counted,
//! never random. Env-armed failpoints fire on any thread.
//!
//! # Chaos schedules
//!
//! A [`FaultSchedule`] scripts *many* failures over a whole request
//! stream: each [`ScheduledFault`] is a failpoint × action × firing window
//! over a request-index range, with a bounded budget. The serving path
//! tags the current request index on its thread
//! ([`set_request_index`], set by the serve-loop worker per job), and a
//! schedule installed with [`arm_schedule`] fires whenever a tagged
//! request walks through a failpoint inside one of its windows. Because
//! the windows are request-indexed (never time-based) and
//! [`FaultSchedule::from_seed`] is a pure function of its seed, two runs
//! of the same request stream under the same seed inject byte-identical
//! failure sequences — the foundation of the chaos-soak determinism
//! invariant in `tests/chaos_soak.rs`.

use std::cell::Cell;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread::ThreadId;

/// Failpoint inside [`crate::store::RunArtifact::load`].
pub const ARTIFACT_LOAD: &str = "artifact_load";
/// Failpoint around model reconstruction from artifact weights.
pub const WEIGHT_BUILD: &str = "weight_build";
/// Failpoint around the GNN forward pass on the serving path.
pub const FORWARD: &str = "forward";
/// Failpoint around the simulator verification of a served prediction.
pub const SIM_EVAL: &str = "sim_eval";
/// Failpoint inside [`crate::store::LabelJournal::append`].
pub const JOURNAL_IO: &str = "journal_io";
/// Failpoint inside [`crate::serve_loop::ServeLoop::swap_artifact`]: the
/// incoming artifact's model rebuild fails (`Error`) or panics (`Panic`),
/// and the loop must keep serving the old generation.
pub const HOT_SWAP: &str = "hot_swap";
/// Failpoint inside [`crate::serve_loop::ServeLoop::submit`]: admission
/// refuses (`Error`) or panics (`Panic`) instead of enqueueing.
pub const ADMISSION: &str = "admission";
/// Failpoint in the serve-loop worker body, deliberately *outside* the
/// per-request `catch_unwind` guard: a `Panic` firing kills the worker
/// thread itself, exercising supervision (census, respawn, requeue) rather
/// than per-request containment. The claimed-but-unanswered batch must be
/// requeued and answered by a surviving or respawned worker.
pub const WORKER: &str = "worker";
/// Failpoint inside [`crate::cache::PredictionCache::lookup`], *before* the
/// canonical hash is computed: a `Panic` unwinds out of the hash/lookup
/// path (contained by the cache itself), any other action aborts the
/// lookup. Either way the request must degrade to a normal GNN-rung miss —
/// a broken cache may cost latency, never correctness.
pub const CACHE_LOOKUP: &str = "cache_lookup";
/// Failpoint inside the atomic training-checkpoint write
/// ([`crate::store::TrainCheckpoint::save`]), **after** the tmp file is
/// written and fsynced but **before** it is renamed over the live
/// checkpoint. `Error` aborts the save (training stops, the previous
/// checkpoint survives); `Stall` pauses the protocol with the tmp file
/// visible on disk — the kill window the crash-resume harness aims SIGKILL
/// at.
pub const CHECKPOINT_WRITE: &str = "checkpoint_write";
/// Failpoint inside [`crate::store::RunArtifact::save`], between tmp-file
/// flush and rename. Whatever fires — `Error`, `Panic`, or a `Stall`
/// interrupted by SIGKILL — the previously published artifact must remain
/// loadable: the rename is the commit point.
pub const ARTIFACT_SAVE: &str = "artifact_save";

/// Every failpoint name, for enumeration in tests and docs.
pub const ALL: [&str; 11] = [
    ARTIFACT_LOAD,
    WEIGHT_BUILD,
    FORWARD,
    SIM_EVAL,
    JOURNAL_IO,
    HOT_SWAP,
    ADMISSION,
    WORKER,
    CACHE_LOOKUP,
    CHECKPOINT_WRITE,
    ARTIFACT_SAVE,
];

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognizable message (tests unwind isolation).
    Panic,
    /// Poison a numeric result with NaN (tests non-finite guardrails).
    Nan,
    /// Return a typed error (tests error propagation).
    Error,
    /// Pause at the failpoint — sleep in short slices for up to
    /// [`stall_budget_ms`] milliseconds, then continue as if nothing fired.
    /// A stall converts an instantaneous protocol step into a wide,
    /// deterministic window that an external harness can SIGKILL into
    /// (e.g. "killed between checkpoint tmp-write and rename"). Only
    /// [`fire_may_panic`] hook sites honor it; `fire` returns it raw.
    Stall,
}

impl FaultAction {
    fn parse(s: &str) -> Option<FaultAction> {
        match s {
            "panic" => Some(FaultAction::Panic),
            "nan" => Some(FaultAction::Nan),
            "err" | "error" => Some(FaultAction::Error),
            "stall" => Some(FaultAction::Stall),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Panic => write!(f, "panic"),
            FaultAction::Nan => write!(f, "nan"),
            FaultAction::Error => write!(f, "err"),
            FaultAction::Stall => write!(f, "stall"),
        }
    }
}

/// How long a [`FaultAction::Stall`] pauses, in milliseconds: the value of
/// `QAOA_GNN_STALL_MS` (read once), defaulting to 30 000. Harnesses that
/// SIGKILL into the window never see the budget expire; unattended runs
/// resume after it.
pub fn stall_budget_ms() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::env::var("QAOA_GNN_STALL_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(30_000)
    })
}

/// Sleeps in 10 ms slices until the stall budget is spent. Kept slice-wise
/// so a budget typo cannot wedge a process in one monolithic sleep.
fn stall() {
    let budget = std::time::Duration::from_millis(stall_budget_ms());
    let start = std::time::Instant::now();
    while start.elapsed() < budget {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// One armed failpoint: what to inject and how many firings remain.
///
/// Guard-armed failpoints record the arming thread and fire only on it, so
/// a `#[test]` injecting faults cannot contaminate unrelated tests running
/// concurrently in the same binary. Env-armed failpoints carry no thread
/// and fire process-wide.
#[derive(Debug, Clone)]
struct Armed {
    name: String,
    action: FaultAction,
    remaining: u64,
    thread: Option<ThreadId>,
}

struct Registry {
    /// Armed failpoints; empty in production (the common case is one
    /// `is_empty` check under an uncontended lock).
    armed: Vec<Armed>,
    /// Installed chaos schedule, if any (see [`arm_schedule`]).
    schedule: Vec<ScheduledFault>,
    /// Scheduled firings so far, for harness assertions.
    schedule_fired: u64,
    env_loaded: bool,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            armed: Vec::new(),
            schedule: Vec::new(),
            schedule_fired: 0,
            env_loaded: false,
        })
    })
}

thread_local! {
    /// Request index of the job currently being processed on this thread;
    /// `u64::MAX` means "not on a request path", under which scheduled
    /// faults never fire (so labeling, training, and unrelated tests are
    /// invisible to an installed schedule).
    static REQUEST_INDEX: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Tags this thread as processing the request with the given index;
/// scheduled faults whose window contains it may now fire here. The
/// serve-loop worker calls this per job; the admission path calls it for
/// the index being admitted.
pub fn set_request_index(index: u64) {
    REQUEST_INDEX.with(|cell| cell.set(index));
}

/// Clears the request tag set by [`set_request_index`]; scheduled faults
/// stop firing on this thread.
pub fn clear_request_index() {
    REQUEST_INDEX.with(|cell| cell.set(u64::MAX));
}

fn current_request_index() -> u64 {
    REQUEST_INDEX.with(|cell| cell.get())
}

/// Locks the registry, tolerating poisoning: a failpoint whose injected
/// panic unwound through a lock holder must not wedge every later test.
fn lock() -> MutexGuard<'static, Registry> {
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn load_env(reg: &mut Registry) {
    if reg.env_loaded {
        return;
    }
    reg.env_loaded = true;
    let Ok(spec) = std::env::var("QAOA_GNN_FAULTS") else {
        return;
    };
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (name, rest) = match entry.split_once('=') {
            Some(pair) => pair,
            None => (entry, "err"),
        };
        let (action_str, count_str) = match rest.split_once(':') {
            Some((a, c)) => (a, c),
            None => (rest, "1"),
        };
        let Some(action) = FaultAction::parse(action_str.trim()) else {
            continue; // unknown actions are ignored, not fatal
        };
        let remaining = count_str.trim().parse::<u64>().unwrap_or(1).max(1);
        reg.armed.push(Armed {
            name: name.trim().to_string(),
            action,
            remaining,
            thread: None,
        });
    }
}

fn matches_here(armed: &Armed, name: &str) -> bool {
    armed.name == name
        && armed
            .thread
            .is_none_or(|t| t == std::thread::current().id())
}

/// Consumes one firing of the named failpoint, if armed.
///
/// Returns the action to apply and decrements the failpoint's budget; a
/// failpoint armed for `n` firings is disarmed after the `n`-th. Unarmed
/// failpoints cost one short lock acquisition and return `None`.
pub fn fire(name: &str) -> Option<FaultAction> {
    let mut reg = lock();
    load_env(&mut reg);
    if reg.armed.is_empty() && reg.schedule.is_empty() {
        return None;
    }
    if let Some(idx) = reg.armed.iter().position(|a| matches_here(a, name)) {
        let action = reg.armed[idx].action;
        reg.armed[idx].remaining -= 1;
        if reg.armed[idx].remaining == 0 {
            reg.armed.remove(idx);
        }
        return Some(action);
    }
    // Chaos schedule: fires only on threads tagged with a request index
    // inside one of its windows, spending that entry's budget.
    let index = current_request_index();
    if index != u64::MAX {
        if let Some(entry) = reg
            .schedule
            .iter_mut()
            .find(|e| e.matches(name, index) && e.budget > 0)
        {
            let action = entry.action;
            entry.budget -= 1;
            reg.schedule_fired += 1;
            return Some(action);
        }
    }
    None
}

/// `true` when the named failpoint is currently armed for this thread —
/// guard-armed here, env-armed anywhere, or covered by a live schedule
/// window for the request this thread is tagged with. Does not consume a
/// firing.
pub fn is_armed(name: &str) -> bool {
    let mut reg = lock();
    load_env(&mut reg);
    if reg.armed.iter().any(|a| matches_here(a, name)) {
        return true;
    }
    let index = current_request_index();
    index != u64::MAX
        && reg
            .schedule
            .iter()
            .any(|e| e.matches(name, index) && e.budget > 0)
}

/// Panics with a recognizable message if the failpoint fires with
/// [`FaultAction::Panic`]; otherwise returns the fired action (if any) for
/// the caller to apply. Convenience for hook sites whose panic handling is
/// `catch_unwind`-based.
pub fn fire_may_panic(name: &str) -> Option<FaultAction> {
    let action = fire(name)?;
    match action {
        FaultAction::Panic => panic!("fault injected: {name}"),
        // A stall is a pure delay: pause inside the hook site's protocol
        // window, then report "nothing fired" so the caller proceeds.
        FaultAction::Stall => {
            stall();
            None
        }
        other => Some(other),
    }
}

fn test_lock() -> &'static Mutex<()> {
    static TEST_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    TEST_LOCK.get_or_init(|| Mutex::new(()))
}

/// RAII guard for one armed failpoint; disarms on drop.
///
/// The guard also holds a process-wide mutex, so two tests arming faults
/// concurrently serialize instead of observing each other's injections.
pub struct FaultGuard {
    name: String,
    _exclusive: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut reg = lock();
        reg.armed.retain(|a| a.name != self.name);
    }
}

/// Arms `name` to fire `count` times with `action` **on this thread
/// only**, returning a guard that disarms on drop. See [`FaultGuard`] for
/// the concurrency contract. The guard holds a non-reentrant process-wide
/// mutex: arm at most one failpoint at a time (drop the previous guard
/// first), or the second call deadlocks.
pub fn armed(name: &str, action: FaultAction, count: u64) -> FaultGuard {
    let exclusive = test_lock()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut reg = lock();
    // Replace any stale arming of the same name (e.g. a prior guard whose
    // test panicked between arm and fire).
    reg.armed.retain(|a| a.name != name);
    reg.armed.push(Armed {
        name: name.to_string(),
        action,
        remaining: count.max(1),
        thread: Some(std::thread::current().id()),
    });
    drop(reg);
    FaultGuard {
        name: name.to_string(),
        _exclusive: exclusive,
    }
}

/// One scripted failure window: `failpoint` fires `action` for requests
/// whose index lies in `from_index..to_index`, at most `budget` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Failpoint name (one of [`ALL`]).
    pub failpoint: &'static str,
    /// What the failpoint injects while the window is live.
    pub action: FaultAction,
    /// First request index (inclusive) the window covers.
    pub from_index: u64,
    /// One past the last request index the window covers.
    pub to_index: u64,
    /// Maximum firings; the entry goes quiet once spent.
    pub budget: u64,
}

impl ScheduledFault {
    fn matches(&self, name: &str, index: u64) -> bool {
        self.failpoint == name && index >= self.from_index && index < self.to_index
    }
}

/// A deterministic chaos script: a set of [`ScheduledFault`] windows over
/// a request-index range. Install with [`arm_schedule`]; see the module
/// docs for the firing rules.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The scripted windows, in the order they were generated or pushed.
    pub entries: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// An empty schedule, to be filled with [`FaultSchedule::push`].
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Adds one window (builder-style).
    pub fn push(mut self, entry: ScheduledFault) -> FaultSchedule {
        self.entries.push(entry);
        self
    }

    /// Generates a chaos script for a stream of `requests` requests as a
    /// pure function of `seed`: same seed, same script, bit for bit.
    ///
    /// The script spreads failure windows across every failpoint on the
    /// serving path — worker kills ([`WORKER`], exercising supervision),
    /// GNN-rung poison ([`FORWARD`]/[`SIM_EVAL`]/[`WEIGHT_BUILD`], enough
    /// consecutive failures to trip the circuit breaker), hot-swap
    /// rejections ([`HOT_SWAP`]) and admission refusals ([`ADMISSION`]) —
    /// plus windows on the persistence failpoints ([`ARTIFACT_LOAD`],
    /// [`JOURNAL_IO`]) for drivers that touch disk between requests. Every
    /// window closes before `requests`, with a fault-free tail (the last
    /// ~20% of the stream) so recovery invariants (census restored,
    /// breaker re-closed) can be asserted at the end.
    pub fn from_seed(seed: u64, requests: u64) -> FaultSchedule {
        use qrand::rngs::StdRng;
        use qrand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00c4_a05c_4a05_c4a0);
        let mut entries = Vec::new();
        // All windows live in the first 80% of the stream; the tail is
        // clean so every run ends in a recovered state.
        let horizon = (requests * 4 / 5).max(1);
        let mut window = |failpoint: &'static str, actions: &[FaultAction], max_span: u64| {
            let span = 1 + rng.gen_range(0..max_span.max(1));
            let from = rng.gen_range(0..horizon.saturating_sub(span).max(1));
            let action = actions[rng.gen_range(0..actions.len())];
            ScheduledFault {
                failpoint,
                action,
                from_index: from,
                to_index: (from + span).min(horizon),
                budget: 1 + rng.gen_range(0..span),
            }
        };
        use FaultAction::{Error, Nan, Panic};
        // Worker kills: a few short windows, one kill each.
        for _ in 0..3 {
            let mut kill = window(WORKER, &[Panic], 4);
            kill.budget = 1;
            entries.push(kill);
        }
        // GNN-rung poison: one long dense window (drives the breaker Open)
        // plus scattered short ones.
        let mut storm = window(FORWARD, &[Panic, Nan], horizon / 4 + 1);
        storm.budget = storm.to_index - storm.from_index; // every request in it
        entries.push(storm);
        entries.push(window(FORWARD, &[Panic, Nan], 6));
        entries.push(window(SIM_EVAL, &[Panic, Nan], 6));
        entries.push(window(WEIGHT_BUILD, &[Panic, Error], 4));
        // Control-plane windows.
        entries.push(window(HOT_SWAP, &[Panic, Error], 4));
        entries.push(window(ADMISSION, &[Error], 6));
        // Persistence windows (fire only if the driver touches disk while
        // tagged with an in-window request index).
        entries.push(window(ARTIFACT_LOAD, &[Panic, Error], 4));
        entries.push(window(JOURNAL_IO, &[Panic, Error], 4));
        FaultSchedule { entries }
    }

    /// Sum of the remaining budgets across all windows.
    pub fn total_budget(&self) -> u64 {
        self.entries.iter().map(|e| e.budget).sum()
    }
}

/// RAII guard for an installed [`FaultSchedule`]; clears it on drop.
///
/// Like [`FaultGuard`], holds the process-wide test mutex so chaos runs
/// serialize against other fault-injecting tests. Unlike guard-armed
/// failpoints, scheduled faults fire on **any** thread tagged with an
/// in-window request index — the serve loop's workers are exactly the
/// threads that must observe them.
pub struct ScheduleGuard {
    _exclusive: MutexGuard<'static, ()>,
}

impl ScheduleGuard {
    /// Scheduled firings since this schedule was installed.
    pub fn fired(&self) -> u64 {
        lock().schedule_fired
    }

    /// Sum of the remaining budgets of the installed schedule.
    pub fn remaining_budget(&self) -> u64 {
        lock().schedule.iter().map(|e| e.budget).sum()
    }
}

impl Drop for ScheduleGuard {
    fn drop(&mut self) {
        let mut reg = lock();
        reg.schedule.clear();
        reg.schedule_fired = 0;
    }
}

/// Installs `schedule` process-wide, returning a guard that clears it on
/// drop. See [`ScheduleGuard`] for the concurrency contract; like
/// [`armed`], at most one schedule (or armed failpoint) may be held at a
/// time per thread — the mutex is non-reentrant.
pub fn arm_schedule(schedule: FaultSchedule) -> ScheduleGuard {
    let exclusive = test_lock()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut reg = lock();
    reg.schedule = schedule.entries;
    reg.schedule_fired = 0;
    drop(reg);
    ScheduleGuard {
        _exclusive: exclusive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_failpoints_fire_nothing() {
        let _guard = armed("some_other_point", FaultAction::Nan, 1);
        assert_eq!(fire("not_armed"), None);
        assert!(!is_armed("not_armed"));
    }

    #[test]
    fn armed_failpoint_fires_exactly_count_times() {
        let _guard = armed(FORWARD, FaultAction::Nan, 3);
        assert!(is_armed(FORWARD));
        for _ in 0..3 {
            assert_eq!(fire(FORWARD), Some(FaultAction::Nan));
        }
        assert_eq!(fire(FORWARD), None);
        assert!(!is_armed(FORWARD));
    }

    #[test]
    fn guard_disarms_on_drop() {
        {
            let _guard = armed(SIM_EVAL, FaultAction::Error, 100);
            assert!(is_armed(SIM_EVAL));
        }
        assert!(!is_armed(SIM_EVAL));
    }

    #[test]
    fn fire_may_panic_panics_on_panic_action() {
        let _guard = armed(JOURNAL_IO, FaultAction::Panic, 1);
        let result = std::panic::catch_unwind(|| fire_may_panic(JOURNAL_IO));
        let err = result.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("fault injected: journal_io"));
    }

    #[test]
    fn actions_parse_and_display() {
        for action in [
            FaultAction::Panic,
            FaultAction::Nan,
            FaultAction::Error,
            FaultAction::Stall,
        ] {
            assert_eq!(FaultAction::parse(&action.to_string()), Some(action));
        }
        assert_eq!(FaultAction::parse("error"), Some(FaultAction::Error));
        assert_eq!(FaultAction::parse("bogus"), None);
    }

    #[test]
    fn guard_armed_faults_are_thread_local() {
        let _guard = armed(ARTIFACT_LOAD, FaultAction::Error, 1);
        assert!(is_armed(ARTIFACT_LOAD));
        // Another thread never sees a guard-armed fault.
        let other = std::thread::spawn(|| (is_armed(ARTIFACT_LOAD), fire(ARTIFACT_LOAD)));
        assert_eq!(other.join().unwrap(), (false, None));
        // The arming thread still gets its full budget.
        assert_eq!(fire(ARTIFACT_LOAD), Some(FaultAction::Error));
    }

    #[test]
    fn all_names_are_distinct() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn scheduled_faults_fire_only_inside_their_window() {
        let schedule = FaultSchedule::new().push(ScheduledFault {
            failpoint: FORWARD,
            action: FaultAction::Nan,
            from_index: 10,
            to_index: 12,
            budget: 5,
        });
        let guard = arm_schedule(schedule);
        // Untagged thread: never fires.
        clear_request_index();
        assert_eq!(fire(FORWARD), None);
        // Tagged outside the window: never fires.
        set_request_index(9);
        assert_eq!(fire(FORWARD), None);
        set_request_index(12);
        assert_eq!(fire(FORWARD), None);
        // Inside: fires, on the right failpoint only.
        set_request_index(10);
        assert_eq!(fire(SIM_EVAL), None);
        assert!(is_armed(FORWARD));
        assert_eq!(fire(FORWARD), Some(FaultAction::Nan));
        set_request_index(11);
        assert_eq!(fire(FORWARD), Some(FaultAction::Nan));
        assert_eq!(guard.fired(), 2);
        clear_request_index();
        drop(guard);
        // Cleared on drop.
        set_request_index(10);
        assert_eq!(fire(FORWARD), None);
        clear_request_index();
    }

    #[test]
    fn scheduled_faults_respect_their_budget() {
        let schedule = FaultSchedule::new().push(ScheduledFault {
            failpoint: WORKER,
            action: FaultAction::Panic,
            from_index: 0,
            to_index: 100,
            budget: 2,
        });
        let guard = arm_schedule(schedule);
        set_request_index(0);
        assert_eq!(fire(WORKER), Some(FaultAction::Panic));
        assert_eq!(fire(WORKER), Some(FaultAction::Panic));
        assert_eq!(fire(WORKER), None, "budget spent");
        assert!(!is_armed(WORKER));
        assert_eq!(guard.remaining_budget(), 0);
        clear_request_index();
    }

    #[test]
    fn scheduled_faults_fire_on_any_tagged_thread() {
        let schedule = FaultSchedule::new().push(ScheduledFault {
            failpoint: FORWARD,
            action: FaultAction::Panic,
            from_index: 0,
            to_index: 1,
            budget: 1,
        });
        let _guard = arm_schedule(schedule);
        let other = std::thread::spawn(|| {
            set_request_index(0);
            let fired = fire(FORWARD);
            clear_request_index();
            fired
        });
        assert_eq!(other.join().unwrap(), Some(FaultAction::Panic));
    }

    #[test]
    fn from_seed_is_a_pure_function_of_the_seed() {
        let a = FaultSchedule::from_seed(42, 2000);
        let b = FaultSchedule::from_seed(42, 2000);
        let c = FaultSchedule::from_seed(43, 2000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.total_budget() > 0);
        // Every window targets a known failpoint, stays inside the stream,
        // and leaves the recovery tail clean.
        for entry in &a.entries {
            assert!(ALL.contains(&entry.failpoint));
            assert!(entry.from_index < entry.to_index);
            assert!(entry.to_index <= 2000 * 4 / 5);
            assert!(entry.budget >= 1);
        }
        // The script covers worker kills and a breaker-tripping storm.
        assert!(a.entries.iter().filter(|e| e.failpoint == WORKER).count() >= 3);
        assert!(a
            .entries
            .iter()
            .any(|e| e.failpoint == FORWARD && e.budget >= 4));
    }
}
