//! End-to-end warm-start evaluation.
//!
//! The paper's experiment (§4) compares QAOA started from random parameters
//! against QAOA started from GNN-predicted parameters, both followed by the
//! same classical optimization, reporting the achieved approximation ratio.
//! [`run`] packages one such trajectory; [`WarmStartOutcome`] carries
//! everything Figure 5 / Table 1 need.

use qrand::Rng;

use crate::optimize::{Maximizer, OptimizationResult};
use crate::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};

/// How the initial parameters were chosen — the experimental condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Uniformly random angles (the paper's baseline).
    Random,
    /// Angles predicted by a model or taken from the fixed-angle table.
    Predicted,
}

impl std::fmt::Display for InitStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InitStrategy::Random => write!(f, "random"),
            InitStrategy::Predicted => write!(f, "predicted"),
        }
    }
}

/// The record of one warm-start run on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartOutcome {
    /// Which condition produced the initial parameters.
    pub strategy: InitStrategy,
    /// The initial parameters.
    pub initial_params: Params,
    /// The optimized parameters.
    pub final_params: Params,
    /// Expectation `⟨C⟩` at the initial parameters.
    pub initial_expectation: f64,
    /// Expectation `⟨C⟩` at the optimized parameters.
    pub final_expectation: f64,
    /// Approximation ratio at the initial parameters.
    pub initial_ratio: f64,
    /// Approximation ratio after optimization — the paper's headline metric.
    pub final_ratio: f64,
    /// Best-so-far expectation per optimizer iteration.
    pub history: Vec<f64>,
    /// Objective evaluations spent (proxy for quantum-resource overhead).
    pub evaluations: usize,
    /// Objective evaluations that returned a non-finite value. Non-zero
    /// flags a (partially) diverged trace; the labeler records the graph as
    /// failed when the final expectation itself is non-finite.
    pub non_finite_evals: usize,
}

impl WarmStartOutcome {
    /// `true` when the optimized result is unusable: the final expectation
    /// or any final parameter is non-finite.
    pub fn diverged(&self) -> bool {
        !self.final_expectation.is_finite()
            || self
                .final_params
                .to_flat()
                .iter()
                .any(|v| !v.is_finite())
    }
}

impl WarmStartOutcome {
    /// Iterations needed to reach `fraction` of the final expectation —
    /// the convergence-speed metric motivating warm starts (§2: "achieve
    /// convergence with fewer iterations on quantum computers").
    pub fn iterations_to_fraction(&self, fraction: f64) -> Option<usize> {
        let target = self.final_expectation * fraction;
        self.history
            .iter()
            .position(|&v| v >= target)
            .map(|i| i + 1)
    }
}

/// Runs QAOA on `hamiltonian` starting from `initial` parameters, optimizing
/// with `optimizer`, and reports the full outcome.
///
/// Builds one [`Evaluator`] for the whole trajectory and delegates to
/// [`run_with`]; callers that already hold an evaluator (e.g. the dataset
/// labeler, which canonicalizes afterwards) should call that directly.
pub fn run<M, R>(
    hamiltonian: &MaxCutHamiltonian,
    initial: Params,
    strategy: InitStrategy,
    optimizer: &M,
    rng: &mut R,
) -> WarmStartOutcome
where
    M: Maximizer,
    R: Rng + ?Sized,
{
    let circuit = QaoaCircuit::new(hamiltonian.clone());
    let mut evaluator = Evaluator::new(&circuit);
    run_with(&mut evaluator, initial, strategy, optimizer, rng)
}

/// [`run`] on a caller-supplied [`Evaluator`]: the entire optimization
/// trace — initial evaluation plus every objective call the optimizer
/// makes — executes in the evaluator's scratch buffer with zero
/// state-vector allocations.
pub fn run_with<M, R>(
    evaluator: &mut Evaluator<'_>,
    initial: Params,
    strategy: InitStrategy,
    optimizer: &M,
    rng: &mut R,
) -> WarmStartOutcome
where
    M: Maximizer,
    R: Rng + ?Sized,
{
    let initial_expectation = evaluator.expectation_in_place(&initial);
    let OptimizationResult {
        best_point,
        best_value,
        history,
        evaluations,
        non_finite_evals,
    } = optimizer.maximize(
        |flat: &[f64]| evaluator.expectation_flat(flat),
        &initial.to_flat(),
        rng,
    );
    let final_params = Params::from_flat(&best_point).expect("optimizer preserves layout");
    let hamiltonian = evaluator.circuit().hamiltonian();
    WarmStartOutcome {
        strategy,
        initial_params: initial,
        final_params,
        initial_expectation,
        final_expectation: best_value,
        initial_ratio: hamiltonian.approximation_ratio(initial_expectation),
        final_ratio: hamiltonian.approximation_ratio(best_value),
        history,
        evaluations,
        non_finite_evals,
    }
}

/// Convenience: a random-initialization run of the given depth — the
/// paper's baseline condition.
pub fn run_random_init<M, R>(
    hamiltonian: &MaxCutHamiltonian,
    depth: usize,
    optimizer: &M,
    rng: &mut R,
) -> WarmStartOutcome
where
    M: Maximizer,
    R: Rng + ?Sized,
{
    let initial = Params::random(depth, rng);
    run(hamiltonian, initial, InitStrategy::Random, optimizer, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::NelderMead;
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn ham(g: &Graph) -> MaxCutHamiltonian {
        MaxCutHamiltonian::new(g)
    }

    #[test]
    fn optimization_never_hurts() {
        let mut rng = StdRng::seed_from_u64(61);
        let h = ham(&Graph::cycle(6).unwrap());
        let outcome = run_random_init(&h, 1, &NelderMead::new(100), &mut rng);
        assert!(outcome.final_expectation >= outcome.initial_expectation - 1e-9);
        assert!(outcome.final_ratio >= outcome.initial_ratio - 1e-9);
        assert!(outcome.final_ratio <= 1.0 + 1e-9);
        assert_eq!(outcome.strategy, InitStrategy::Random);
    }

    #[test]
    fn good_start_converges_to_good_ratio() {
        // Warm-start from the fixed angles of the right degree: already
        // near-optimal, the optimizer should close the remaining gap.
        let mut rng = StdRng::seed_from_u64(62);
        let g = qgraph::generate::random_regular(8, 3, &mut rng).unwrap();
        let h = ham(&g);
        let fa = crate::fixed_angle::fixed_angles(3);
        let outcome = run(
            &h,
            fa.params.clone(),
            InitStrategy::Predicted,
            &NelderMead::new(150),
            &mut rng,
        );
        assert!(outcome.initial_ratio > 0.6);
        assert!(outcome.final_ratio >= outcome.initial_ratio - 1e-9);
        assert_eq!(outcome.strategy, InitStrategy::Predicted);
    }

    #[test]
    fn warm_start_converges_faster_than_bad_start() {
        // From fixed angles, fewer iterations are needed to reach 95% of the
        // final value than from a deliberately bad start. This is the core
        // quantum-resource claim of the paper.
        let mut rng = StdRng::seed_from_u64(63);
        let g = qgraph::generate::random_regular(10, 3, &mut rng).unwrap();
        let h = ham(&g);
        let warm = run(
            &h,
            crate::fixed_angle::fixed_angles(3).params,
            InitStrategy::Predicted,
            &NelderMead::new(200),
            &mut rng,
        );
        let cold = run(
            &h,
            Params::new(vec![3.0], vec![2.0]), // far from any optimum
            InitStrategy::Random,
            &NelderMead::new(200),
            &mut rng,
        );
        let warm_iters = warm.iterations_to_fraction(0.95).unwrap();
        let cold_iters = cold.iterations_to_fraction(0.95).unwrap();
        assert!(
            warm_iters <= cold_iters,
            "warm {warm_iters} vs cold {cold_iters}"
        );
    }

    #[test]
    fn history_matches_final_value() {
        let mut rng = StdRng::seed_from_u64(64);
        let h = ham(&Graph::complete(4).unwrap());
        let outcome = run_random_init(&h, 2, &NelderMead::new(60), &mut rng);
        let last = *outcome.history.last().unwrap();
        assert!((last - outcome.final_expectation).abs() < 1e-9);
        assert!(outcome.evaluations >= outcome.history.len());
    }

    #[test]
    fn strategy_display() {
        assert_eq!(InitStrategy::Random.to_string(), "random");
        assert_eq!(InitStrategy::Predicted.to_string(), "predicted");
    }
}
