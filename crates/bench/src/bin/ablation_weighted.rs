//! §7 ablation: weighted graphs, the paper's stated limitation.
//!
//! "The existing models are primarily designed for unweighted graphs,
//! leading to inconsistent performance on weighted graphs." This binary
//! quantifies that: train a GIN on the standard unweighted dataset, then
//! evaluate it on (a) unweighted and (b) weight-randomized versions of the
//! same test graphs, and also train a second GIN directly on weighted
//! labels to show how much of the gap is recoverable.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::GnnKind;
use qaoa_gnn::dataset::Dataset;
use qaoa_gnn::eval::{evaluate_model, EvalConfig};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn_bench::{f2, print_table, write_csv};
use qgraph::Graph;

fn weighted_copy(graphs: &[Graph], seed: u64) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    graphs
        .iter()
        .map(|g| qgraph::generate::randomize_weights(g, 0.2, 2.0, &mut rng).expect("valid range"))
        .collect()
}

fn main() {
    let config = PipelineConfig::from_env();
    println!("labeling {} unweighted graphs...", config.dataset.count);
    let unweighted = Dataset::generate(&config.dataset, &config.labeling, config.seed)
        .expect("default dataset spec is valid");

    // Train on unweighted labels.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x77);
    let pipeline = Pipeline::run_on_dataset(GnnKind::Gin, unweighted.clone(), &config, &mut rng);

    // Shared test graphs, with and without random weights.
    let test_graphs: Vec<Graph> = pipeline
        .report
        .per_graph
        .iter()
        .zip(unweighted.entries.iter().rev())
        .map(|(_, e)| e.graph.clone())
        .collect();
    let weighted_graphs = weighted_copy(&test_graphs, config.seed ^ 0x88);

    let eval = EvalConfig::default();
    let on_unweighted = evaluate_model(&pipeline.model, &test_graphs, &eval, &mut rng);
    let on_weighted = evaluate_model(&pipeline.model, &weighted_graphs, &eval, &mut rng);

    // Train a second model directly on weighted labels of the same shapes.
    println!("labeling the weighted variant of the training set...");
    let weighted_train_graphs: Vec<Graph> = weighted_copy(
        &unweighted
            .entries
            .iter()
            .map(|e| e.graph.clone())
            .collect::<Vec<_>>(),
        config.seed ^ 0x99,
    );
    let weighted_dataset =
        Dataset::label_graphs(&weighted_train_graphs, &config.labeling, config.seed ^ 0xaa);
    let mut rng2 = StdRng::seed_from_u64(config.seed ^ 0xbb);
    let weighted_pipeline =
        Pipeline::run_on_dataset(GnnKind::Gin, weighted_dataset, &config, &mut rng2);
    let retrained_on_weighted =
        evaluate_model(&weighted_pipeline.model, &weighted_graphs, &eval, &mut rng2);

    let rows = vec![
        vec![
            "unweighted-train / unweighted-test".into(),
            f2(on_unweighted.mean_improvement),
            f2(on_unweighted.std_improvement),
            f2(on_unweighted.win_rate() * 100.0),
        ],
        vec![
            "unweighted-train / weighted-test".into(),
            f2(on_weighted.mean_improvement),
            f2(on_weighted.std_improvement),
            f2(on_weighted.win_rate() * 100.0),
        ],
        vec![
            "weighted-train / weighted-test".into(),
            f2(retrained_on_weighted.mean_improvement),
            f2(retrained_on_weighted.std_improvement),
            f2(retrained_on_weighted.win_rate() * 100.0),
        ],
    ];
    let header = ["condition", "improvement_pts", "std", "win_rate_%"];
    print_table("Weighted-graph ablation (GIN, §7)", &header, &rows);
    let path = write_csv("ablation_weighted.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
