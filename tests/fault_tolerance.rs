//! Fault-injection and checkpoint/resume tests: the labeling and training
//! pipeline must survive per-graph panics, NaN objectives, and interrupts
//! without losing work or determinism.
//!
//! These are the acceptance tests of the robustness layer: an injected
//! panic yields a recorded failure (not a dead run), a NaN objective never
//! wins an optimization, and a labeling run killed mid-batch resumes from
//! its journal into a dataset bit-identical to the uninterrupted one.

use std::fs;

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::GnnKind;
use qaoa::optimize::{GridSearch, Maximizer, MultiStart, NelderMead};
use qaoa::{Evaluator, MaxCutHamiltonian, QaoaCircuit};
use qaoa_gnn::dataset::{
    label_graph, DatasetError, FailurePolicy, LabelConfig, LabelFailureReason, LabelReport,
};
use qaoa_gnn::faults::{self, FaultAction};
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::store::JOURNAL_FILE;
use qaoa_gnn::serve::ServeRequest;
use qaoa_gnn::{
    Dataset, GuardedPredictor, LabeledGraph, Rung, RunArtifact, ServeConfig, SkipReason,
    TrainingEnvelope,
};
use qgraph::generate::DatasetSpec;
use qgraph::Graph;
use qsim::exec::Executor;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("qaoa_gnn_fault_tests")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn test_graphs(seed: u64, count: usize) -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| qgraph::generate::erdos_renyi(4 + i % 5, 0.5, &mut rng).unwrap())
        .collect()
}

/// Acceptance: a labeling run with injected per-graph panics completes,
/// reports exactly the failed indices, and labels every other graph.
#[test]
fn injected_panics_report_exact_indices_and_label_the_rest() {
    let graphs = test_graphs(1, 10);
    let config = LabelConfig::quick(30);
    // Panic on every n=6 graph — a structural trigger, so both the first
    // attempt and the fresh-substream retry fail.
    let labeler = |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
        if g.n() == 6 {
            panic!("injected: refusing n=6");
        }
        label_graph(g, c, r)
    };
    let bad: Vec<usize> = graphs
        .iter()
        .enumerate()
        .filter(|(_, g)| g.n() == 6)
        .map(|(i, _)| i)
        .collect();
    assert!(!bad.is_empty(), "fixture must contain n=6 graphs");

    let (ds, report) = Dataset::label_graphs_checked_with(&labeler, &graphs, &config, 5);
    assert_eq!(report.total, graphs.len());
    assert_eq!(report.unrecovered(), bad);
    assert_eq!(ds.len(), graphs.len() - bad.len());
    for failure in &report.failures {
        assert!(matches!(
            &failure.reason,
            LabelFailureReason::Panic(m) if m.contains("injected")
        ));
    }
    // Survivors are bit-identical to the clean run's labels.
    let clean = Dataset::label_graphs(&graphs, &config, 5);
    let survivors: Vec<&LabeledGraph> = clean
        .entries
        .iter()
        .filter(|e| e.graph.n() != 6)
        .collect();
    assert_eq!(ds.entries.iter().collect::<Vec<_>>(), survivors);
}

/// Acceptance: an injected NaN "objective" (a labeler whose optimization
/// diverged) becomes a recorded `NonFinite` failure, not a poisoned label.
#[test]
fn injected_nan_objective_is_recorded_not_propagated() {
    let graphs = test_graphs(2, 8);
    let config = LabelConfig::quick(30);
    let labeler = |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
        let mut label = label_graph(g, c, r);
        if g.n() == 5 {
            label.params = qaoa::Params::new(vec![f64::NAN], vec![0.1]);
        }
        label
    };
    let (ds, report) = Dataset::label_graphs_checked_with(&labeler, &graphs, &config, 6);
    assert!(!report.unrecovered().is_empty());
    for entry in &ds.entries {
        assert!(entry.params.to_flat().iter().all(|v| v.is_finite()));
        assert!(entry.expectation.is_finite());
    }
    for failure in &report.failures {
        assert!(matches!(
            &failure.reason,
            LabelFailureReason::NonFinite(what) if what == "params"
        ));
    }
}

/// A NaN-returning objective handed straight to the optimizers must never
/// produce a NaN "best": the optimizer skips the poisoned region and the
/// multi-start/grid-search wrappers skip poisoned candidates.
#[test]
fn optimizers_survive_nan_objective_end_to_end() {
    // NaN hole around the origin; smooth bowl elsewhere.
    let objective = |x: &[f64]| {
        let r2: f64 = x.iter().map(|v| v * v).sum();
        if r2 < 0.25 {
            f64::NAN
        } else {
            -r2
        }
    };
    let mut rng = StdRng::seed_from_u64(3);
    let restart = MultiStart::new(NelderMead::new(40), 5, vec![(-2.0, 2.0), (-2.0, 2.0)]);
    for result in [
        NelderMead::new(120).maximize(objective, &[1.0, 1.0], &mut rng),
        restart.maximize(objective, &[1.0, 1.0], &mut rng),
        GridSearch { resolution: 9 }.maximize(objective, &[1.0, 1.0], &mut rng),
    ] {
        assert!(result.best_value.is_finite());
        assert!(!result.diverged());
        assert!(result.best_point.iter().all(|v| v.is_finite()));
    }
}

/// Acceptance: a labeling run interrupted mid-batch and resumed from its
/// journal is bit-identical (`==`) to the uninterrupted run — the
/// kill-and-resume round trip.
#[test]
fn kill_and_resume_round_trip_is_bit_identical() {
    let graphs = test_graphs(4, 8);
    let config = LabelConfig::quick(30);
    let seed = 99;
    // Uninterrupted reference (no journal involved at all).
    let (reference, _) = Dataset::label_graphs_checked(&graphs, &config, seed);

    // "Killed" run: journal a full run, then truncate the journal to half
    // its records plus a torn partial line — what a SIGKILL mid-append
    // leaves behind.
    let dir = temp_dir("kill_resume");
    let (full_run, _) = Dataset::resume_labeling(&dir, &graphs, &config, seed).unwrap();
    assert_eq!(full_run, reference);
    let journal_path = dir.join(JOURNAL_FILE);
    let full = fs::read_to_string(&journal_path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let mut truncated: String = lines[..lines.len() / 2]
        .iter()
        .flat_map(|l| [*l, "\n"])
        .collect();
    truncated.push_str(&lines[lines.len() / 2][..3]); // torn tail
    fs::write(&journal_path, truncated).unwrap();

    let (resumed, report) = Dataset::resume_labeling(&dir, &graphs, &config, seed).unwrap();
    assert_eq!(resumed, reference, "resumed dataset must be bit-identical");
    assert!(report.is_complete());
    fs::remove_dir_all(&dir).unwrap();
}

/// The pipeline front end honors the checkpoint dir: a second run over an
/// existing complete journal relabels nothing and reproduces the dataset.
#[test]
fn checkpointed_pipeline_reuses_the_journal() {
    let dir = temp_dir("pipeline_checkpoint");
    let config = PipelineConfig::paper_scale()
        .with_dataset(DatasetSpec::with_count(24))
        .with_iterations(25)
        .with_training(gnn::train::TrainConfig::quick(4))
        .with_test_size(6)
        .with_checkpoint_dir(Some(dir.clone()));

    let mut rng = StdRng::seed_from_u64(7);
    let first = Pipeline::try_run(GnnKind::Gcn, &config, &mut rng).unwrap();
    assert!(first.label_report.is_complete());

    let mut rng = StdRng::seed_from_u64(7);
    let second = Pipeline::try_run(GnnKind::Gcn, &config, &mut rng).unwrap();
    assert_eq!(first.raw_dataset, second.raw_dataset);
    assert_eq!(first.test_mse, second.test_mse);

    // And the plain (uncheckpointed) path agrees bit-for-bit.
    let plain = config.clone().with_checkpoint_dir(None);
    let mut rng = StdRng::seed_from_u64(7);
    let third = Pipeline::try_run(GnnKind::Gcn, &plain, &mut rng).unwrap();
    assert_eq!(first.raw_dataset, third.raw_dataset);
    fs::remove_dir_all(&dir).unwrap();
}

/// `FailurePolicy::Halt` turns unrecovered labeling failures into a typed
/// error; `Skip` (the default) drops them and reports.
#[test]
fn failure_policy_halt_vs_skip() {
    let graphs = test_graphs(5, 6);
    let config = LabelConfig::quick(30);
    let labeler = |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
        assert!(g.n() != 4, "injected");
        label_graph(g, c, r)
    };
    let (ds, report) = Dataset::label_graphs_checked_with(&labeler, &graphs, &config, 8);
    assert!(!report.is_complete());
    // Skip (the default policy): the dataset is exactly the labeled subset.
    assert_eq!(FailurePolicy::default(), FailurePolicy::Skip);
    assert_eq!(ds.len(), report.labeled);
    assert_eq!(report.labeled + report.unrecovered().len(), report.total);
    // Halt: the same report surfaces as a typed, human-readable error
    // (this is what `Pipeline::try_run` returns under `FailurePolicy::Halt`).
    let unrecovered = report.unrecovered();
    let err = DatasetError::LabelingFailed(report);
    let text = err.to_string();
    assert!(text.contains("labeling failed"));
    for index in unrecovered {
        assert!(text.contains(&index.to_string()));
    }
}

/// Training on a dataset whose labels force a non-finite loss stops
/// cleanly, returns the best finite-epoch model, and records the event.
#[test]
fn training_divergence_recorded_and_model_stays_finite() {
    use gnn::train::{train, Example, TrainConfig};
    use gnn::{GnnModel, GraphContext, ModelConfig};

    let mut rng = StdRng::seed_from_u64(9);
    let model_config = ModelConfig {
        dropout: 0.0,
        hidden_dim: 8,
        ..ModelConfig::default()
    };
    let model = GnnModel::new(GnnKind::Gin, model_config.clone(), &mut rng);
    let examples: Vec<Example> = (4..8)
        .map(|n| {
            let g = Graph::cycle(n).unwrap();
            Example {
                context: GraphContext::new(&g, &model_config.features, 0.0),
                // One poisoned label in the batch.
                target: if n == 6 { [f64::NAN, 0.5] } else { [0.4, 0.6] },
            }
        })
        .collect();
    let history = train(
        &model,
        &examples,
        &TrainConfig {
            shuffle: false,
            ..TrainConfig::quick(10)
        },
        &mut rng,
    );
    let event = history.diverged.expect("divergence recorded");
    assert!(!event.loss.is_finite());
    let (gamma, beta) = model.predict(&Graph::cycle(9).unwrap());
    assert!(gamma.is_finite() && beta.is_finite());
    assert!(history
        .epochs
        .iter()
        .all(|e| e.train_loss.is_finite()));
}

/// The serialized artifact story: a label report and training history both
/// survive a JSON round trip, including a non-finite divergence loss.
#[test]
fn reports_serialize_into_the_run_artifact() {
    use qaoa_gnn::dataset::{LabelFailure, LabelFailureReason};
    use qaoa_gnn::{FromJson, Json, ToJson};

    let report = LabelReport {
        total: 4,
        labeled: 3,
        skipped_isomorphic: 0,
        failures: vec![LabelFailure {
            index: 2,
            reason: LabelFailureReason::Panic("boom".to_string()),
            recovered: false,
        }],
    };
    let text = report.to_json().to_pretty();
    let back = LabelReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, report);

    let history = gnn::train::TrainHistory {
        epochs: vec![gnn::train::EpochStats {
            epoch: 0,
            train_loss: 0.4,
            learning_rate: 0.01,
        }],
        diverged: Some(gnn::train::DivergenceEvent {
            epoch: 1,
            loss: f64::NEG_INFINITY,
        }),
    };
    let text = history.to_json().to_compact();
    let back = gnn::train::TrainHistory::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back.epochs, history.epochs);
    assert!(!back.diverged.unwrap().loss.is_finite());
}

/// Acceptance (parallel path): a panic that originates on a *pooled
/// simulator worker thread* unwinds through the pool into the labeling
/// worker and is contained per-graph — the failure report and the
/// surviving labels are exactly those of the serial injection.
///
/// Guard-armed failpoints are thread-gated to the arming thread and
/// labeling always runs on scoped worker threads, so the injection here
/// panics directly inside a `qpool` worker (the same unwind path a
/// `sim_eval` panic takes under pooled evaluation): worker panics →
/// `run_mut` resumes the payload on the labeling worker → the per-graph
/// `catch_unwind` records it.
#[test]
fn pooled_worker_panic_is_isolated_per_graph_exactly_as_serial() {
    let graphs = test_graphs(1, 10);
    let config = LabelConfig::quick(30).with_sim_threads(2);

    let pooled_labeler = |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
        if g.n() == 6 {
            // Structural trigger: the panic fires on a pool worker thread,
            // so both the first attempt and the retry cross thread
            // boundaries before containment.
            let pool = qpool::ThreadPool::new(2);
            let mut lanes = [0u8; 4];
            pool.run_mut(&mut lanes, |i, _| {
                if i == 0 {
                    panic!("fault injected: sim_eval");
                }
            });
            unreachable!("worker panic must propagate to the labeling worker");
        }
        let label = label_graph(g, c, r);
        // Survivors exercise the pooled kernels too: a forced-crossover
        // pooled evaluator reproduces the serial label's expectation.
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(g));
        let exec = Executor::threaded_with_crossover(2, 2);
        let pooled = Evaluator::with_executor(&circuit, exec).expectation_in_place(&label.params);
        assert!((pooled - label.expectation).abs() <= 1e-12);
        label
    };

    let bad: Vec<usize> = graphs
        .iter()
        .enumerate()
        .filter(|(_, g)| g.n() == 6)
        .map(|(i, _)| i)
        .collect();
    assert!(!bad.is_empty(), "fixture must contain n=6 graphs");

    let (ds, report) = Dataset::label_graphs_checked_with(&pooled_labeler, &graphs, &config, 5);
    assert_eq!(report.total, graphs.len());
    assert_eq!(report.unrecovered(), bad);
    for failure in &report.failures {
        assert!(matches!(
            &failure.reason,
            LabelFailureReason::Panic(m) if m.contains("fault injected: sim_eval")
        ));
    }

    // "Exactly as serial": the same structural injection on the serial
    // path (panic on the labeling worker itself, sim_threads = 0) yields
    // the same unrecovered indices and a bit-identical surviving dataset.
    let serial_labeler = |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
        if g.n() == 6 {
            panic!("fault injected: sim_eval");
        }
        label_graph(g, c, r)
    };
    let serial_config = LabelConfig::quick(30);
    let (serial_ds, serial_report) =
        Dataset::label_graphs_checked_with(&serial_labeler, &graphs, &serial_config, 5);
    assert_eq!(report.unrecovered(), serial_report.unrecovered());
    assert_eq!(
        ds.entries, serial_ds.entries,
        "parallel-path survivors must be bit-identical to the serial run"
    );
}

/// Acceptance (parallel path, `sim_eval` failpoint): a server whose
/// verification runs on the pooled evaluator (`sim_threads > 0`, graph
/// above the crossover so the pool really engages) degrades through
/// exactly the same ladder as the serial server when `sim_eval` panics —
/// same rung, same skip reason, same served parameters.
#[test]
fn sim_eval_panic_under_pooled_serving_matches_serial_degradation() {
    // n = 14 ≥ DEFAULT_CROSSOVER_QUBITS, so sim_threads = 2 actually pools.
    const { assert!(14 >= qsim::exec::DEFAULT_CROSSOVER_QUBITS) };
    let graph = Graph::cycle(14).unwrap();
    let outcomes: Vec<_> = [0usize, 2]
        .iter()
        .map(|&sim_threads| {
            let served = GuardedPredictor::new(
                fault_test_artifact(),
                ServeConfig::default().with_sim_threads(sim_threads),
            );
            // One firing: the GNN rung's verification panics (contained),
            // the fixed-angle rung verifies cleanly on the configured
            // executor.
            let _fault = faults::armed(faults::SIM_EVAL, FaultAction::Panic, 1);
            served
                .handle(&ServeRequest::from_graph(graph.clone()))
                .result
                .unwrap()
        })
        .collect();

    let (serial, pooled) = (&outcomes[0], &outcomes[1]);
    for outcome in [serial, pooled] {
        assert_eq!(outcome.rung, Rung::FixedAngle);
        assert!(matches!(outcome.skips[0].reason, SkipReason::Panicked));
    }
    // The served parameters are independent of the executor; the verified
    // score may differ only by the pooled reduction grouping.
    assert_eq!(serial.params, pooled.params);
    let (s, p) = (
        serial.verified_score.expect("serial rung verified"),
        pooled.verified_score.expect("pooled rung verified"),
    );
    assert!(
        (s - p).abs() <= 1e-12,
        "pooled verification drifted from serial: {s} vs {p}"
    );
}

/// A cheap untrained artifact whose envelope admits every graph used in
/// the serving fault tests, so degradation is attributable to injection.
fn fault_test_artifact() -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(7001);
    let config = gnn::ModelConfig {
        hidden_dim: 4,
        ..gnn::ModelConfig::default()
    };
    let model = gnn::GnnModel::new(GnnKind::Gcn, config, &mut rng);
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: gnn::train::TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: 0,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}
