use qgraph::{maxcut, Graph};
use qsim::diagonal::DiagonalOperator;

/// The Max-Cut cost Hamiltonian of a graph, as a diagonal operator with the
/// classical optimum attached.
///
/// `C|z⟩ = cut(z)|z⟩` where `cut(z)` is the total weight of edges whose
/// endpoints take different bit values in `z`. Maximizing `⟨C⟩` is the QAOA
/// objective; the stored optimum (found by brute force) converts raw
/// expectations into the paper's approximation ratios.
///
/// # Example
///
/// ```
/// use qaoa::MaxCutHamiltonian;
/// use qgraph::Graph;
///
/// # fn main() -> Result<(), qgraph::GraphError> {
/// let ham = MaxCutHamiltonian::new(&Graph::complete(4)?);
/// assert_eq!(ham.optimal_value(), 4.0);
/// assert_eq!(ham.num_qubits(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MaxCutHamiltonian {
    graph: Graph,
    operator: DiagonalOperator,
    optimal_value: f64,
}

impl MaxCutHamiltonian {
    /// Builds the Hamiltonian and computes the classical optimum.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than [`qsim::MAX_QUBITS`] nodes (the
    /// diagonal table has `2^n` entries).
    pub fn new(graph: &Graph) -> Self {
        let n = graph.n();
        assert!(
            n <= qsim::MAX_QUBITS,
            "graph with {n} nodes exceeds the simulator limit of {} qubits",
            qsim::MAX_QUBITS
        );
        let operator = DiagonalOperator::from_fn(n, |z| maxcut::cut_value_mask(graph, z));
        // The diagonal already enumerates all cuts; its maximum is the
        // optimum (avoids a second exponential sweep through brute_force).
        let optimal_value = operator.max_value();
        MaxCutHamiltonian {
            graph: graph.clone(),
            operator,
            optimal_value,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The diagonal operator.
    pub fn operator(&self) -> &DiagonalOperator {
        &self.operator
    }

    /// Number of qubits (= nodes).
    pub fn num_qubits(&self) -> usize {
        self.graph.n()
    }

    /// The optimal (maximum) cut value.
    pub fn optimal_value(&self) -> f64 {
        self.optimal_value
    }

    /// An optimal cut assignment.
    pub fn optimal_cut(&self) -> maxcut::Cut {
        let mask = self.operator.argmax();
        let side = (0..self.graph.n()).map(|v| (mask >> v) & 1 == 1).collect();
        maxcut::Cut::from_assignment(&self.graph, side)
    }

    /// Approximation ratio of an achieved expectation/cut value.
    pub fn approximation_ratio(&self, achieved: f64) -> f64 {
        maxcut::approximation_ratio(achieved, self.optimal_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matches_cut_values() {
        let g = Graph::cycle(4).unwrap();
        let ham = MaxCutHamiltonian::new(&g);
        // |0101⟩ (mask 0b0101) cuts all four edges.
        assert_eq!(ham.operator().values()[0b0101], 4.0);
        // |0000⟩ cuts nothing.
        assert_eq!(ham.operator().values()[0], 0.0);
        assert_eq!(ham.optimal_value(), 4.0);
    }

    #[test]
    fn optimum_matches_brute_force() {
        use qrand::SeedableRng;
        let mut rng = qrand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = qgraph::generate::erdos_renyi(8, 0.5, &mut rng).unwrap();
            let ham = MaxCutHamiltonian::new(&g);
            assert_eq!(ham.optimal_value(), maxcut::brute_force(&g).value);
        }
    }

    #[test]
    fn optimal_cut_achieves_optimum() {
        let g = Graph::complete(5).unwrap();
        let ham = MaxCutHamiltonian::new(&g);
        let cut = ham.optimal_cut();
        assert_eq!(cut.value, ham.optimal_value());
    }

    #[test]
    fn weighted_hamiltonian() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 2.5)]).unwrap();
        let ham = MaxCutHamiltonian::new(&g);
        assert_eq!(ham.optimal_value(), 2.5);
        assert_eq!(ham.operator().values()[0b01], 2.5);
        assert_eq!(ham.operator().values()[0b11], 0.0);
    }

    #[test]
    fn approximation_ratio_uses_optimum() {
        let g = Graph::cycle(6).unwrap();
        let ham = MaxCutHamiltonian::new(&g);
        assert!((ham.approximation_ratio(3.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edgeless_graph_ratio_is_one() {
        let g = Graph::empty(2).unwrap();
        let ham = MaxCutHamiltonian::new(&g);
        assert_eq!(ham.optimal_value(), 0.0);
        assert_eq!(ham.approximation_ratio(0.0), 1.0);
    }
}
