//! Property-based stress for `qpool::swap::SwapCell` — until now the cell
//! was exercised only indirectly through the serve-loop tests. These
//! properties drive seeded publish/read schedules straight at the cell and
//! assert the three contracts the serving layer leans on:
//!
//! 1. **Monotone generations**: a reader never observes the published
//!    generation moving backwards, no matter how swaps interleave with its
//!    loads.
//! 2. **No torn reads**: every loaded value is internally consistent — all
//!    fields derive from the same generation — because a load hands out an
//!    `Arc` clone of one complete publication, never a mix.
//! 3. **Reclamation grace**: clones outlive arbitrarily many later swaps,
//!    and every published value is dropped exactly once (no leak, no
//!    double free) — the drain-then-reclaim protocol proven in the module
//!    docs, hammered here with drop-counting canaries.

use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use qcheck::{prop_assert, prop_assert_eq, properties};
use qpool::swap::SwapCell;

const SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A publication whose fields are all pure functions of its generation:
/// any mix of fields from two different publications is detectable.
#[derive(Debug)]
struct Versioned {
    generation: u64,
    checks: [u64; 4],
}

impl Versioned {
    fn new(generation: u64) -> Versioned {
        Versioned {
            generation,
            checks: [
                generation.wrapping_mul(SALT),
                generation ^ SALT,
                generation.rotate_left(17),
                !generation,
            ],
        }
    }

    fn torn(&self) -> bool {
        self.checks != Versioned::new(self.generation).checks
    }
}

/// Increments a shared counter on drop; pairs created-count against
/// dropped-count to catch both leaks and double frees.
struct Canary {
    payload: u64,
    drops: Arc<AtomicUsize>,
}

impl Drop for Canary {
    fn drop(&mut self) {
        self.drops.fetch_add(1, SeqCst);
    }
}

properties! {
    cases = 16;

    /// Readers racing a swapper observe generations that only move
    /// forward, every observation internally consistent, and nothing
    /// beyond what was published.
    fn concurrent_readers_see_monotone_untorn_generations(
        swaps in 1u64..48,
        readers in 1usize..4,
        reads in 8usize..96,
    ) {
        let cell = SwapCell::new(Versioned::new(0));
        let observed: Vec<Vec<(u64, bool)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    let cell = &cell;
                    scope.spawn(move || {
                        (0..reads)
                            .map(|_| {
                                let v = cell.load();
                                (v.generation, v.torn())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for generation in 1..=swaps {
                cell.swap(Versioned::new(generation));
                std::thread::yield_now();
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("reader panicked"))
                .collect()
        });
        for sequence in &observed {
            let mut last = 0u64;
            for &(generation, torn) in sequence {
                prop_assert!(!torn, "torn read: mixed fields from two publications");
                prop_assert!(
                    generation >= last,
                    "generation moved backwards: {} after {}",
                    generation,
                    last
                );
                prop_assert!(generation <= swaps, "read a generation never published");
                last = generation;
            }
        }
    }

    /// A clone pinned before a burst of swaps stays bit-intact afterwards
    /// — reclamation can never reach a value a reader still holds.
    fn clones_survive_arbitrarily_many_later_swaps(swaps in 2u64..64) {
        let cell = SwapCell::new(Versioned::new(0));
        let pinned = cell.load();
        for generation in 1..=swaps {
            cell.swap(Versioned::new(generation));
        }
        prop_assert_eq!(pinned.generation, 0);
        prop_assert!(!pinned.torn(), "pinned clone corrupted by later swaps");
        prop_assert_eq!(cell.load().generation, swaps);
    }

    /// Every value ever published is dropped exactly once, regardless of
    /// how many clones were taken and when they were released — counted
    /// under concurrent reader traffic to stress the drain-then-reclaim
    /// step, not just the happy path.
    fn every_publication_dropped_exactly_once(
        swaps in 1usize..48,
        hold_every in 1usize..5,
        readers in 0usize..3,
    ) {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut held = Vec::new();
        {
            let cell = SwapCell::new(Canary {
                payload: 0,
                drops: Arc::clone(&drops),
            });
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..readers)
                    .map(|_| {
                        let cell = &cell;
                        scope.spawn(move || {
                            for _ in 0..swaps {
                                let c = cell.load();
                                assert!(c.payload as usize <= swaps);
                            }
                        })
                    })
                    .collect();
                for i in 1..=swaps {
                    if i % hold_every == 0 {
                        held.push(cell.load());
                    }
                    cell.swap(Canary {
                        payload: i as u64,
                        drops: Arc::clone(&drops),
                    });
                }
                for handle in handles {
                    handle.join().expect("reader panicked");
                }
            });
            // Held clones are still readable while the cell lives.
            for clone in &held {
                prop_assert!(clone.payload as usize <= swaps);
            }
        }
        // Cell dropped; held clones keep their values alive.
        prop_assert_eq!(drops.load(SeqCst), swaps + 1 - held.len());
        drop(held);
        // Every publication dropped exactly once.
        prop_assert_eq!(drops.load(SeqCst), swaps + 1);
    }
}
