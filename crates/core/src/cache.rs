//! Canonical-form prediction cache.
//!
//! At scale the request stream repeats: many submitted graphs are identical
//! or isomorphic up to node relabeling, and the paper's whole premise is
//! that the optimal `(γ, β)` depend on graph *structure*. This module
//! caches [`crate::serve::PredictionOutcome`]s keyed by the
//! permutation-invariant [`qgraph::canon::wl_hash`], so a structurally
//! repeated graph is answered from memory instead of paying another GNN
//! forward (and, with verification on, another `2^n` simulation).
//!
//! ## Correctness contract
//!
//! * **A WL-hash collision can never serve wrong parameters.** Every bucket
//!   hit re-checks the stored graph against the incoming one with the exact
//!   matcher [`qgraph::canon::are_isomorphic`]; a colliding non-isomorphic
//!   entry is skipped (and counted in [`CacheStats::collisions`]).
//! * **A retrained artifact never serves stale angles.** Entries are keyed
//!   by the publishing generation. [`PredictionCache::invalidate_all`] runs
//!   eagerly on every hot-swap, and lookups additionally purge any entry
//!   whose generation differs from the requester's — so even an insert that
//!   races a swap can only ever produce a dead entry, never a stale hit.
//! * **A broken cache degrades, never fails.** The entire lookup/insert
//!   path runs under `catch_unwind` (exercised via the
//!   [`crate::faults::CACHE_LOOKUP`] failpoint): a panicking hash or lookup
//!   is contained and reported as a normal miss, and the request proceeds
//!   down the ordinary GNN rung.
//! * **Only clean outcomes are cached.** Degraded replies (skips, clamped
//!   angles, lower rungs) are never pinned; the next structurally equal
//!   request retries the full ladder.
//!
//! The cached reply is the *representative's* outcome: for an isomorphic
//! (relabeled) hit the served angles are those predicted for the first-seen
//! labeling. That is exactly the structure→parameter contract of the paper
//! (γ, β are graph invariants), and `tests/cache_parity.rs` pins it.
//!
//! ## Bounds
//!
//! The cache is sharded (`shards` independent mutexes; the shard is picked
//! by hash) and bounded both by entry count and by estimated bytes. Bounds
//! are enforced per shard at `capacity / shards`, so the global bounds hold
//! by construction at all times. Eviction is least-recently-used per shard.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use qgraph::{canon, Graph};

use crate::faults;
use crate::serve::PredictionOutcome;

/// Sizing for a [`PredictionCache`]. Same builder + env-override treatment
/// as [`crate::serve_loop::LoopConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Independent mutex-protected shards; the shard is picked by canonical
    /// hash. Effective shard count is capped at `capacity_entries` so every
    /// shard can hold at least one entry.
    pub shards: usize,
    /// Global entry bound; per shard `capacity_entries / shards` (floor).
    pub capacity_entries: usize,
    /// Global bound on estimated resident bytes; per shard
    /// `max_bytes / shards` (floor). An entry larger than its shard's byte
    /// budget is simply not cached.
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 8,
            capacity_entries: 4096,
            max_bytes: 16 << 20, // 16 MiB
        }
    }
}

impl CacheConfig {
    /// A config with zero capacity: [`PredictionCache::new`] on it yields a
    /// no-op cache (every lookup a pass-through miss, inserts dropped).
    /// This is the [`crate::serve_loop::LoopConfig`] default — caching is
    /// opt-in per deployment.
    pub fn disabled() -> Self {
        CacheConfig {
            shards: 1,
            capacity_entries: 0,
            max_bytes: 0,
        }
    }

    /// `true` when this config admits at least one entry.
    pub fn is_enabled(&self) -> bool {
        self.capacity_entries > 0 && self.max_bytes > 0
    }

    /// [`Default::default`] with environment overrides:
    /// `QAOA_GNN_CACHE_SHARDS`, `QAOA_GNN_CACHE_ENTRIES`,
    /// `QAOA_GNN_CACHE_BYTES`. Setting `QAOA_GNN_CACHE_ENTRIES=0` (or
    /// `..._BYTES=0`) disables the cache explicitly.
    pub fn from_env() -> Self {
        let mut config = CacheConfig::default();
        let parse = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        if let Some(shards) = parse("QAOA_GNN_CACHE_SHARDS") {
            config.shards = shards;
        }
        if let Some(entries) = parse("QAOA_GNN_CACHE_ENTRIES") {
            config.capacity_entries = entries;
        }
        if let Some(bytes) = parse("QAOA_GNN_CACHE_BYTES") {
            config.max_bytes = bytes;
        }
        config
    }

    /// Builder-style: sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style: sets the global entry bound.
    pub fn with_capacity_entries(mut self, capacity_entries: usize) -> Self {
        self.capacity_entries = capacity_entries;
        self
    }

    /// Builder-style: sets the global byte bound.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = max_bytes;
        self
    }
}

/// Monotone counters accumulated over a [`PredictionCache`]'s lifetime,
/// plus two point-in-time residency gauges. The counters are merged into
/// [`crate::serve_loop::LoopMetrics`] by the serve loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no usable entry (includes contained faults).
    pub misses: u64,
    /// Entries stored.
    pub inserts: u64,
    /// Entries evicted by the LRU policy (count or byte pressure).
    pub evictions: u64,
    /// Entries dropped by generation invalidation (eager on hot-swap plus
    /// lazy purges during lookup/insert).
    pub invalidations: u64,
    /// Bucket hits where the WL hash matched but the exact isomorphism
    /// check rejected the stored graph — the collision fallback working.
    pub collisions: u64,
    /// Lookup/insert faults contained by the cache (each such lookup also
    /// counts as a miss).
    pub lookup_faults: u64,
    /// Point-in-time gauge: entries resident across all shards.
    pub entries: usize,
    /// Point-in-time gauge: estimated resident bytes across all shards.
    pub resident_bytes: usize,
}

impl CacheStats {
    /// Hit fraction over all completed lookups (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct Entry {
    hash: u64,
    generation: u64,
    graph: Graph,
    outcome: PredictionOutcome,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: Vec<Entry>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    /// Drops every entry not belonging to `generation`, returning how many
    /// were removed (the lazy half of the invalidation protocol).
    fn purge_stale(&mut self, generation: u64) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|e| e.generation == generation);
        self.bytes = self.entries.iter().map(|e| e.bytes).sum();
        (before - self.entries.len()) as u64
    }

    fn evict_lru(&mut self) -> bool {
        let Some(idx) = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(i, _)| i)
        else {
            return false;
        };
        let removed = self.entries.swap_remove(idx);
        self.bytes -= removed.bytes;
        true
    }
}

/// Conservative estimate of an entry's resident bytes: the struct itself,
/// the stored graph (edge list + adjacency), and the outcome's heap tails.
fn entry_bytes(graph: &Graph, outcome: &PredictionOutcome) -> usize {
    let graph_bytes = graph.m() * std::mem::size_of::<qgraph::Edge>()
        + 2 * graph.m() * std::mem::size_of::<(usize, f64)>()
        + graph.n() * std::mem::size_of::<Vec<(usize, f64)>>();
    let outcome_bytes = 2 * outcome.params.depth() * std::mem::size_of::<f64>()
        + outcome.skips.len() * 64;
    std::mem::size_of::<Entry>() + graph_bytes + outcome_bytes
}

/// Sharded, memory-bounded, generation-aware LRU over canonical graph
/// forms. See the module docs for the correctness contract.
pub struct PredictionCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_entries: usize,
    per_shard_bytes: usize,
    enabled: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    collisions: AtomicU64,
    lookup_faults: AtomicU64,
}

impl std::fmt::Debug for PredictionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictionCache")
            .field("shards", &self.shards.len())
            .field("per_shard_entries", &self.per_shard_entries)
            .field("per_shard_bytes", &self.per_shard_bytes)
            .field("enabled", &self.enabled)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PredictionCache {
    /// Builds a cache sized by `config`. A disabled config (zero entries or
    /// bytes) yields a no-op cache: lookups are pass-through misses that
    /// touch no counters, inserts are dropped.
    pub fn new(config: CacheConfig) -> Self {
        let enabled = config.is_enabled();
        let shards = if enabled {
            config.shards.clamp(1, config.capacity_entries)
        } else {
            1
        };
        PredictionCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_entries: if enabled {
                config.capacity_entries / shards
            } else {
                0
            },
            per_shard_bytes: if enabled { config.max_bytes / shards } else { 0 },
            enabled,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
            lookup_faults: AtomicU64::new(0),
        }
    }

    /// `true` when the cache can hold entries at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn shard_for(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// Locks a shard, tolerating poisoning: a contained panic that unwound
    /// through a lock holder must not wedge the serving path.
    fn lock_shard(&self, hash: u64) -> std::sync::MutexGuard<'_, Shard> {
        self.shard_for(hash)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Looks up a cached outcome for a graph structurally equal to `graph`
    /// under the given artifact generation.
    ///
    /// On a hit the returned outcome is a clone of the stored one with
    /// [`PredictionOutcome::cached`] set. Any panic on this path (including
    /// one injected via [`faults::CACHE_LOOKUP`]) is contained and reported
    /// as a miss.
    pub fn lookup(&self, graph: &Graph, generation: u64) -> Option<PredictionOutcome> {
        if !self.enabled {
            return None;
        }
        match catch_unwind(AssertUnwindSafe(|| self.lookup_inner(graph, generation))) {
            Ok(found) => found,
            Err(_) => {
                self.lookup_faults.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn lookup_inner(&self, graph: &Graph, generation: u64) -> Option<PredictionOutcome> {
        if let Some(action) = faults::fire_may_panic(faults::CACHE_LOOKUP) {
            // Non-panic injection: the lookup aborts before hashing.
            let _ = action;
            self.lookup_faults.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let hash = canon::wl_hash(graph);
        let mut shard = self.lock_shard(hash);
        let purged = shard.purge_stale(generation);
        if purged > 0 {
            self.invalidations.fetch_add(purged, Ordering::Relaxed);
        }
        let mut collided = false;
        let mut found = None;
        for idx in 0..shard.entries.len() {
            if shard.entries[idx].hash != hash {
                continue;
            }
            // Collision fallback: the hash bucket is only a candidate set.
            // Exact structural comparison decides, so a WL collision can
            // never serve the colliding entry's parameters.
            let entry = &shard.entries[idx];
            if entry.graph == *graph || canon::are_isomorphic(&entry.graph, graph) {
                found = Some(idx);
                break;
            }
            collided = true;
        }
        if collided {
            self.collisions.fetch_add(1, Ordering::Relaxed);
        }
        match found {
            Some(idx) => {
                shard.tick += 1;
                let tick = shard.tick;
                let entry = &mut shard.entries[idx];
                entry.last_used = tick;
                let mut outcome = entry.outcome.clone();
                outcome.cached = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(outcome)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores an outcome for `graph` under `generation`, evicting LRU
    /// entries as needed to respect the shard's entry and byte bounds.
    /// Oversized entries are dropped silently; a structurally equal entry
    /// already present is refreshed instead of duplicated. Panics are
    /// contained exactly as in [`PredictionCache::lookup`].
    pub fn insert(&self, graph: &Graph, generation: u64, outcome: &PredictionOutcome) {
        if !self.enabled {
            return;
        }
        let contained = catch_unwind(AssertUnwindSafe(|| {
            self.insert_inner(graph, generation, outcome)
        }));
        if contained.is_err() {
            self.lookup_faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn insert_inner(&self, graph: &Graph, generation: u64, outcome: &PredictionOutcome) {
        let hash = canon::wl_hash(graph);
        let bytes = entry_bytes(graph, outcome);
        if bytes > self.per_shard_bytes {
            return;
        }
        let mut shard = self.lock_shard(hash);
        let purged = shard.purge_stale(generation);
        if purged > 0 {
            self.invalidations.fetch_add(purged, Ordering::Relaxed);
        }
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(existing) = shard
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && (e.graph == *graph || canon::are_isomorphic(&e.graph, graph)))
        {
            existing.last_used = tick;
            return;
        }
        let mut stored = outcome.clone();
        stored.cached = false;
        shard.entries.push(Entry {
            hash,
            generation,
            graph: graph.clone(),
            outcome: stored,
            bytes,
            last_used: tick,
        });
        shard.bytes += bytes;
        self.inserts.fetch_add(1, Ordering::Relaxed);
        while shard.entries.len() > self.per_shard_entries || shard.bytes > self.per_shard_bytes {
            if !shard.evict_lru() {
                break;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every entry in every shard (the eager half of the hot-swap
    /// invalidation protocol), returning how many were removed.
    pub fn invalidate_all(&self) -> u64 {
        if !self.enabled {
            return 0;
        }
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            removed += shard.entries.len() as u64;
            shard.entries.clear();
            shard.bytes = 0;
        }
        self.invalidations.fetch_add(removed, Ordering::Relaxed);
        removed
    }

    /// Current entry count across all shards (a gauge, not a counter).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).entries.len())
            .sum()
    }

    /// `true` when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current estimated resident bytes across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).bytes)
            .sum()
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            lookup_faults: self.lookup_faults.load(Ordering::Relaxed),
            entries: self.len(),
            resident_bytes: self.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{EnvelopeStatus, Rung};
    use qaoa::Params;

    fn outcome_for(tag: f64) -> PredictionOutcome {
        PredictionOutcome {
            params: Params::new(vec![tag], vec![tag / 2.0]),
            rung: Rung::Gnn,
            skips: Vec::new(),
            envelope: EnvelopeStatus::InEnvelope,
            clamped: false,
            verified_score: Some(tag),
            cached: false,
        }
    }

    fn graph(tag: usize) -> Graph {
        // Distinct structures per tag: paths of different lengths.
        Graph::path(tag + 2).unwrap()
    }

    #[test]
    fn disabled_cache_is_a_pass_through() {
        let cache = PredictionCache::new(CacheConfig::disabled());
        assert!(!cache.is_enabled());
        cache.insert(&graph(0), 0, &outcome_for(1.0));
        assert_eq!(cache.lookup(&graph(0), 0), None);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn hit_returns_stored_outcome_with_cached_marker() {
        let cache = PredictionCache::new(CacheConfig::default());
        let g = graph(3);
        let fresh = outcome_for(0.25);
        assert_eq!(cache.lookup(&g, 0), None);
        cache.insert(&g, 0, &fresh);
        let hit = cache.lookup(&g, 0).expect("hit");
        assert!(hit.cached);
        let mut unmarked = hit.clone();
        unmarked.cached = false;
        assert_eq!(unmarked, fresh);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
    }

    #[test]
    fn isomorphic_lookup_hits_the_representative() {
        let cache = PredictionCache::new(CacheConfig::default());
        let g = Graph::cycle(7).unwrap();
        cache.insert(&g, 0, &outcome_for(1.5));
        let relabeled = g.relabel(&[3, 5, 0, 6, 1, 4, 2]);
        let hit = cache.lookup(&relabeled, 0).expect("isomorphic hit");
        assert_eq!(hit.params, outcome_for(1.5).params);
    }

    #[test]
    fn wl_collision_never_serves_the_colliding_entry() {
        let cache = PredictionCache::new(CacheConfig::default());
        let c6 = Graph::cycle(6).unwrap();
        let tri2 =
            Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
        assert_eq!(canon::wl_hash(&c6), canon::wl_hash(&tri2), "collision pair");
        cache.insert(&c6, 0, &outcome_for(1.0));
        // The colliding structure must miss, not inherit C6's parameters.
        assert_eq!(cache.lookup(&tri2, 0), None);
        assert_eq!(cache.stats().collisions, 1);
        // Once both are present, each serves its own outcome.
        cache.insert(&tri2, 0, &outcome_for(2.0));
        assert_eq!(cache.lookup(&c6, 0).unwrap().params, outcome_for(1.0).params);
        assert_eq!(
            cache.lookup(&tri2, 0).unwrap().params,
            outcome_for(2.0).params
        );
    }

    #[test]
    fn capacity_and_bytes_are_never_exceeded() {
        let config = CacheConfig::default()
            .with_shards(2)
            .with_capacity_entries(6)
            .with_max_bytes(1 << 20);
        let cache = PredictionCache::new(config.clone());
        for i in 0..40 {
            cache.insert(&graph(i), 0, &outcome_for(i as f64));
            assert!(cache.len() <= config.capacity_entries);
            assert!(cache.resident_bytes() <= config.max_bytes);
        }
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn byte_bound_evicts_before_count_bound() {
        // Shard byte budget fits roughly two path-graph entries.
        let probe = entry_bytes(&graph(0), &outcome_for(0.0));
        let config = CacheConfig::default()
            .with_shards(1)
            .with_capacity_entries(100)
            .with_max_bytes(probe * 5 / 2);
        let cache = PredictionCache::new(config.clone());
        for i in 0..10 {
            cache.insert(&graph(i), 0, &outcome_for(i as f64));
            assert!(cache.resident_bytes() <= config.max_bytes);
        }
        assert!(cache.len() < 10);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn eviction_order_is_least_recently_used() {
        let config = CacheConfig::default()
            .with_shards(1)
            .with_capacity_entries(3)
            .with_max_bytes(1 << 20);
        let cache = PredictionCache::new(config);
        let (a, b, c, d) = (graph(0), graph(1), graph(2), graph(3));
        cache.insert(&a, 0, &outcome_for(0.0));
        cache.insert(&b, 0, &outcome_for(1.0));
        cache.insert(&c, 0, &outcome_for(2.0));
        // Touch `a` so `b` becomes the LRU entry, then overflow.
        assert!(cache.lookup(&a, 0).is_some());
        cache.insert(&d, 0, &outcome_for(3.0));
        assert!(cache.lookup(&b, 0).is_none(), "b was LRU and evicted");
        assert!(cache.lookup(&a, 0).is_some());
        assert!(cache.lookup(&c, 0).is_some());
        assert!(cache.lookup(&d, 0).is_some());
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let config = CacheConfig::default()
            .with_shards(1)
            .with_capacity_entries(8)
            .with_max_bytes(8); // smaller than any entry
        let cache = PredictionCache::new(CacheConfig {
            max_bytes: 8,
            ..config
        });
        cache.insert(&graph(0), 0, &outcome_for(0.0));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().inserts, 0);
    }

    #[test]
    fn reinserting_a_structural_duplicate_refreshes_instead_of_duplicating() {
        let cache = PredictionCache::new(CacheConfig::default());
        let g = Graph::cycle(5).unwrap();
        cache.insert(&g, 0, &outcome_for(1.0));
        cache.insert(&g.relabel(&[4, 3, 2, 1, 0]), 0, &outcome_for(9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().inserts, 1);
        // The original outcome is retained (first write wins).
        assert_eq!(cache.lookup(&g, 0).unwrap().params, outcome_for(1.0).params);
    }

    #[test]
    fn generation_mismatch_is_a_miss_and_purges_lazily() {
        let cache = PredictionCache::new(CacheConfig::default());
        let g = graph(2);
        cache.insert(&g, 1, &outcome_for(1.0));
        assert_eq!(cache.lookup(&g, 2), None, "newer generation never hits");
        assert_eq!(cache.len(), 0, "stale entry purged during lookup");
        assert!(cache.stats().invalidations >= 1);
        // An insert racing a swap leaves only a dead entry.
        cache.insert(&g, 1, &outcome_for(1.0));
        cache.insert(&graph(3), 2, &outcome_for(2.0));
        assert_eq!(cache.lookup(&g, 2), None);
    }

    #[test]
    fn invalidate_all_empties_every_shard() {
        let cache = PredictionCache::new(CacheConfig::default().with_shards(4));
        for i in 0..12 {
            cache.insert(&graph(i), 0, &outcome_for(i as f64));
        }
        assert_eq!(cache.len(), 12);
        assert_eq!(cache.invalidate_all(), 12);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.stats().invalidations, 12);
    }

    #[test]
    fn lookup_fault_degrades_to_a_miss() {
        let cache = PredictionCache::new(CacheConfig::default());
        let g = graph(1);
        cache.insert(&g, 0, &outcome_for(1.0));
        {
            let _guard = faults::armed(faults::CACHE_LOOKUP, faults::FaultAction::Panic, 1);
            assert_eq!(cache.lookup(&g, 0), None, "injected panic is a miss");
        }
        {
            let _guard = faults::armed(faults::CACHE_LOOKUP, faults::FaultAction::Error, 1);
            assert_eq!(cache.lookup(&g, 0), None, "injected error is a miss");
        }
        let stats = cache.stats();
        assert_eq!(stats.lookup_faults, 2);
        assert_eq!(stats.misses, 2);
        // The cache stays healthy afterwards.
        assert!(cache.lookup(&g, 0).is_some());
    }

    #[test]
    fn stats_hit_rate() {
        let mut stats = CacheStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        stats.hits = 3;
        stats.misses = 1;
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn config_env_overrides() {
        // Env-var tests mutate process state; the fault test-lock already
        // serializes fault tests, so just use unique keys deterministically.
        std::env::set_var("QAOA_GNN_CACHE_SHARDS", "3");
        std::env::set_var("QAOA_GNN_CACHE_ENTRIES", "77");
        std::env::set_var("QAOA_GNN_CACHE_BYTES", "1234567");
        let config = CacheConfig::from_env();
        std::env::remove_var("QAOA_GNN_CACHE_SHARDS");
        std::env::remove_var("QAOA_GNN_CACHE_ENTRIES");
        std::env::remove_var("QAOA_GNN_CACHE_BYTES");
        assert_eq!(config.shards, 3);
        assert_eq!(config.capacity_entries, 77);
        assert_eq!(config.max_bytes, 1_234_567);
        assert!(config.is_enabled());
        assert!(!CacheConfig::disabled().is_enabled());
    }

    #[test]
    fn shard_count_is_clamped_to_capacity() {
        let cache = PredictionCache::new(
            CacheConfig::default()
                .with_shards(64)
                .with_capacity_entries(2),
        );
        // With 2 effective shards of 1 entry each, the global bound holds.
        for i in 0..10 {
            cache.insert(&graph(i), 0, &outcome_for(i as f64));
            assert!(cache.len() <= 2);
        }
    }
}
