//! Max-Cut solvers and cut evaluation.
//!
//! Approximation ratios in the paper are computed against "optimal solutions
//! derived from a brute-force search approach" (§3.1); [`brute_force`] is
//! that reference. [`greedy`] and [`local_search`] are cheap classical
//! baselines used in examples and sanity tests, and [`random_cut`] is the
//! expectation anchor (a uniformly random cut achieves half the total weight
//! in expectation).

use qrand::Rng;

use crate::Graph;

/// A bipartition of a graph's nodes together with its cut value.
///
/// `side[v]` is `false` for one part and `true` for the other. Cut value is
/// the total weight of edges whose endpoints lie on different sides.
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    /// Partition assignment per node.
    pub side: Vec<bool>,
    /// Total weight of cut edges.
    pub value: f64,
}

impl Cut {
    /// Evaluates the cut induced by `side` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != graph.n()`.
    pub fn from_assignment(graph: &Graph, side: Vec<bool>) -> Self {
        assert_eq!(side.len(), graph.n(), "assignment length must equal n");
        let value = cut_value(graph, &side);
        Cut { side, value }
    }

    /// The cut with every side flipped; same value by symmetry.
    pub fn complement(&self, graph: &Graph) -> Cut {
        Cut::from_assignment(graph, self.side.iter().map(|b| !b).collect())
    }
}

/// Total weight of edges cut by the assignment `side`.
///
/// # Panics
///
/// Panics if `side.len() != graph.n()`.
pub fn cut_value(graph: &Graph, side: &[bool]) -> f64 {
    assert_eq!(side.len(), graph.n(), "assignment length must equal n");
    graph
        .edges()
        .iter()
        .filter(|e| side[e.u] != side[e.v])
        .map(|e| e.weight)
        .sum()
}

/// Cut value for a bitmask assignment (bit `v` = side of node `v`).
pub fn cut_value_mask(graph: &Graph, mask: u64) -> f64 {
    graph
        .edges()
        .iter()
        .filter(|e| (mask >> e.u) & 1 != (mask >> e.v) & 1)
        .map(|e| e.weight)
        .sum()
}

/// Exhaustive optimal Max-Cut by enumerating all `2^(n-1)` bipartitions.
///
/// Node 0 is pinned to side `false`, halving the search space (a cut and its
/// complement are the same bipartition).
///
/// # Panics
///
/// Panics if `graph.n() > 30` — the paper's instances have at most 15 nodes
/// and exhaustive search beyond 30 is infeasible anyway.
pub fn brute_force(graph: &Graph) -> Cut {
    let n = graph.n();
    assert!(n <= 30, "brute force limited to 30 nodes, got {n}");
    let mut best_mask = 0u64;
    let mut best_value = f64::NEG_INFINITY;
    // Fix node 0 on side false: iterate masks over nodes 1..n.
    let limit: u64 = 1 << (n - 1);
    for upper in 0..limit {
        let mask = upper << 1;
        let value = cut_value_mask(graph, mask);
        if value > best_value {
            best_value = value;
            best_mask = mask;
        }
    }
    let side: Vec<bool> = (0..n).map(|v| (best_mask >> v) & 1 == 1).collect();
    Cut {
        side,
        value: best_value,
    }
}

/// Greedy constructive heuristic: place each node (in id order) on the side
/// that currently cuts more incident weight.
pub fn greedy(graph: &Graph) -> Cut {
    let n = graph.n();
    let mut side = vec![false; n];
    let mut placed = vec![false; n];
    for v in 0..n {
        let mut gain_true = 0.0;
        let mut gain_false = 0.0;
        for &(u, w) in graph.neighbors(v) {
            if placed[u] {
                if side[u] {
                    gain_false += w;
                } else {
                    gain_true += w;
                }
            }
        }
        side[v] = gain_true > gain_false;
        placed[v] = true;
    }
    Cut::from_assignment(graph, side)
}

/// 1-flip local search (hill climbing) from a starting assignment: repeatedly
/// flips the node with the largest positive gain until no flip improves.
///
/// # Panics
///
/// Panics if `start.len() != graph.n()`.
pub fn local_search(graph: &Graph, start: Vec<bool>) -> Cut {
    assert_eq!(start.len(), graph.n(), "assignment length must equal n");
    let mut side = start;
    loop {
        let mut best_gain = 0.0;
        let mut best_node = None;
        for v in 0..graph.n() {
            // Gain from flipping v: uncut incident weight minus cut incident weight.
            let mut gain = 0.0;
            for &(u, w) in graph.neighbors(v) {
                if side[u] == side[v] {
                    gain += w;
                } else {
                    gain -= w;
                }
            }
            if gain > best_gain + 1e-12 {
                best_gain = gain;
                best_node = Some(v);
            }
        }
        match best_node {
            Some(v) => side[v] = !side[v],
            None => break,
        }
    }
    Cut::from_assignment(graph, side)
}

/// A uniformly random cut.
pub fn random_cut<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Cut {
    let side: Vec<bool> = (0..graph.n()).map(|_| rng.gen()).collect();
    Cut::from_assignment(graph, side)
}

/// Approximation ratio of `achieved` against `optimal` cut value.
///
/// Returns `1.0` when the optimum is zero (edgeless graph — nothing to cut,
/// every "solution" is optimal), matching the convention used when labeling
/// the dataset.
pub fn approximation_ratio(achieved: f64, optimal: f64) -> f64 {
    if optimal == 0.0 {
        1.0
    } else {
        achieved / optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn brute_force_on_known_graphs() {
        // Even cycle: all edges cuttable.
        assert_eq!(brute_force(&Graph::cycle(6).unwrap()).value, 6.0);
        // Odd cycle: one edge must survive.
        assert_eq!(brute_force(&Graph::cycle(5).unwrap()).value, 4.0);
        // K4: best cut is 2+2 split cutting 4 edges.
        assert_eq!(brute_force(&Graph::complete(4).unwrap()).value, 4.0);
        // Star: center vs leaves cuts everything.
        assert_eq!(brute_force(&Graph::star(7).unwrap()).value, 6.0);
        // Complete bipartite: natural bipartition cuts all edges.
        assert_eq!(
            brute_force(&Graph::complete_bipartite(3, 4).unwrap()).value,
            12.0
        );
        // Single node, no edges.
        assert_eq!(brute_force(&Graph::empty(1).unwrap()).value, 0.0);
    }

    #[test]
    fn brute_force_weighted() {
        // Triangle with one heavy edge: cut isolates the heavy edge plus one.
        let g = Graph::from_weighted_edges(3, &[(0, 1, 5.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        // Best: separate {1} (or {0}) => cuts 5 + 1 = 6.
        assert_eq!(brute_force(&g).value, 6.0);
    }

    #[test]
    fn cut_value_consistency() {
        let g = Graph::cycle(4).unwrap();
        let side = vec![false, true, false, true];
        assert_eq!(cut_value(&g, &side), 4.0);
        let mask = 0b1010u64;
        assert_eq!(cut_value_mask(&g, mask), 4.0);
    }

    #[test]
    fn complement_has_same_value() {
        let g = Graph::complete(5).unwrap();
        let c = brute_force(&g);
        let cc = c.complement(&g);
        assert_eq!(c.value, cc.value);
        assert_ne!(c.side, cc.side);
    }

    #[test]
    fn greedy_never_exceeds_optimum() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let g = crate::generate::erdos_renyi(9, 0.4, &mut rng).unwrap();
            let opt = brute_force(&g).value;
            let gr = greedy(&g).value;
            assert!(gr <= opt + 1e-9);
        }
    }

    #[test]
    fn local_search_improves_or_matches_start() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let g = crate::generate::erdos_renyi(10, 0.5, &mut rng).unwrap();
            let start = random_cut(&g, &mut rng);
            let improved = local_search(&g, start.side.clone());
            assert!(improved.value >= start.value - 1e-9);
            assert!(improved.value <= brute_force(&g).value + 1e-9);
        }
    }

    #[test]
    fn local_search_is_locally_optimal() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = crate::generate::erdos_renyi(8, 0.5, &mut rng).unwrap();
        let c = local_search(&g, vec![false; 8]);
        // No single flip improves.
        for v in 0..8 {
            let mut flipped = c.side.clone();
            flipped[v] = !flipped[v];
            assert!(cut_value(&g, &flipped) <= c.value + 1e-9);
        }
    }

    #[test]
    fn random_cut_has_valid_value() {
        let mut rng = StdRng::seed_from_u64(14);
        let g = Graph::complete(6).unwrap();
        let c = random_cut(&g, &mut rng);
        assert!(c.value >= 0.0 && c.value <= g.total_weight());
    }

    #[test]
    fn approximation_ratio_conventions() {
        assert_eq!(approximation_ratio(3.0, 4.0), 0.75);
        assert_eq!(approximation_ratio(0.0, 0.0), 1.0);
        assert_eq!(approximation_ratio(4.0, 4.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "assignment length")]
    fn cut_value_rejects_wrong_length() {
        let g = Graph::cycle(4).unwrap();
        let _ = cut_value(&g, &[true, false]);
    }
}
