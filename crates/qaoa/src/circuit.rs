use qrand::Rng;

use qsim::StateVector;

use crate::{Evaluator, MaxCutHamiltonian, Params};

/// A p-layer QAOA circuit for one Max-Cut instance.
///
/// The circuit is `U(γ, β) = Π_k e^{-iβ_k B} e^{-iγ_k C}` applied to
/// `|+⟩^⊗n`, with `B = Σ_j X_j` the transverse-field mixer and `C` the
/// diagonal cut-value operator. Phase separation uses the precomputed
/// diagonal table (fast path); the mixer is a layer of `RX(2β)` rotations.
///
/// # Example
///
/// ```
/// use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
/// use qgraph::Graph;
///
/// # fn main() -> Result<(), qgraph::GraphError> {
/// let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&Graph::cycle(4)?));
/// // Zero angles leave the uniform superposition: ⟨C⟩ = |E|/2 = 2.
/// let e = circuit.expectation(&Params::zeros(1));
/// assert!((e - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QaoaCircuit {
    hamiltonian: MaxCutHamiltonian,
}

impl QaoaCircuit {
    /// Wraps a Hamiltonian into a runnable circuit.
    pub fn new(hamiltonian: MaxCutHamiltonian) -> Self {
        QaoaCircuit { hamiltonian }
    }

    /// The problem Hamiltonian.
    pub fn hamiltonian(&self) -> &MaxCutHamiltonian {
        &self.hamiltonian
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.hamiltonian.num_qubits()
    }

    /// Runs the circuit and returns the final state.
    ///
    /// **Convenience only** — allocates a fresh state vector (and a whole
    /// [`Evaluator`]) per call. Anything that evaluates more than once per
    /// instance — optimizers, labeling, landscape scans — should hold an
    /// [`Evaluator`] and use [`Evaluator::run_into`] instead; this wrapper
    /// exists for doctests, examples, and one-shot probes. Results are
    /// bit-identical to the evaluator path (it *is* the evaluator path).
    pub fn run(&self, params: &Params) -> StateVector {
        let mut evaluator = Evaluator::new(self);
        evaluator.run_into(params);
        evaluator.into_state()
    }

    /// The QAOA objective `⟨γ,β|C|γ,β⟩`.
    ///
    /// **Convenience only** — see [`Self::run`]; hot paths should use
    /// [`Evaluator::expectation_in_place`] or
    /// [`Evaluator::expectation_flat`].
    pub fn expectation(&self, params: &Params) -> f64 {
        Evaluator::new(self).expectation_in_place(params)
    }

    /// Expectation-based approximation ratio at the given parameters.
    ///
    /// **Convenience only** — see [`Self::run`]; hot paths should use
    /// [`Evaluator::approximation_ratio_in_place`].
    pub fn approximation_ratio(&self, params: &Params) -> f64 {
        Evaluator::new(self).approximation_ratio_in_place(params)
    }

    /// Canonicalizes optimizer output into a deterministic regression label.
    ///
    /// [`Params::canonical`] folds only graph-independent symmetries, which
    /// leaves a residual two-fold degeneracy on this instance's landscape:
    /// regular graphs of even degree satisfy `E(γ, β) = E(π−γ, π/2−β)` and
    /// odd degree `E(γ, β) = E(π−γ, β)` (visible in the closed form of
    /// [`crate::analytic::edge_expectation`], where `cos γ` enters with
    /// degree-parity exponents). An optimizer lands in either copy at
    /// random, so labels for identical-quality optima split into two
    /// clusters and mean-squared-error regression collapses onto their
    /// (poor) midpoint. This method checks both mirror images against the
    /// actual circuit expectation and returns the representative with the
    /// smallest leading `γ` among those that lose nothing, so every label
    /// lands in one cluster.
    ///
    /// **Convenience only** — evaluates the circuit three times; labeling
    /// loops should call [`Evaluator::canonical_label`] on an evaluator
    /// they already hold.
    pub fn canonical_label(&self, params: &Params) -> Params {
        Evaluator::new(self).canonical_label(params)
    }

    /// Samples `shots` measurement outcomes from the final state and returns
    /// the best cut value observed. This mirrors what running on hardware
    /// would report.
    pub fn best_sampled_cut<R: Rng + ?Sized>(
        &self,
        params: &Params,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        let mut evaluator = Evaluator::new(self);
        let psi = evaluator.run_into(params);
        let values = self.hamiltonian.operator().values();
        (0..shots)
            .map(|_| values[psi.sample(rng) as usize])
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn circuit(g: &Graph) -> QaoaCircuit {
        QaoaCircuit::new(MaxCutHamiltonian::new(g))
    }

    #[test]
    fn zero_params_give_uniform_expectation() {
        // ⟨+|C|+⟩ = W/2 for any graph.
        for g in [
            Graph::cycle(5).unwrap(),
            Graph::complete(4).unwrap(),
            Graph::star(6).unwrap(),
        ] {
            let c = circuit(&g);
            let e = c.expectation(&Params::zeros(1));
            assert!(
                (e - g.total_weight() / 2.0).abs() < 1e-10,
                "graph with W={}",
                g.total_weight()
            );
        }
    }

    #[test]
    fn expectation_bounded_by_optimum() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = qgraph::generate::erdos_renyi(7, 0.5, &mut rng).unwrap();
        let c = circuit(&g);
        for _ in 0..20 {
            let params = Params::random(2, &mut rng);
            let e = c.expectation(&params);
            assert!(e <= c.hamiltonian().optimal_value() + 1e-9);
            assert!(e >= 0.0 - 1e-9);
        }
    }

    #[test]
    fn run_preserves_norm() {
        let g = Graph::complete(5).unwrap();
        let c = circuit(&g);
        let mut rng = StdRng::seed_from_u64(22);
        let psi = c.run(&Params::random(3, &mut rng));
        assert!((psi.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn known_optimum_ring_p1() {
        // For even rings the p=1 optimum is 3/4 of the edges at
        // γ* = π/4 (unit weights ⇒ phase period matches), β* = π/8.
        let g = Graph::cycle(8).unwrap();
        let c = circuit(&g);
        let star = Params::new(vec![std::f64::consts::FRAC_PI_4], vec![std::f64::consts::PI / 8.0]);
        let ar = c.approximation_ratio(&star);
        assert!((ar - 0.75).abs() < 1e-10, "ar = {ar}");
    }

    #[test]
    fn deeper_circuits_can_only_help_at_optimum() {
        // Not a theorem for arbitrary fixed angles, but p=2 with second layer
        // zeroed must equal p=1.
        let g = Graph::cycle(6).unwrap();
        let c = circuit(&g);
        let p1 = Params::new(vec![0.7], vec![0.3]);
        let p2 = Params::new(vec![0.7, 0.0], vec![0.3, 0.0]);
        assert!((c.expectation(&p1) - c.expectation(&p2)).abs() < 1e-10);
    }

    #[test]
    fn best_sampled_cut_bounded() {
        let g = Graph::complete(4).unwrap();
        let c = circuit(&g);
        let mut rng = StdRng::seed_from_u64(23);
        let params = Params::random(1, &mut rng);
        let best = c.best_sampled_cut(&params, 64, &mut rng);
        assert!(best <= c.hamiltonian().optimal_value() + 1e-12);
        assert!(best >= 0.0);
    }

    #[test]
    fn canonical_label_folds_mirror_optima_together() {
        // On a regular graph the landscape has a two-fold mirror degeneracy
        // that Params::canonical alone cannot remove; both mirror images of
        // an optimum must canonicalize to the same label.
        let mut rng = StdRng::seed_from_u64(29);
        for &(n, d) in &[(8usize, 3usize), (8, 4)] {
            let g = qgraph::generate::random_regular(n, d, &mut rng).unwrap();
            let c = circuit(&g);
            let p = Params::new(vec![0.5], vec![0.35]);
            // The degree-parity mirror of p (even d flips beta too).
            let flip_beta = d % 2 == 0;
            let mirrored = Params::new(
                vec![std::f64::consts::PI - 0.5],
                vec![if flip_beta {
                    std::f64::consts::FRAC_PI_2 - 0.35
                } else {
                    0.35
                }],
            );
            // The mirror really is a symmetry of this instance.
            assert!(
                (c.expectation(&p) - c.expectation(&mirrored)).abs() < 1e-10,
                "n={n} d={d}: mirror is not a symmetry"
            );
            let a = c.canonical_label(&p);
            let b = c.canonical_label(&mirrored);
            assert!(a.distance(&b) < 1e-9, "n={n} d={d}: labels disagree");
            assert!(a.gammas()[0] <= std::f64::consts::FRAC_PI_2 + 1e-12);
        }
    }

    #[test]
    fn canonical_label_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(30);
        let g = qgraph::generate::erdos_renyi(7, 0.5, &mut rng).unwrap();
        let c = circuit(&g);
        for _ in 0..10 {
            let p = Params::random(1, &mut rng);
            let l = c.canonical_label(&p);
            assert!((c.expectation(&p) - c.expectation(&l)).abs() < 1e-9);
        }
    }

    #[test]
    fn single_edge_graph_full_expectation_sweep() {
        // For a single edge, ⟨C⟩(γ, β) = (1 + sin(4β) sin(γ)) / 2 exactly
        // (weight 1, mixer e^{-iβΣX}): verify on a grid.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let c = circuit(&g);
        for i in 0..8 {
            for j in 0..8 {
                let gamma = i as f64 * 0.7;
                let beta = j as f64 * 0.35;
                let got = c.expectation(&Params::new(vec![gamma], vec![beta]));
                let want = 0.5 * (1.0 + (4.0 * beta).sin() * gamma.sin());
                assert!(
                    (got - want).abs() < 1e-10,
                    "gamma={gamma} beta={beta}: got {got}, want {want}"
                );
            }
        }
    }
}
