//! Determinism regression tests: every seeded entry point must reproduce
//! bit-identical results run to run. The paper's comparisons (and the
//! replay-by-seed story of the test harness) are meaningless without this.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::TrainConfig;
use gnn::{GnnKind, GnnModel, ModelConfig};
use qaoa_gnn::pipeline;
use qgraph::generate::DatasetSpec;

/// The same seed must yield the exact same generated graph set — same
/// shapes, same edges, same order.
#[test]
fn graph_generation_is_bit_identical_across_runs() {
    let spec = DatasetSpec {
        count: 40,
        ..DatasetSpec::default()
    };
    let generate = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        spec.generate(&mut rng).expect("valid spec")
    };
    let a = generate(12345);
    let b = generate(12345);
    assert_eq!(a.len(), b.len());
    for (i, (ga, gb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ga, gb, "graph {i} differs between identically-seeded runs");
    }
    // And a different seed must actually change the output.
    let c = generate(54321);
    assert!(
        a.iter().zip(&c).any(|(x, y)| x != y),
        "different seeds produced identical graph sets"
    );
}

/// The same seed must yield bit-identical GNN initialization for every
/// architecture: all parameter tensors equal to the last bit.
#[test]
fn gnn_initialization_is_bit_identical_across_runs() {
    for kind in GnnKind::ALL {
        let build = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            GnnModel::new(kind, ModelConfig::default(), &mut rng)
        };
        let a = build(606);
        let b = build(606);
        let (pa, pb) = (a.parameters(), b.parameters());
        assert_eq!(pa.len(), pb.len(), "{kind}: parameter count differs");
        for (i, (ta, tb)) in pa.iter().zip(pb).enumerate() {
            let (va, vb) = (ta.value(), tb.value());
            assert_eq!(
                va.data(),
                vb.data(),
                "{kind}: parameter tensor {i} differs bit-for-bit"
            );
        }
    }
}

/// The same seed must yield the identical first-epoch loss (exact float
/// equality): training touches the RNG for shuffling and dropout, and both
/// streams must replay.
#[test]
fn first_epoch_loss_is_bit_identical_across_runs() {
    let mut graph_rng = StdRng::seed_from_u64(31);
    let spec = DatasetSpec {
        count: 10,
        ..DatasetSpec::default()
    };
    let graphs = spec.generate(&mut graph_rng).expect("valid spec");
    let labeling = qaoa_gnn::dataset::LabelConfig::quick(40);
    let dataset = qaoa_gnn::Dataset::label_graphs(&graphs, &labeling, 7);
    let model_config = ModelConfig::default();
    let examples = pipeline::to_examples(&dataset, &model_config);

    let run = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = GnnModel::new(GnnKind::Gin, model_config.clone(), &mut rng);
        let history = gnn::train::train(&model, &examples, &TrainConfig::quick(1), &mut rng);
        history.epochs[0].train_loss
    };
    let a = run(808);
    let b = run(808);
    assert_eq!(
        a.to_bits(),
        b.to_bits(),
        "identically-seeded first-epoch losses differ: {a} vs {b}"
    );
    let c = run(809);
    assert_ne!(
        a.to_bits(),
        c.to_bits(),
        "different training seeds gave bitwise-equal losses"
    );
}

/// Parallel labeling must be deterministic regardless of thread count:
/// worker partitioning cannot change results.
#[test]
fn labeling_is_deterministic_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(17);
    let spec = DatasetSpec {
        count: 8,
        ..DatasetSpec::default()
    };
    let graphs = spec.generate(&mut rng).expect("valid spec");
    let label = |threads: usize| {
        let config = qaoa_gnn::dataset::LabelConfig {
            threads,
            ..qaoa_gnn::dataset::LabelConfig::quick(30)
        };
        qaoa_gnn::Dataset::label_graphs(&graphs, &config, 5)
    };
    let one = label(1);
    let four = label(4);
    assert_eq!(one.entries.len(), four.entries.len());
    for (a, b) in one.entries.iter().zip(&four.entries) {
        assert_eq!(a.params, b.params, "thread count changed a label");
        assert_eq!(a.expectation.to_bits(), b.expectation.to_bits());
    }
}
