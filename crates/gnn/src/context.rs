use std::rc::Rc;

use qgraph::features::{adjacency_matrix, node_features, normalized_adjacency, FeatureConfig};
use qgraph::Graph;
use tensor::Matrix;

/// Precomputed per-graph operands shared by every architecture.
///
/// Each GNN layer consumes a different view of the same graph:
///
/// * GCN multiplies by the symmetrically normalized adjacency with
///   self-loops, `D̃^{-1/2}(A+I)D̃^{-1/2}` (Eq. 2).
/// * GAT softmaxes attention scores over the neighbor mask (Eq. 7).
/// * GIN aggregates with `A + (1+ε)I` (Eq. 8).
/// * GraphSAGE max-pools over explicit neighbor lists (Eq. 3).
///
/// Building them once per graph keeps the training loop allocation-light.
#[derive(Debug, Clone)]
pub struct GraphContext {
    /// `n × feature_dim` node-feature matrix (degree + one-hot id, §3.1).
    pub features: Matrix,
    /// GCN propagation matrix `D̃^{-1/2}(A+I)D̃^{-1/2}`.
    pub norm_adj: Matrix,
    /// GAT attention mask: 1 where `(v, u)` is an edge, 0 elsewhere.
    pub adj_mask: Matrix,
    /// GIN aggregation matrix `A + (1+ε)I`.
    pub gin_matrix: Matrix,
    /// Neighbor lists for GraphSAGE max pooling.
    pub neighbors: Rc<Vec<Vec<usize>>>,
    /// Number of nodes.
    pub num_nodes: usize,
}

impl GraphContext {
    /// Builds the context for one graph.
    ///
    /// `gin_eps` is the ε of Eq. 8 (0 in the paper's configuration).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more nodes than a non-zero
    /// `features.one_hot_dim` supports (the one-hot block would alias).
    /// `one_hot_dim == 0` disables the block (degree-only features).
    pub fn new(graph: &Graph, features: &FeatureConfig, gin_eps: f64) -> Self {
        assert!(
            features.one_hot_dim == 0 || graph.n() <= features.one_hot_dim,
            "graph with {} nodes exceeds one-hot width {}",
            graph.n(),
            features.one_hot_dim
        );
        let n = graph.n();
        let x = Matrix::from_nested(&node_features(graph, features));
        let norm_adj = Matrix::from_nested(&normalized_adjacency(graph));
        let raw_adj = Matrix::from_nested(&adjacency_matrix(graph));
        // GAT attends over unweighted structure: mask is 0/1 even for
        // weighted graphs.
        let adj_mask = raw_adj.map(|v| if v != 0.0 { 1.0 } else { 0.0 });
        let mut gin_matrix = raw_adj;
        for v in 0..n {
            gin_matrix[(v, v)] += 1.0 + gin_eps;
        }
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|v| graph.neighbors(v).iter().map(|&(u, _)| u).collect())
            .collect();
        GraphContext {
            features: x,
            norm_adj,
            adj_mask,
            gin_matrix,
            neighbors: Rc::new(neighbors),
            num_nodes: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(g: &Graph) -> GraphContext {
        GraphContext::new(g, &FeatureConfig::default(), 0.0)
    }

    #[test]
    fn shapes_are_consistent() {
        let g = Graph::cycle(5).unwrap();
        let c = ctx(&g);
        assert_eq!(c.num_nodes, 5);
        assert_eq!(c.features.shape(), (5, 16));
        assert_eq!(c.norm_adj.shape(), (5, 5));
        assert_eq!(c.adj_mask.shape(), (5, 5));
        assert_eq!(c.gin_matrix.shape(), (5, 5));
        assert_eq!(c.neighbors.len(), 5);
    }

    #[test]
    fn adj_mask_matches_edges() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let c = ctx(&g);
        assert_eq!(c.adj_mask[(0, 1)], 1.0);
        assert_eq!(c.adj_mask[(1, 0)], 1.0);
        assert_eq!(c.adj_mask[(0, 2)], 0.0);
        assert_eq!(c.adj_mask[(0, 0)], 0.0, "no self-attention in Eq. 7");
    }

    #[test]
    fn gin_matrix_has_self_weight() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let c = GraphContext::new(&g, &FeatureConfig::default(), 0.5);
        assert_eq!(c.gin_matrix[(0, 0)], 1.5);
        assert_eq!(c.gin_matrix[(0, 1)], 1.0);
    }

    #[test]
    fn weighted_graph_mask_is_binary() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 3.5)]).unwrap();
        let c = ctx(&g);
        assert_eq!(c.adj_mask[(0, 1)], 1.0);
    }

    #[test]
    fn neighbor_lists_match_graph() {
        let g = Graph::star(4).unwrap();
        let c = ctx(&g);
        assert_eq!(c.neighbors[0], vec![1, 2, 3]);
        assert_eq!(c.neighbors[1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "one-hot width")]
    fn oversize_graph_rejected() {
        let g = Graph::cycle(20).unwrap();
        let _ = ctx(&g);
    }
}
