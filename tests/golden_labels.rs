//! Golden regression suite for label canonicalization and the labeling
//! optimizer.
//!
//! PR 1 fixed the bimodal regression-target problem by folding
//! symmetry-equivalent QAOA angles onto one canonical branch
//! (`QaoaCircuit::canonical_label`). These tests pin exact outputs for a
//! fixed seed batch so any future change to the canonicalization *or* to
//! the labeling optimizer trips a bit-exact comparison instead of silently
//! shifting every training target. If a change here is intentional
//! (e.g. a better optimizer), regenerate the constants and say so in the
//! commit.
//!
//! All comparisons are exact (`==` on f64): the pinned literals are
//! shortest-round-trip representations, so they parse back to the precise
//! bits the code produced.

use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
use qaoa_gnn::dataset::LabelConfig;
use qaoa_gnn::Dataset;
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

/// The fixed probe angles fed to `canonical_label`. Chosen to cover: a
/// point in the foldable region, a point whose γ wraps past 2π, and a
/// point already on the canonical branch.
fn probes() -> [Params; 3] {
    [
        Params::new(vec![2.5], vec![1.2]),
        Params::new(vec![5.9], vec![0.3]),
        Params::new(vec![1.0], vec![1.5]),
    ]
}

/// The fixed seed-2024 batch the labeling goldens run on.
fn seed_batch() -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(2024);
    (0..6)
        .map(|i| qgraph::generate::erdos_renyi(5 + i % 4, 0.5, &mut rng).unwrap())
        .collect()
}

#[test]
fn canonical_label_goldens_on_regular_graphs() {
    // On symmetric instances the γ → π−γ mirror is a true symmetry and
    // must fold: this is the bimodal-label fix in action.
    let expected: [[(f64, f64); 3]; 3] = [
        // cycle(6)
        [
            (0.6415926535897931, 0.3707963267948966),
            (0.3831853071795859, 1.2707963267948965),
            (1.0, 1.5),
        ],
        // complete(5)
        [
            (0.6415926535897931, 0.3707963267948966),
            (0.3831853071795859, 1.2707963267948965),
            (1.0, 1.5),
        ],
        // star(6): γ folds, β stays (β-mirror is not a symmetry here)
        [
            (0.6415926535897931, 1.2),
            (0.3831853071795859, 1.2707963267948965),
            (1.0, 1.5),
        ],
    ];
    let graphs = [
        Graph::cycle(6).unwrap(),
        Graph::complete(5).unwrap(),
        Graph::star(6).unwrap(),
    ];
    for (gi, (g, want_row)) in graphs.iter().zip(&expected).enumerate() {
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(g));
        for (pi, (probe, &(want_gamma, want_beta))) in
            probes().iter().zip(want_row).enumerate()
        {
            let label = circuit.canonical_label(probe);
            assert_eq!(label.gammas()[0], want_gamma, "graph {gi} probe {pi}: gamma");
            assert_eq!(label.betas()[0], want_beta, "graph {gi} probe {pi}: beta");
        }
    }
}

#[test]
fn canonical_label_goldens_on_seed_batch() {
    // Irregular instances: the mirror is NOT a symmetry, so canonical
    // labeling must leave the first probe untouched — folding it anyway
    // was exactly the pre-fix bug.
    let expected = [
        (2.5, 1.2),
        (0.3831853071795859, 1.2707963267948965),
        (1.0, 1.5),
    ];
    for (gi, g) in seed_batch().iter().enumerate() {
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(g));
        for (pi, (probe, &(want_gamma, want_beta))) in
            probes().iter().zip(&expected).enumerate()
        {
            let label = circuit.canonical_label(probe);
            assert_eq!(label.gammas()[0], want_gamma, "graph {gi} probe {pi}: gamma");
            assert_eq!(label.betas()[0], want_beta, "graph {gi} probe {pi}: beta");
        }
    }
}

#[test]
fn label_graphs_goldens_pin_the_optimizer() {
    // Full labeling of the fixed batch: any change to the optimizer, the
    // evaluator, the RNG substream scheme, or canonicalization shows up
    // here as a bit-level diff.
    let expected: [(f64, f64, f64, f64, f64); 6] = [
        (
            0.5201519581202101,
            0.2967920463026599,
            4.371132455701429,
            5.0,
            0.8742264911402857,
        ),
        (
            2.436623919194319,
            0.4591163297738823,
            4.621136760609703,
            6.0,
            0.7701894601016172,
        ),
        (
            1.7367217470522398,
            1.136005133801416,
            5.102593736258219,
            8.0,
            0.6378242170322774,
        ),
        (
            0.48844777536731776,
            0.3201567240538088,
            9.271566518617808,
            11.0,
            0.8428696835107098,
        ),
        (
            2.3415431488347456,
            0.43845996062613946,
            3.2586280372712753,
            4.0,
            0.8146570093178188,
        ),
        (
            2.525383935735083,
            0.4358619884845538,
            5.219362440840971,
            7.0,
            0.7456232058344244,
        ),
    ];
    let ds = Dataset::label_graphs(&seed_batch(), &LabelConfig::quick(40), 2024);
    assert_eq!(ds.len(), expected.len());
    for (i, (entry, &(gamma, beta, expectation, optimal, ratio))) in
        ds.entries.iter().zip(&expected).enumerate()
    {
        assert_eq!(entry.params.gammas()[0], gamma, "graph {i}: gamma");
        assert_eq!(entry.params.betas()[0], beta, "graph {i}: beta");
        assert_eq!(entry.expectation, expectation, "graph {i}: expectation");
        assert_eq!(entry.optimal, optimal, "graph {i}: optimal");
        assert_eq!(entry.approx_ratio, ratio, "graph {i}: approx ratio");
    }
}

/// Isomorphism-deduped labeling: representatives stay bit-identical to
/// the undeduped run, duplicates inherit the representative's scalars
/// exactly (they are relabeling-invariant), and the report accounts for
/// every simulation skipped.
#[test]
fn dedupe_replays_representative_labels_bit_identically() {
    use qrand::seq::SliceRandom;

    // The fixed batch plus relabeled copies of graphs 1 and 4 — same
    // canonical forms, scrambled node names.
    let mut batch = seed_batch();
    let mut rng = StdRng::seed_from_u64(77);
    for &dup_of in &[1usize, 4, 1] {
        let n = batch[dup_of].n();
        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rng);
        batch.push(batch[dup_of].relabel(&perm));
    }
    let duplicates = [(6usize, 1usize), (7, 4), (8, 1)];

    let plain = LabelConfig::quick(40);
    let deduped_config = plain.clone().with_dedupe_isomorphic(true);
    let (baseline, baseline_report) = Dataset::label_graphs_checked(&batch, &plain, 2024);
    let (deduped, report) = Dataset::label_graphs_checked(&batch, &deduped_config, 2024);

    assert_eq!(baseline_report.skipped_isomorphic, 0);
    assert_eq!(report.skipped_isomorphic, duplicates.len());
    assert!(report.is_complete());
    assert_eq!(deduped.len(), batch.len());

    // Representatives (the original six) are bit-identical to the
    // undeduped run: dedupe must not perturb their RNG substreams.
    for i in 0..6 {
        assert_eq!(deduped.entries[i], baseline.entries[i], "representative {i}");
    }
    // Duplicates carry their own graph but the representative's exact
    // label scalars.
    for &(dup, rep) in &duplicates {
        let entry = &deduped.entries[dup];
        let rep_entry = &deduped.entries[rep];
        assert_eq!(entry.graph, batch[dup], "duplicate {dup} keeps its labeling");
        assert_eq!(entry.params, rep_entry.params, "duplicate {dup}: params");
        assert_eq!(entry.expectation, rep_entry.expectation, "duplicate {dup}: expectation");
        assert_eq!(entry.optimal, rep_entry.optimal, "duplicate {dup}: optimal");
        assert_eq!(entry.approx_ratio, rep_entry.approx_ratio, "duplicate {dup}: ratio");
    }

    // A batch with no isomorphic pairs round-trips bit-identically in
    // full — dedupe enabled is then a pure no-op.
    let unique = seed_batch();
    let (plain_ds, _) = Dataset::label_graphs_checked(&unique, &plain, 2024);
    let (deduped_ds, unique_report) = Dataset::label_graphs_checked(&unique, &deduped_config, 2024);
    assert_eq!(unique_report.skipped_isomorphic, 0);
    assert_eq!(deduped_ds.entries, plain_ds.entries);
}
