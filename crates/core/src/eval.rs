//! The §4 evaluation: GNN initialization vs random initialization.
//!
//! "We set aside 100 test graphs with different degrees and graph sizes to
//! calculate the improvement in the approximation ratio achieved by
//! different GNN-based QAOA initialisation." Experiments run "under fixed
//! parameters setting": the approximation ratio is measured directly at the
//! initial parameters (no further optimization), which is what Figure 5
//! plots per test graph and Table 1 averages. [`EvalConfig::refine_iterations`]
//! optionally adds a post-initialization optimization budget to study the
//! warm-start convergence claim of §2.

use qrand::Rng;

use gnn::GnnModel;
use qaoa::optimize::NelderMead;
use qaoa::warm_start::{self, InitStrategy};
use qaoa::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::stats::mean_std;
use qgraph::Graph;

/// Evaluation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Optimizer iterations spent *after* initialization. 0 reproduces the
    /// paper's fixed-parameter setting (Fig. 5 / Table 1).
    pub refine_iterations: usize,
    /// QAOA depth (must match the model's training labels; paper: 1).
    pub depth: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            refine_iterations: 0,
            depth: 1,
        }
    }
}

/// Per-test-graph comparison — one point of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphComparison {
    /// Number of nodes.
    pub nodes: usize,
    /// Regular degree (or max degree for irregular test graphs).
    pub degree: usize,
    /// AR from random initialization.
    pub random_ratio: f64,
    /// AR from GNN-predicted initialization.
    pub gnn_ratio: f64,
}

impl GraphComparison {
    /// Percentage-point improvement of the GNN over random initialization
    /// (the unit of Table 1).
    pub fn improvement(&self) -> f64 {
        (self.gnn_ratio - self.random_ratio) * 100.0
    }
}

/// Aggregated results over a test set — the data behind Figure 5 and one
/// column of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// Per-graph comparisons in test-set order.
    pub per_graph: Vec<GraphComparison>,
    /// Mean percentage-point AR improvement (Table 1).
    pub mean_improvement: f64,
    /// Standard deviation of the improvement (Table 1's ± value).
    pub std_improvement: f64,
    /// Mean AR of the random-initialization baseline.
    pub mean_random_ratio: f64,
    /// Mean AR of the GNN initialization.
    pub mean_gnn_ratio: f64,
}

impl EvaluationReport {
    /// Builds a report from per-graph comparisons.
    ///
    /// # Panics
    ///
    /// Panics if `per_graph` is empty.
    pub fn from_comparisons(per_graph: Vec<GraphComparison>) -> Self {
        assert!(!per_graph.is_empty(), "report needs at least one comparison");
        let improvements: Vec<f64> = per_graph.iter().map(GraphComparison::improvement).collect();
        let (mean_improvement, std_improvement) = mean_std(&improvements);
        let randoms: Vec<f64> = per_graph.iter().map(|c| c.random_ratio).collect();
        let gnns: Vec<f64> = per_graph.iter().map(|c| c.gnn_ratio).collect();
        EvaluationReport {
            mean_improvement,
            std_improvement,
            mean_random_ratio: mean_std(&randoms).0,
            mean_gnn_ratio: mean_std(&gnns).0,
            per_graph,
        }
    }

    /// Fraction of test graphs where the GNN beat random initialization —
    /// the stability observation of §4.2.
    pub fn win_rate(&self) -> f64 {
        let wins = self
            .per_graph
            .iter()
            .filter(|c| c.gnn_ratio > c.random_ratio)
            .count();
        wins as f64 / self.per_graph.len() as f64
    }
}

/// Measures one initialization's approximation ratio, optionally refined by
/// optimization. Both conditions share the caller's evaluator, so one
/// scratch state vector serves the whole comparison.
fn measure<R: Rng + ?Sized>(
    evaluator: &mut Evaluator<'_>,
    initial: Params,
    strategy: InitStrategy,
    config: &EvalConfig,
    rng: &mut R,
) -> f64 {
    if config.refine_iterations == 0 {
        return evaluator.approximation_ratio_in_place(&initial);
    }
    let optimizer = NelderMead::new(config.refine_iterations);
    warm_start::run_with(evaluator, initial, strategy, &optimizer, rng).final_ratio
}

/// Compares GNN-predicted against random initialization on one graph.
pub fn compare_on_graph<R: Rng + ?Sized>(
    model: &GnnModel,
    graph: &Graph,
    config: &EvalConfig,
    rng: &mut R,
) -> GraphComparison {
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
    let mut evaluator = Evaluator::new(&circuit);
    let random_ratio = measure(
        &mut evaluator,
        Params::random(config.depth, rng),
        InitStrategy::Random,
        config,
        rng,
    );
    let (gamma, beta) = model.predict(graph);
    // The model predicts a single (γ, β) pair; deeper evaluations tile it.
    let gnn_params = Params::new(vec![gamma; config.depth], vec![beta; config.depth]);
    let gnn_ratio = measure(
        &mut evaluator,
        gnn_params,
        InitStrategy::Predicted,
        config,
        rng,
    );
    GraphComparison {
        nodes: graph.n(),
        degree: graph.regular_degree().unwrap_or(graph.max_degree()),
        random_ratio,
        gnn_ratio,
    }
}

/// Evaluates a model over a whole test set.
///
/// # Panics
///
/// Panics if `graphs` is empty.
pub fn evaluate_model<R: Rng + ?Sized>(
    model: &GnnModel,
    graphs: &[Graph],
    config: &EvalConfig,
    rng: &mut R,
) -> EvaluationReport {
    assert!(!graphs.is_empty(), "test set must be non-empty");
    let per_graph = graphs
        .iter()
        .map(|g| compare_on_graph(model, g, config, rng))
        .collect();
    EvaluationReport::from_comparisons(per_graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn::{GnnKind, ModelConfig};
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn comparison(random: f64, gnn: f64) -> GraphComparison {
        GraphComparison {
            nodes: 6,
            degree: 3,
            random_ratio: random,
            gnn_ratio: gnn,
        }
    }

    #[test]
    fn improvement_is_percentage_points() {
        assert!((comparison(0.70, 0.75).improvement() - 5.0).abs() < 1e-9);
        assert!((comparison(0.80, 0.70).improvement() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn report_statistics() {
        let report = EvaluationReport::from_comparisons(vec![
            comparison(0.7, 0.8),
            comparison(0.6, 0.6),
            comparison(0.9, 0.8),
        ]);
        assert!((report.mean_improvement - (10.0 + 0.0 - 10.0) / 3.0).abs() < 1e-9);
        assert!(report.std_improvement > 0.0);
        assert!((report.mean_random_ratio - 0.7333333333).abs() < 1e-6);
        assert!((report.win_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_report_rejected() {
        let _ = EvaluationReport::from_comparisons(vec![]);
    }

    #[test]
    fn fixed_parameter_evaluation_runs() {
        let mut rng = StdRng::seed_from_u64(141);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let graphs: Vec<Graph> = (0..5)
            .map(|_| qgraph::generate::random_regular(8, 3, &mut rng).unwrap())
            .collect();
        let report = evaluate_model(&model, &graphs, &EvalConfig::default(), &mut rng);
        assert_eq!(report.per_graph.len(), 5);
        for c in &report.per_graph {
            assert!((0.0..=1.0 + 1e-9).contains(&c.random_ratio));
            assert!((0.0..=1.0 + 1e-9).contains(&c.gnn_ratio));
            assert_eq!(c.nodes, 8);
            assert_eq!(c.degree, 3);
        }
    }

    #[test]
    fn refinement_improves_both_conditions() {
        let mut rng = StdRng::seed_from_u64(142);
        let model = GnnModel::new(GnnKind::Gin, ModelConfig::default(), &mut rng);
        let g = qgraph::generate::random_regular(8, 3, &mut rng).unwrap();
        let fixed = compare_on_graph(&model, &g, &EvalConfig::default(), &mut rng);
        let refined = compare_on_graph(
            &model,
            &g,
            &EvalConfig {
                refine_iterations: 100,
                depth: 1,
            },
            &mut rng,
        );
        // Optimization can only help the GNN side deterministically; the
        // random side re-samples, so only check the GNN condition.
        assert!(refined.gnn_ratio >= fixed.gnn_ratio - 1e-9);
    }
}
