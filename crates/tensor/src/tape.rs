use std::cell::RefCell;
use std::rc::Rc;

use qrand::Rng;

use crate::Matrix;

/// The operation that produced a node — the recipe `backward` replays.
#[derive(Debug, Clone)]
enum Op {
    /// Leaf node (parameter or constant); no parents.
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Hadamard(usize, usize),
    MatMul(usize, usize),
    Scale(usize, f64),
    Relu(usize),
    LeakyRelu(usize, f64),
    Sigmoid(usize),
    Tanh(usize),
    Abs(usize),
    Huber(usize, f64),
    Transpose(usize),
    SumAll(usize),
    MeanRows(usize),
    ConcatCols(usize, usize),
    /// Elementwise product with a fixed (pre-scaled) dropout mask.
    Dropout(usize, Matrix),
    /// Per-row softmax restricted to positions where the mask is non-zero.
    MaskedRowSoftmax(usize, Matrix),
    /// `out[v] = elementwise max over rows listed in neighbors[v]`; the
    /// flattened argmax (`usize::MAX` for empty neighborhoods) routes the
    /// gradient.
    NeighborMax(usize, Rc<Vec<Vec<usize>>>, Vec<usize>),
}

#[derive(Debug)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: Op,
}

#[derive(Debug, Default)]
struct Inner {
    nodes: Vec<Node>,
    persistent: usize,
    training: bool,
}

/// A reverse-mode autodiff tape.
///
/// Parameters are registered first (persistent nodes); every forward pass
/// then appends ephemeral nodes which [`Tape::reset`] discards while keeping
/// the parameters (and their values) alive. This is the classic
/// define-by-run pattern: build, [`Tape::backward`], step the optimizer,
/// reset, repeat.
///
/// # Example
///
/// ```
/// use tensor::{Matrix, Tape};
///
/// let tape = Tape::new();
/// let w = tape.parameter(Matrix::from_rows(&[&[2.0]]));
/// let x = tape.constant(Matrix::from_rows(&[&[3.0]]));
/// let y = w.hadamard(&x); // y = w*x
/// let loss = y.sum();
/// tape.backward(&loss);
/// assert_eq!(w.grad()[(0, 0)], 3.0); // dy/dw = x
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tape {
    inner: Rc<RefCell<Inner>>,
}

/// A handle to one node on a [`Tape`].
///
/// Cheap to clone; all state lives on the tape.
#[derive(Debug, Clone)]
pub struct Tensor {
    tape: Tape,
    id: usize,
}

impl Tape {
    /// Creates an empty tape in training mode.
    pub fn new() -> Self {
        Tape {
            inner: Rc::new(RefCell::new(Inner {
                nodes: Vec::new(),
                persistent: 0,
                training: true,
            })),
        }
    }

    fn push(&self, value: Matrix, op: Op) -> Tensor {
        let grad = Matrix::zeros(value.rows(), value.cols());
        let mut inner = self.inner.borrow_mut();
        inner.nodes.push(Node { value, grad, op });
        Tensor {
            tape: self.clone(),
            id: inner.nodes.len() - 1,
        }
    }

    /// Registers a persistent parameter (trainable leaf).
    ///
    /// # Panics
    ///
    /// Panics if ephemeral nodes already exist — parameters must be created
    /// before the first forward pass (or right after [`Tape::reset`]).
    pub fn parameter(&self, value: Matrix) -> Tensor {
        {
            let inner = self.inner.borrow();
            assert_eq!(
                inner.nodes.len(),
                inner.persistent,
                "parameters must be registered before any forward computation"
            );
        }
        let t = self.push(value, Op::Leaf);
        self.inner.borrow_mut().persistent += 1;
        t
    }

    /// Creates an ephemeral constant leaf (input data); removed by
    /// [`Tape::reset`], receives a gradient but no optimizer ever reads it.
    pub fn constant(&self, value: Matrix) -> Tensor {
        self.push(value, Op::Leaf)
    }

    /// Discards all ephemeral nodes and zeroes every gradient. Parameter
    /// values survive.
    pub fn reset(&self) {
        let mut inner = self.inner.borrow_mut();
        let persistent = inner.persistent;
        inner.nodes.truncate(persistent);
        for node in &mut inner.nodes {
            node.grad = Matrix::zeros(node.value.rows(), node.value.cols());
        }
    }

    /// Whether dropout (and other train-only behavior) is active.
    pub fn is_training(&self) -> bool {
        self.inner.borrow().training
    }

    /// Switches between training and evaluation mode.
    pub fn set_training(&self, training: bool) {
        self.inner.borrow_mut().training = training;
    }

    /// Total node count (parameters + ephemerals); useful for leak checks.
    pub fn num_nodes(&self) -> usize {
        self.inner.borrow().nodes.len()
    }

    /// Runs reverse-mode differentiation from `output`, accumulating
    /// gradients on every node that feeds it.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a `1 × 1` scalar or lives on another tape.
    pub fn backward(&self, output: &Tensor) {
        assert!(
            Rc::ptr_eq(&self.inner, &output.tape.inner),
            "output tensor lives on a different tape"
        );
        let mut inner = self.inner.borrow_mut();
        let out_id = output.id;
        assert_eq!(
            inner.nodes[out_id].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) output"
        );
        // Zero all gradients, then seed the output with 1.
        for node in &mut inner.nodes {
            node.grad = Matrix::zeros(node.value.rows(), node.value.cols());
        }
        inner.nodes[out_id].grad[(0, 0)] = 1.0;

        for id in (0..=out_id).rev() {
            let op = inner.nodes[id].op.clone();
            let grad = inner.nodes[id].grad.clone();
            if grad.max_abs() == 0.0 {
                continue;
            }
            match op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    inner.nodes[a].grad.add_scaled_assign(&grad, 1.0);
                    inner.nodes[b].grad.add_scaled_assign(&grad, 1.0);
                }
                Op::Sub(a, b) => {
                    inner.nodes[a].grad.add_scaled_assign(&grad, 1.0);
                    inner.nodes[b].grad.add_scaled_assign(&grad, -1.0);
                }
                Op::Hadamard(a, b) => {
                    let ga = grad.hadamard(&inner.nodes[b].value);
                    let gb = grad.hadamard(&inner.nodes[a].value);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                    inner.nodes[b].grad.add_scaled_assign(&gb, 1.0);
                }
                Op::MatMul(a, b) => {
                    let ga = grad.matmul(&inner.nodes[b].value.transpose());
                    let gb = inner.nodes[a].value.transpose().matmul(&grad);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                    inner.nodes[b].grad.add_scaled_assign(&gb, 1.0);
                }
                Op::Scale(a, s) => {
                    inner.nodes[a].grad.add_scaled_assign(&grad, s);
                }
                Op::Relu(a) => {
                    let mask = inner.nodes[a].value.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    let ga = grad.hadamard(&mask);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::LeakyRelu(a, slope) => {
                    let mask = inner.nodes[a]
                        .value
                        .map(|v| if v > 0.0 { 1.0 } else { slope });
                    let ga = grad.hadamard(&mask);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::Sigmoid(a) => {
                    // y = σ(x): dy/dx = y (1 - y); the node value is y.
                    let y = &inner.nodes[id].value;
                    let d = y.map(|v| v * (1.0 - v));
                    let ga = grad.hadamard(&d);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::Tanh(a) => {
                    let y = &inner.nodes[id].value;
                    let d = y.map(|v| 1.0 - v * v);
                    let ga = grad.hadamard(&d);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::Abs(a) => {
                    let sign = inner.nodes[a]
                        .value
                        .map(|v| if v > 0.0 { 1.0 } else if v < 0.0 { -1.0 } else { 0.0 });
                    let ga = grad.hadamard(&sign);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::Huber(a, delta) => {
                    // huber'(x) = x for |x| <= δ, δ·sign(x) otherwise.
                    let d = inner.nodes[a].value.map(|v| {
                        if v.abs() <= delta {
                            v
                        } else {
                            delta * v.signum()
                        }
                    });
                    let ga = grad.hadamard(&d);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::Transpose(a) => {
                    let ga = grad.transpose();
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::SumAll(a) => {
                    let g = grad[(0, 0)];
                    let shape = inner.nodes[a].value.shape();
                    let ga = Matrix::full(shape.0, shape.1, g);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::MeanRows(a) => {
                    let rows = inner.nodes[a].value.rows();
                    let cols = inner.nodes[a].value.cols();
                    let mut ga = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        for c in 0..cols {
                            ga[(r, c)] = grad[(0, c)] / rows as f64;
                        }
                    }
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::ConcatCols(a, b) => {
                    let ca = inner.nodes[a].value.cols();
                    let rows = grad.rows();
                    let cb = inner.nodes[b].value.cols();
                    let mut ga = Matrix::zeros(rows, ca);
                    let mut gb = Matrix::zeros(rows, cb);
                    for r in 0..rows {
                        for c in 0..ca {
                            ga[(r, c)] = grad[(r, c)];
                        }
                        for c in 0..cb {
                            gb[(r, c)] = grad[(r, ca + c)];
                        }
                    }
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                    inner.nodes[b].grad.add_scaled_assign(&gb, 1.0);
                }
                Op::Dropout(a, mask) => {
                    let ga = grad.hadamard(&mask);
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::MaskedRowSoftmax(a, mask) => {
                    // y_i = softmax over masked entries; for each row:
                    // dx_i = y_i (g_i - Σ_j g_j y_j), masked positions only.
                    let y = inner.nodes[id].value.clone();
                    let rows = y.rows();
                    let cols = y.cols();
                    let mut ga = Matrix::zeros(rows, cols);
                    for r in 0..rows {
                        let mut dot = 0.0;
                        for c in 0..cols {
                            if mask[(r, c)] != 0.0 {
                                dot += grad[(r, c)] * y[(r, c)];
                            }
                        }
                        for c in 0..cols {
                            if mask[(r, c)] != 0.0 {
                                ga[(r, c)] = y[(r, c)] * (grad[(r, c)] - dot);
                            }
                        }
                    }
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
                Op::NeighborMax(a, _nbrs, argmax) => {
                    let cols = grad.cols();
                    let rows = grad.rows();
                    let a_cols = inner.nodes[a].value.cols();
                    let mut ga = Matrix::zeros(inner.nodes[a].value.rows(), a_cols);
                    for v in 0..rows {
                        for c in 0..cols {
                            let src = argmax[v * cols + c];
                            if src != usize::MAX {
                                ga[(src, c)] += grad[(v, c)];
                            }
                        }
                    }
                    inner.nodes[a].grad.add_scaled_assign(&ga, 1.0);
                }
            }
        }
    }
}

impl Tensor {
    fn assert_same_tape(&self, other: &Tensor) {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "tensors live on different tapes"
        );
    }

    /// The current value (cloned out of the tape).
    pub fn value(&self) -> Matrix {
        self.tape.inner.borrow().nodes[self.id].value.clone()
    }

    /// The current gradient (cloned); zero until [`Tape::backward`] runs.
    pub fn grad(&self) -> Matrix {
        self.tape.inner.borrow().nodes[self.id].grad.clone()
    }

    /// Overwrites the value in place (used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics if the shape changes.
    pub fn set_value(&self, value: Matrix) {
        let mut inner = self.tape.inner.borrow_mut();
        assert_eq!(
            inner.nodes[self.id].value.shape(),
            value.shape(),
            "set_value must preserve shape"
        );
        inner.nodes[self.id].value = value;
    }

    /// `(rows, cols)` of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.inner.borrow().nodes[self.id].value.shape()
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or different tapes.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_tape(other);
        let v = self.value().add(&other.value());
        self.tape.push(v, Op::Add(self.id, other.id))
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or different tapes.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_tape(other);
        let v = self.value().sub(&other.value());
        self.tape.push(v, Op::Sub(self.id, other.id))
    }

    /// Elementwise product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or different tapes.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.assert_same_tape(other);
        let v = self.value().hadamard(&other.value());
        self.tape.push(v, Op::Hadamard(self.id, other.id))
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch or different tapes.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.assert_same_tape(other);
        let v = self.value().matmul(&other.value());
        self.tape.push(v, Op::MatMul(self.id, other.id))
    }

    /// Multiplication by a scalar constant.
    pub fn scale(&self, s: f64) -> Tensor {
        self.tape.push(self.value().scale(s), Op::Scale(self.id, s))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let v = self.value().map(|x| x.max(0.0));
        self.tape.push(v, Op::Relu(self.id))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, slope: f64) -> Tensor {
        let v = self.value().map(|x| if x > 0.0 { x } else { slope * x });
        self.tape.push(v, Op::LeakyRelu(self.id, slope))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        let v = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        self.tape.push(v, Op::Sigmoid(self.id))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let v = self.value().map(f64::tanh);
        self.tape.push(v, Op::Tanh(self.id))
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        let v = self.value().map(f64::abs);
        self.tape.push(v, Op::Abs(self.id))
    }

    /// Elementwise Huber function `0.5x²` for `|x| ≤ δ`, else
    /// `δ(|x| − δ/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `delta <= 0`.
    pub fn huber(&self, delta: f64) -> Tensor {
        assert!(delta > 0.0, "huber delta must be positive");
        let v = self.value().map(|x| {
            if x.abs() <= delta {
                0.5 * x * x
            } else {
                delta * (x.abs() - 0.5 * delta)
            }
        });
        self.tape.push(v, Op::Huber(self.id, delta))
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        self.tape
            .push(self.value().transpose(), Op::Transpose(self.id))
    }

    /// Sum of all entries as a `1 × 1` tensor.
    pub fn sum(&self) -> Tensor {
        let v = Matrix::from_rows(&[&[self.value().sum()]]);
        self.tape.push(v, Op::SumAll(self.id))
    }

    /// Mean of all entries as a `1 × 1` tensor.
    pub fn mean(&self) -> Tensor {
        let numel = {
            let (r, c) = self.shape();
            (r * c) as f64
        };
        self.sum().scale(1.0 / numel)
    }

    /// Column-wise mean as a `1 × cols` tensor (graph-level mean pooling,
    /// Eq. 9 of the paper with READOUT = mean).
    pub fn mean_rows(&self) -> Tensor {
        let v = self.value().mean_rows();
        self.tape.push(v, Op::MeanRows(self.id))
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch or different tapes.
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        self.assert_same_tape(other);
        let v = self.value().concat_cols(&other.value());
        self.tape.push(v, Op::ConcatCols(self.id, other.id))
    }

    /// Inverted dropout: in training mode each entry is zeroed with
    /// probability `p` and survivors are scaled by `1/(1-p)`; in eval mode
    /// this is the identity.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn dropout<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> Tensor {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        if !self.tape.is_training() || p == 0.0 {
            return self.clone();
        }
        let keep = 1.0 - p;
        let value = self.value();
        let mask = value.map(|_| if rng.gen::<f64>() < keep { 1.0 / keep } else { 0.0 });
        let v = value.hadamard(&mask);
        self.tape.push(v, Op::Dropout(self.id, mask))
    }

    /// Per-row softmax restricted to positions where `mask` is non-zero;
    /// masked-out positions produce 0. Rows whose mask is entirely zero
    /// produce an all-zero row. This is the attention normalization of GAT
    /// (Eq. 7).
    ///
    /// # Panics
    ///
    /// Panics if `mask` has a different shape.
    pub fn masked_row_softmax(&self, mask: &Matrix) -> Tensor {
        let x = self.value();
        assert_eq!(x.shape(), mask.shape(), "mask shape must match");
        let rows = x.rows();
        let cols = x.cols();
        let mut y = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut max = f64::NEG_INFINITY;
            for c in 0..cols {
                if mask[(r, c)] != 0.0 {
                    max = max.max(x[(r, c)]);
                }
            }
            if max == f64::NEG_INFINITY {
                continue; // fully masked row
            }
            let mut denom = 0.0;
            for c in 0..cols {
                if mask[(r, c)] != 0.0 {
                    denom += (x[(r, c)] - max).exp();
                }
            }
            for c in 0..cols {
                if mask[(r, c)] != 0.0 {
                    y[(r, c)] = (x[(r, c)] - max).exp() / denom;
                }
            }
        }
        self.tape
            .push(y, Op::MaskedRowSoftmax(self.id, mask.clone()))
    }

    /// Row-wise elementwise max over each node's neighbor rows:
    /// `out[v][j] = max_{u ∈ neighbors[v]} self[u][j]` (GraphSAGE max
    /// pooling, Eq. 3). Nodes with no neighbors produce a zero row.
    ///
    /// # Panics
    ///
    /// Panics if any neighbor index is out of range.
    pub fn neighbor_max(&self, neighbors: &Rc<Vec<Vec<usize>>>) -> Tensor {
        let x = self.value();
        let n = neighbors.len();
        let cols = x.cols();
        let mut y = Matrix::zeros(n, cols);
        let mut argmax = vec![usize::MAX; n * cols];
        for (v, nbrs) in neighbors.iter().enumerate() {
            for c in 0..cols {
                let mut best = f64::NEG_INFINITY;
                let mut best_u = usize::MAX;
                for &u in nbrs {
                    assert!(u < x.rows(), "neighbor index {u} out of range");
                    if x[(u, c)] > best {
                        best = x[(u, c)];
                        best_u = u;
                    }
                }
                if best_u != usize::MAX {
                    y[(v, c)] = best;
                    argmax[v * cols + c] = best_u;
                }
            }
        }
        self.tape
            .push(y, Op::NeighborMax(self.id, Rc::clone(neighbors), argmax))
    }

    /// Mean-squared-error loss against a constant target, as a scalar
    /// tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse(&self, target: &Matrix) -> Tensor {
        let t = self.tape.constant(target.clone());
        let d = self.sub(&t);
        d.hadamard(&d).mean()
    }

    /// Mean-absolute-error loss against a constant target.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mae(&self, target: &Matrix) -> Tensor {
        let t = self.tape.constant(target.clone());
        self.sub(&t).abs().mean()
    }

    /// Mean Huber loss against a constant target.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or `delta <= 0`.
    pub fn huber_loss(&self, target: &Matrix, delta: f64) -> Tensor {
        let t = self.tape.constant(target.clone());
        self.sub(&t).huber(delta).mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    /// Central-difference gradient check: perturbs every entry of `param`
    /// and compares with the autodiff gradient.
    fn grad_check<F>(build: F, param_value: Matrix, tolerance: f64)
    where
        F: Fn(&Tape, &Tensor) -> Tensor,
    {
        let tape = Tape::new();
        let param = tape.parameter(param_value.clone());
        let loss = build(&tape, &param);
        tape.backward(&loss);
        let analytic = param.grad();

        let eps = 1e-5;
        let (rows, cols) = param_value.shape();
        for r in 0..rows {
            for c in 0..cols {
                let eval = |delta: f64| {
                    let tape = Tape::new();
                    let mut v = param_value.clone();
                    v[(r, c)] += delta;
                    let p = tape.parameter(v);
                    build(&tape, &p).value()[(0, 0)]
                };
                let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
                let a = analytic[(r, c)];
                assert!(
                    (a - numeric).abs() < tolerance,
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn grad_of_linear_chain() {
        grad_check(
            |_tape, p| p.scale(3.0).sum(),
            Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 4.0]]),
            1e-6,
        );
    }

    #[test]
    fn grad_of_matmul() {
        grad_check(
            |tape, p| {
                let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]));
                x.matmul(p).sum()
            },
            Matrix::from_rows(&[&[0.3, -0.7], &[1.1, 0.2]]),
            1e-5,
        );
    }

    #[test]
    fn grad_of_activations() {
        let init = Matrix::from_rows(&[&[0.5, -0.8], &[1.2, -0.1]]);
        grad_check(|_t, p| p.relu().sum(), init.clone(), 1e-5);
        grad_check(|_t, p| p.leaky_relu(0.2).sum(), init.clone(), 1e-5);
        grad_check(|_t, p| p.sigmoid().sum(), init.clone(), 1e-5);
        grad_check(|_t, p| p.tanh().sum(), init.clone(), 1e-5);
        grad_check(|_t, p| p.abs().sum(), init.clone(), 1e-5);
        grad_check(|_t, p| p.huber(0.6).sum(), init, 1e-5);
    }

    #[test]
    fn grad_of_elementwise_and_reductions() {
        let init = Matrix::from_rows(&[&[0.5, -0.8, 0.3]]);
        grad_check(
            |t, p| {
                let c = t.constant(Matrix::from_rows(&[&[2.0, 0.5, -1.0]]));
                p.hadamard(&c).add(&c).sub(p).mean()
            },
            init.clone(),
            1e-5,
        );
        grad_check(|_t, p| p.mean_rows().sum(), Matrix::ones(3, 2), 1e-5);
        grad_check(|_t, p| p.transpose().sum(), init, 1e-5);
    }

    #[test]
    fn grad_of_square_via_self_hadamard() {
        // d/dx sum(x ⊙ x) = 2x — exercises duplicate-parent accumulation.
        let tape = Tape::new();
        let p = tape.parameter(Matrix::from_rows(&[&[3.0, -2.0]]));
        let loss = p.hadamard(&p).sum();
        tape.backward(&loss);
        assert_eq!(p.grad(), Matrix::from_rows(&[&[6.0, -4.0]]));
    }

    #[test]
    fn grad_of_concat() {
        grad_check(
            |t, p| {
                let c = t.constant(Matrix::from_rows(&[&[1.0], &[2.0]]));
                let w = t.constant(Matrix::from_rows(&[&[1.0], &[-1.0], &[0.5]]));
                p.concat_cols(&c).matmul(&w).sum()
            },
            Matrix::from_rows(&[&[0.3, 0.4], &[0.5, 0.6]]),
            1e-5,
        );
    }

    #[test]
    fn grad_of_masked_softmax() {
        let mask = Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]);
        grad_check(
            |t, p| {
                let w = t.constant(Matrix::from_rows(&[&[0.7], &[-0.3], &[0.9]]));
                p.masked_row_softmax(&mask.clone()).matmul(&w).sum()
            },
            Matrix::from_rows(&[&[0.2, -0.5, 9.0], &[1.0, 0.3, 0.4]]),
            1e-5,
        );
    }

    #[test]
    fn masked_softmax_rows_sum_to_one_on_mask() {
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.1, 0.2, 0.3]]));
        let mask = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 0.0, 0.0]]);
        let y = x.masked_row_softmax(&mask).value();
        assert!((y[(0, 0)] + y[(0, 2)] - 1.0).abs() < 1e-12);
        assert_eq!(y[(0, 1)], 0.0);
        // Fully masked row stays zero.
        assert_eq!(y.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn grad_of_neighbor_max() {
        let neighbors = Rc::new(vec![vec![1, 2], vec![0], vec![]]);
        grad_check(
            |t, p| {
                let w = t.constant(Matrix::from_rows(&[&[1.0], &[2.0]]));
                p.neighbor_max(&neighbors).matmul(&w).sum()
            },
            Matrix::from_rows(&[&[0.5, 1.5], &[2.5, 0.1], &[1.0, 3.0]]),
            1e-5,
        );
    }

    #[test]
    fn neighbor_max_values_and_empty() {
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[0.0, 9.0]]));
        let neighbors = Rc::new(vec![vec![1, 2], vec![0], vec![]]);
        let y = x.neighbor_max(&neighbors).value();
        assert_eq!(y.row(0), &[3.0, 9.0]);
        assert_eq!(y.row(1), &[1.0, 5.0]);
        assert_eq!(y.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn dropout_train_vs_eval() {
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(10, 10));
        let mut rng = StdRng::seed_from_u64(81);
        let dropped = x.dropout(0.5, &mut rng).value();
        // Some zeros, survivors scaled to 2.
        let zeros = dropped.data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 10 && zeros < 90);
        assert!(dropped.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-12));

        tape.set_training(false);
        let kept = x.dropout(0.5, &mut rng).value();
        assert_eq!(kept, Matrix::ones(10, 10));
    }

    #[test]
    fn grad_of_dropout_routes_through_mask() {
        let tape = Tape::new();
        let p = tape.parameter(Matrix::ones(4, 4));
        let mut rng = StdRng::seed_from_u64(82);
        let y = p.dropout(0.5, &mut rng);
        let loss = y.sum();
        tape.backward(&loss);
        // Gradient equals the mask itself.
        assert_eq!(p.grad(), y.value());
    }

    #[test]
    fn losses_match_hand_computation() {
        let tape = Tape::new();
        let pred = tape.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let target = Matrix::from_rows(&[&[0.0, 4.0]]);
        assert!((pred.mse(&target).value()[(0, 0)] - 2.5).abs() < 1e-12);
        assert!((pred.mae(&target).value()[(0, 0)] - 1.5).abs() < 1e-12);
        // Huber δ=1: 0.5·1² and 1·(2−0.5) → mean = (0.5 + 1.5)/2 = 1.0.
        assert!((pred.huber_loss(&target, 1.0).value()[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grad_of_mse_loss() {
        grad_check(
            |_t, p| p.mse(&Matrix::from_rows(&[&[1.0, -1.0]])),
            Matrix::from_rows(&[&[0.3, 0.6]]),
            1e-5,
        );
    }

    #[test]
    fn reset_preserves_parameters() {
        let tape = Tape::new();
        let p = tape.parameter(Matrix::ones(2, 2));
        let c = tape.constant(Matrix::ones(2, 2));
        let _ = p.add(&c);
        assert_eq!(tape.num_nodes(), 3);
        tape.reset();
        assert_eq!(tape.num_nodes(), 1);
        assert_eq!(p.value(), Matrix::ones(2, 2));
        // Parameters can be updated and reused after reset.
        p.set_value(Matrix::zeros(2, 2));
        let c2 = tape.constant(Matrix::ones(2, 2));
        assert_eq!(p.add(&c2).value(), Matrix::ones(2, 2));
    }

    #[test]
    #[should_panic(expected = "before any forward computation")]
    fn late_parameter_rejected() {
        let tape = Tape::new();
        let _ = tape.constant(Matrix::ones(1, 1));
        let _ = tape.parameter(Matrix::ones(1, 1));
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_rejects_non_scalar() {
        let tape = Tape::new();
        let p = tape.parameter(Matrix::ones(2, 2));
        tape.backward(&p.relu());
    }

    #[test]
    #[should_panic(expected = "different tapes")]
    fn cross_tape_ops_rejected() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.constant(Matrix::ones(1, 1));
        let b = t2.constant(Matrix::ones(1, 1));
        let _ = a.add(&b);
    }

    #[test]
    fn backward_twice_gives_same_grads() {
        let tape = Tape::new();
        let p = tape.parameter(Matrix::from_rows(&[&[2.0]]));
        let loss = p.hadamard(&p).sum();
        tape.backward(&loss);
        let g1 = p.grad();
        tape.backward(&loss);
        assert_eq!(p.grad(), g1, "gradients must be zeroed between passes");
    }
}
