//! Plain-text persistence for named parameter collections.
//!
//! The workspace is hermetic (no external serialization crates), so
//! checkpoints use a minimal line format:
//!
//! ```text
//! # optional comments
//! param <index> <rows> <cols>
//! <row of values>
//! ...
//! ```
//!
//! [`write_params`]/[`read_params`] round-trip exactly (values are printed
//! with full precision via Rust's shortest-round-trip float formatting).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::Matrix;

/// Serializes an ordered parameter list to the checkpoint text format.
pub fn params_to_string(params: &[Matrix]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# tensor checkpoint v1: {} parameters", params.len());
    for (i, m) in params.iter().enumerate() {
        let _ = writeln!(out, "param {} {} {}", i, m.rows(), m.cols());
        for r in 0..m.rows() {
            let row: Vec<String> = m.row(r).iter().map(|v| format!("{v}")).collect();
            let _ = writeln!(out, "{}", row.join(" "));
        }
    }
    out
}

/// Error from parsing a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCheckpointError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCheckpointError {}

/// Parses a checkpoint produced by [`params_to_string`].
///
/// # Errors
///
/// Returns [`ParseCheckpointError`] with a line number on malformed input,
/// including out-of-order indices and dimension mismatches.
pub fn params_from_str(text: &str) -> Result<Vec<Matrix>, ParseCheckpointError> {
    let mut params: Vec<Matrix> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("param") {
            return Err(ParseCheckpointError {
                line: lineno,
                message: format!("expected 'param' header, got '{line}'"),
            });
        }
        let parse = |tok: Option<&str>, what: &str, lineno: usize| {
            tok.ok_or_else(|| ParseCheckpointError {
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse::<usize>()
            .map_err(|_| ParseCheckpointError {
                line: lineno,
                message: format!("invalid {what}"),
            })
        };
        let index = parse(parts.next(), "index", lineno)?;
        if index != params.len() {
            return Err(ParseCheckpointError {
                line: lineno,
                message: format!("expected index {}, got {index}", params.len()),
            });
        }
        let rows = parse(parts.next(), "rows", lineno)?;
        let cols = parse(parts.next(), "cols", lineno)?;
        if rows == 0 || cols == 0 {
            return Err(ParseCheckpointError {
                line: lineno,
                message: "dimensions must be positive".into(),
            });
        }
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows {
            let Some((ridx, row_raw)) = lines.next() else {
                return Err(ParseCheckpointError {
                    line: lineno,
                    message: "unexpected end of file inside parameter".into(),
                });
            };
            let row_lineno = ridx + 1;
            let values: Result<Vec<f64>, _> = row_raw
                .split_whitespace()
                .map(|tok| {
                    tok.parse::<f64>().map_err(|_| ParseCheckpointError {
                        line: row_lineno,
                        message: format!("invalid value '{tok}'"),
                    })
                })
                .collect();
            let values = values?;
            if values.len() != cols {
                return Err(ParseCheckpointError {
                    line: row_lineno,
                    message: format!("expected {cols} values, got {}", values.len()),
                });
            }
            data.extend(values);
        }
        params.push(Matrix::from_flat(rows, cols, data));
    }
    Ok(params)
}

/// Writes a checkpoint file.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_params<P: AsRef<Path>>(params: &[Matrix], path: P) -> io::Result<()> {
    fs::write(path, params_to_string(params))
}

/// Reads a checkpoint file.
///
/// # Errors
///
/// Returns filesystem errors as-is; parse failures are wrapped into
/// [`io::ErrorKind::InvalidData`].
pub fn read_params<P: AsRef<Path>>(path: P) -> io::Result<Vec<Matrix>> {
    let text = fs::read_to_string(path)?;
    params_from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn round_trip_exact() {
        let mut rng = StdRng::seed_from_u64(55);
        let params = vec![
            Matrix::xavier_uniform(3, 4, &mut rng),
            Matrix::zeros(1, 2),
            Matrix::from_rows(&[&[1.0 / 3.0, f64::MIN_POSITIVE, -1e308]]),
        ];
        let text = params_to_string(&params);
        let back = params_from_str(&text).unwrap();
        assert_eq!(params, back, "round trip must be bit-exact");
    }

    #[test]
    fn empty_checkpoint() {
        assert_eq!(params_from_str("# nothing\n").unwrap(), vec![]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = params_from_str("garbage\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = params_from_str("param 1 1 1\n0\n").unwrap_err();
        assert!(err.message.contains("expected index 0"));
        let err = params_from_str("param 0 1 3\n1 2\n").unwrap_err();
        assert!(err.message.contains("expected 3 values"));
        let err = params_from_str("param 0 2 1\n1\n").unwrap_err();
        assert!(err.message.contains("end of file"));
        let err = params_from_str("param 0 0 1\n").unwrap_err();
        assert!(err.message.contains("positive"));
        let err = params_from_str("param 0 1 1\nxyz\n").unwrap_err();
        assert!(err.message.contains("invalid value"));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tensor_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.txt");
        let params = vec![Matrix::full(2, 2, 0.125)];
        write_params(&params, &path).unwrap();
        assert_eq!(read_params(&path).unwrap(), params);
        fs::remove_file(path).unwrap();
    }
}
