//! Network design: Max-Cut as a traffic-splitting problem.
//!
//! ```text
//! cargo run --release --example network_design
//! ```
//!
//! The paper's introduction motivates Max-Cut with network design: split
//! routers into two frequency domains so that as much interfering traffic
//! as possible crosses the boundary. This example builds a weighted
//! two-cluster topology, solves it classically (brute force, greedy, local
//! search) and with QAOA warm-started from the fixed-angle table, and
//! reports everyone's approximation ratio.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::optimize::NelderMead;
use qaoa::warm_start::{self, InitStrategy};
use qaoa::{fixed_angle, MaxCutHamiltonian, Params};
use qgraph::{generate, maxcut, Graph};

/// Two dense router clusters with heavy cross-cluster interference links.
fn backbone_topology(rng: &mut StdRng) -> Result<Graph, qgraph::GraphError> {
    let per_cluster = 6;
    let n = 2 * per_cluster;
    let mut g = Graph::empty(n)?;
    // Light intra-cluster links.
    for c in 0..2 {
        let base = c * per_cluster;
        for i in 0..per_cluster {
            for j in (i + 1)..per_cluster {
                if (i + j) % 2 == 0 {
                    g.add_edge(base + i, base + j, 0.5)?;
                }
            }
        }
    }
    // Heavy cross-cluster interference.
    for i in 0..per_cluster {
        g.add_edge(i, per_cluster + i, 2.0)?;
        g.add_edge(i, per_cluster + (i + 1) % per_cluster, 1.5)?;
    }
    // A little random noise so runs differ.
    generate::randomize_weights(&g, 0.4, 2.2, rng)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(1234);
    let network = backbone_topology(&mut rng)?;
    println!(
        "backbone: {} routers, {} links, total interference {:.2}",
        network.n(),
        network.m(),
        network.total_weight()
    );

    // Classical reference points.
    let optimal = maxcut::brute_force(&network);
    let greedy = maxcut::greedy(&network);
    let local = maxcut::local_search(&network, maxcut::random_cut(&network, &mut rng).side);
    println!("\nclassical solvers:");
    println!("  brute force (optimal): {:.3}", optimal.value);
    println!(
        "  greedy:                {:.3}  (AR {:.3})",
        greedy.value,
        maxcut::approximation_ratio(greedy.value, optimal.value)
    );
    println!(
        "  local search:          {:.3}  (AR {:.3})",
        local.value,
        maxcut::approximation_ratio(local.value, optimal.value)
    );

    // QAOA, warm-started from the fixed-angle table using the network's
    // dominant degree as the lookup key.
    let hamiltonian = MaxCutHamiltonian::new(&network);
    let dominant_degree = network
        .degrees()
        .iter()
        .copied()
        .max()
        .expect("non-empty graph")
        .clamp(3, 11);
    let warm = fixed_angle::fixed_angles(dominant_degree);
    let optimizer = NelderMead::new(150);
    let warm_outcome = warm_start::run(
        &hamiltonian,
        warm.params.clone(),
        InitStrategy::Predicted,
        &optimizer,
        &mut rng,
    );
    let cold_outcome = warm_start::run(
        &hamiltonian,
        Params::random(1, &mut rng),
        InitStrategy::Random,
        &optimizer,
        &mut rng,
    );

    println!("\nQAOA (p=1, 150 optimizer iterations):");
    println!(
        "  fixed-angle warm start: AR {:.3} -> {:.3} ({} evaluations)",
        warm_outcome.initial_ratio, warm_outcome.final_ratio, warm_outcome.evaluations
    );
    println!(
        "  random initialization:  AR {:.3} -> {:.3} ({} evaluations)",
        cold_outcome.initial_ratio, cold_outcome.final_ratio, cold_outcome.evaluations
    );
    let w95 = warm_outcome.iterations_to_fraction(0.95).unwrap_or(0);
    let c95 = cold_outcome.iterations_to_fraction(0.95).unwrap_or(0);
    println!("  iterations to 95% of final value: warm {w95} vs cold {c95}");
    Ok(())
}
