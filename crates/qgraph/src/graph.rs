
use crate::GraphError;

/// A weighted undirected edge with canonical endpoint order (`u < v`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
    /// Edge weight; `1.0` for the paper's unweighted dataset.
    pub weight: f64,
}

impl Edge {
    /// Creates an edge, canonicalizing the endpoint order.
    ///
    /// ```
    /// let e = qgraph::Edge::new(5, 2, 1.0);
    /// assert_eq!((e.u, e.v), (2, 5));
    /// ```
    pub fn new(a: usize, b: usize, weight: f64) -> Self {
        let (u, v) = if a <= b { (a, b) } else { (b, a) };
        Edge { u, v, weight }
    }
}

/// A simple undirected weighted graph.
///
/// Nodes are `0..n`. Self-loops and duplicate edges are rejected at
/// construction, so every `Graph` is guaranteed simple. The adjacency list is
/// precomputed for O(deg) neighbor iteration, which the GNN message-passing
/// and the analytic QAOA formulas rely on.
///
/// # Example
///
/// ```
/// use qgraph::Graph;
///
/// # fn main() -> Result<(), qgraph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.degree(1), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<(usize, f64)>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn empty(n: usize) -> Result<Self, GraphError> {
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        Ok(Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        })
    }

    /// Creates an unweighted graph (all weights `1.0`) from `(u, v)` pairs.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints, self-loops or duplicate edges.
    pub fn from_edges(n: usize, pairs: &[(usize, usize)]) -> Result<Self, GraphError> {
        let weighted: Vec<(usize, usize, f64)> =
            pairs.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_weighted_edges(n, &weighted)
    }

    /// Creates a weighted graph from `(u, v, weight)` triples.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints, self-loops, duplicate edges or
    /// non-finite weights.
    pub fn from_weighted_edges(
        n: usize,
        triples: &[(usize, usize, f64)],
    ) -> Result<Self, GraphError> {
        let mut g = Self::empty(n)?;
        for &(u, v, w) in triples {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Adds an edge with the given weight.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range endpoints, self-loops, duplicate edges or
    /// non-finite weights.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !weight.is_finite() {
            return Err(GraphError::InvalidWeight(weight));
        }
        if self.has_edge(u, v) {
            let e = Edge::new(u, v, weight);
            return Err(GraphError::DuplicateEdge(e.u, e.v));
        }
        let e = Edge::new(u, v, weight);
        self.adj[u].push((v, weight));
        self.adj[v].push((u, weight));
        self.edges.push(e);
        Ok(())
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge list in insertion order, endpoints canonicalized.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Neighbors of `v` with edge weights, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    pub fn neighbors(&self, v: usize) -> &[(usize, f64)] {
        &self.adj[v]
    }

    /// Degree (neighbor count) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.n()`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Degrees of all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.n).map(|v| self.degree(v)).collect()
    }

    /// Maximum degree over all nodes (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        self.degrees().into_iter().max().unwrap_or(0)
    }

    /// Whether the unordered pair `(u, v)` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.n || v >= self.n {
            return false;
        }
        self.adj[u].iter().any(|&(w, _)| w == v)
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: usize, v: usize) -> Option<f64> {
        if u >= self.n {
            return None;
        }
        self.adj[u].iter().find(|&&(w, _)| w == v).map(|&(_, w)| w)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// `true` when every edge has weight exactly `1.0`.
    pub fn is_unweighted(&self) -> bool {
        self.edges.iter().all(|e| e.weight == 1.0)
    }

    /// `true` when every node has the same degree `d`; returns `Some(d)`.
    pub fn regular_degree(&self) -> Option<usize> {
        let d = self.degree(0);
        if (1..self.n).all(|v| self.degree(v) == d) {
            Some(d)
        } else {
            None
        }
    }

    /// Number of triangles containing the edge `(u, v)`, i.e. common
    /// neighbors of `u` and `v`. Used by the analytic p=1 QAOA formula.
    pub fn common_neighbors(&self, u: usize, v: usize) -> usize {
        if u >= self.n || v >= self.n {
            return 0;
        }
        self.adj[u]
            .iter()
            .filter(|&&(w, _)| w != v && self.has_edge(w, v))
            .count()
    }

    /// `true` when the graph contains no triangle.
    pub fn is_triangle_free(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.common_neighbors(e.u, e.v) == 0)
    }

    /// `true` when the graph is connected (single node counts as connected).
    pub fn is_connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in &self.adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }

    /// Returns a copy with every edge weight replaced by `1.0`.
    pub fn to_unweighted(&self) -> Graph {
        let triples: Vec<(usize, usize, f64)> =
            self.edges.iter().map(|e| (e.u, e.v, 1.0)).collect();
        Graph::from_weighted_edges(self.n, &triples).expect("valid graph stays valid")
    }

    /// Returns a copy with nodes relabeled by the permutation `perm`, where
    /// node `v` becomes `perm[v]`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[usize]) -> Graph {
        assert_eq!(perm.len(), self.n, "permutation length must equal n");
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(p < self.n && !seen[p], "perm must be a permutation of 0..n");
            seen[p] = true;
        }
        let triples: Vec<(usize, usize, f64)> = self
            .edges
            .iter()
            .map(|e| (perm[e.u], perm[e.v], e.weight))
            .collect();
        Graph::from_weighted_edges(self.n, &triples).expect("relabeling preserves simplicity")
    }

    // ---- named structured constructors (used by tests and examples) ----

    /// Path graph `0 - 1 - ... - (n-1)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn path(n: usize) -> Result<Self, GraphError> {
        let pairs: Vec<(usize, usize)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        Self::from_edges(n, &pairs)
    }

    /// Cycle graph on `n >= 3` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidDimension`] if `n < 3`.
    pub fn cycle(n: usize) -> Result<Self, GraphError> {
        if n < 3 {
            return Err(GraphError::InvalidDimension(format!(
                "cycle needs at least 3 nodes, got {n}"
            )));
        }
        let pairs: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Self::from_edges(n, &pairs)
    }

    /// Complete graph on `n` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn complete(n: usize) -> Result<Self, GraphError> {
        let mut pairs = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
        for u in 0..n {
            for v in (u + 1)..n {
                pairs.push((u, v));
            }
        }
        Self::from_edges(n, &pairs)
    }

    /// Star graph: node 0 connected to nodes `1..n`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn star(n: usize) -> Result<Self, GraphError> {
        let pairs: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        Self::from_edges(n, &pairs)
    }

    /// Complete bipartite graph `K_{a,b}` with parts `0..a` and `a..a+b`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidDimension`] if either part is empty.
    pub fn complete_bipartite(a: usize, b: usize) -> Result<Self, GraphError> {
        if a == 0 || b == 0 {
            return Err(GraphError::InvalidDimension(format!(
                "complete bipartite parts must be non-empty, got ({a}, {b})"
            )));
        }
        let mut pairs = Vec::with_capacity(a * b);
        for u in 0..a {
            for v in a..(a + b) {
                pairs.push((u, v));
            }
        }
        Self::from_edges(a + b, &pairs)
    }

    /// `rows x cols` grid graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidDimension`] if either side is zero.
    pub fn grid(rows: usize, cols: usize) -> Result<Self, GraphError> {
        if rows == 0 || cols == 0 {
            return Err(GraphError::InvalidDimension(format!(
                "grid sides must be positive, got ({rows}, {cols})"
            )));
        }
        let id = |r: usize, c: usize| r * cols + c;
        let mut pairs = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    pairs.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    pairs.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Self::from_edges(rows * cols, &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(4).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.is_connected());
    }

    #[test]
    fn zero_nodes_rejected() {
        assert_eq!(Graph::empty(0), Err(GraphError::EmptyGraph));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::empty(2).unwrap();
        assert_eq!(g.add_edge(1, 1, 1.0), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn duplicate_edge_rejected_regardless_of_order() {
        let mut g = Graph::empty(3).unwrap();
        g.add_edge(0, 1, 1.0).unwrap();
        assert_eq!(g.add_edge(1, 0, 2.0), Err(GraphError::DuplicateEdge(0, 1)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = Graph::empty(3).unwrap();
        assert_eq!(
            g.add_edge(0, 3, 1.0),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
    }

    #[test]
    fn non_finite_weight_rejected() {
        let mut g = Graph::empty(2).unwrap();
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidWeight(_))
        ));
    }

    #[test]
    fn edge_canonicalizes_order() {
        let g = Graph::from_edges(3, &[(2, 0)]).unwrap();
        assert_eq!(g.edges()[0].u, 0);
        assert_eq!(g.edges()[0].v, 2);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.degrees(), vec![3, 1, 1, 1]);
        assert_eq!(g.max_degree(), 3);
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn edge_weight_lookup() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.5)]).unwrap();
        assert_eq!(g.edge_weight(1, 0), Some(2.5));
        assert_eq!(g.edge_weight(1, 2), None);
        assert_eq!(g.edge_weight(9, 0), None);
        assert!(!g.is_unweighted());
        assert!(g.to_unweighted().is_unweighted());
    }

    #[test]
    fn total_weight_sums_edges() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.0), (1, 2, 0.5)]).unwrap();
        assert!((g.total_weight() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_counting() {
        let g = Graph::complete(3).unwrap();
        assert_eq!(g.common_neighbors(0, 1), 1);
        assert!(!g.is_triangle_free());
        let h = Graph::cycle(4).unwrap();
        assert!(h.is_triangle_free());
        assert_eq!(h.common_neighbors(0, 1), 0);
    }

    #[test]
    fn connectivity() {
        assert!(Graph::path(5).unwrap().is_connected());
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert!(Graph::empty(1).unwrap().is_connected());
    }

    #[test]
    fn regular_degree_detection() {
        assert_eq!(Graph::cycle(5).unwrap().regular_degree(), Some(2));
        assert_eq!(Graph::complete(4).unwrap().regular_degree(), Some(3));
        assert_eq!(Graph::star(4).unwrap().regular_degree(), None);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = Graph::path(3).unwrap(); // 0-1-2
        let h = g.relabel(&[2, 0, 1]); // node v -> perm[v]
        assert!(h.has_edge(2, 0)); // old (0,1)
        assert!(h.has_edge(0, 1)); // old (1,2)
        assert_eq!(h.m(), 2);
        assert_eq!(h.degree(0), 2); // old node 1
    }

    #[test]
    #[should_panic(expected = "perm must be a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Graph::path(3).unwrap();
        let _ = g.relabel(&[0, 0, 1]);
    }

    #[test]
    fn structured_constructors() {
        assert_eq!(Graph::path(1).unwrap().m(), 0);
        assert_eq!(Graph::path(4).unwrap().m(), 3);
        assert_eq!(Graph::cycle(6).unwrap().m(), 6);
        assert!(Graph::cycle(2).is_err());
        assert_eq!(Graph::complete(5).unwrap().m(), 10);
        assert_eq!(Graph::star(6).unwrap().degree(0), 5);
        let kb = Graph::complete_bipartite(2, 3).unwrap();
        assert_eq!(kb.m(), 6);
        assert!(Graph::complete_bipartite(0, 3).is_err());
        let grid = Graph::grid(2, 3).unwrap();
        assert_eq!(grid.n(), 6);
        assert_eq!(grid.m(), 7);
        assert!(Graph::grid(0, 2).is_err());
    }

    #[test]
    fn graph_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Graph>();
    }
}
