//! Guarded inference from a saved run artifact: train once, serve forever.
//!
//! ```text
//! # First run: trains a quick model and saves the artifact.
//! cargo run --release --example predict_from_artifact
//! # Later runs: load the artifact and serve without retraining.
//! cargo run --release --example predict_from_artifact
//! # Point at an artifact saved by the experiment binaries:
//! QAOA_GNN_ARTIFACT=runs/fig5.gcn.json cargo run --release --example predict_from_artifact
//! # Watch the degradation ladder catch an injected model failure:
//! QAOA_GNN_FAULTS=forward=nan:1 cargo run --release --example predict_from_artifact
//! ```
//!
//! Demonstrates the deployment story behind [`qaoa_gnn::GuardedPredictor`]:
//! the artifact bundles weights (bit-exact), configuration, history and the
//! training envelope, and the serving layer wraps every request in strict
//! validation, envelope checks and a degradation ladder. Each row below
//! prints the full [`qaoa_gnn::PredictionOutcome`] — which rung answered
//! and why any rung was skipped — so a degraded prediction is always
//! visibly degraded, never a silent fallback.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::TrainConfig;
use gnn::GnnKind;
use qaoa::{MaxCutHamiltonian, QaoaCircuit};
use qaoa_gnn::dataset::LabelConfig;
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::serve::ServeRequest;
use qaoa_gnn::{GuardedPredictor, RequestError, ServeConfig};
use qgraph::generate::DatasetSpec;
use qgraph::Graph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::var("QAOA_GNN_ARTIFACT")
        .ok()
        .filter(|p| !p.trim().is_empty())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("qaoa_gnn_example_artifact.json"));

    if !path.exists() {
        println!("no artifact at {} — training one (quick config)...", path.display());
        let config = PipelineConfig::paper_scale()
            .with_dataset(DatasetSpec::with_count(60))
            .with_training(TrainConfig::quick(15))
            .with_test_size(12)
            .with_artifact_path(Some(path.clone()));
        let config = PipelineConfig {
            labeling: LabelConfig::quick(60),
            ..config
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        Pipeline::run(GnnKind::Gcn, &config, &mut rng);
        println!("saved artifact to {}", path.display());
    }

    let served = GuardedPredictor::load(&path, ServeConfig::default())?;
    let artifact = served.artifact();
    println!(
        "loaded {} artifact: {} parameters, {} training epochs, dataset fingerprint {:#018x}",
        artifact.kind(),
        artifact.weights.num_parameters(),
        artifact.history.epochs.len(),
        artifact.dataset_fingerprint,
    );
    match served.envelope() {
        Some(env) => println!(
            "training envelope: {}–{} nodes, max degree {}, mean label (γ̄={:.3}, β̄={:.3})",
            env.min_nodes, env.max_nodes, env.max_degree, env.mean_gamma, env.mean_beta
        ),
        None => println!("training envelope: none (pre-envelope artifact; serving says so)"),
    }

    let mut rng = StdRng::seed_from_u64(1);
    let mut instances = vec![
        ("cycle(10)".to_string(), Graph::cycle(10)?),
        ("complete(7)".to_string(), Graph::complete(7)?),
        ("star(9)".to_string(), Graph::star(9)?),
        // Out-of-envelope on the quick config: watch the ladder degrade.
        ("cycle(30)".to_string(), Graph::cycle(30)?),
    ];
    for i in 0..3 {
        let g = qgraph::generate::erdos_renyi(8 + i, 0.5, &mut rng)?;
        instances.push((format!("erdos_renyi(n={})", g.n()), g));
    }

    println!("\n{:<22} {:>12} {:>8}  outcome", "graph", "E[cut]", "ratio");
    for (name, g) in &instances {
        // One typed entry point for every payload shape; `ServeRequest`
        // also carries per-request deadline/priority/rung-floor policy for
        // the concurrent loop (`qaoa_gnn::ServeLoop`).
        match served.handle(&ServeRequest::from_graph(g.clone())).result {
            Ok(outcome) if g.n() <= 16 => {
                let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(g));
                let expectation = circuit.expectation(&outcome.params);
                let optimal = circuit.hamiltonian().optimal_value();
                println!(
                    "{name:<22} {expectation:>12.4} {:>8.3}  {}",
                    expectation / optimal,
                    outcome.summary()
                );
            }
            // Too large to simulate here; the outcome still tells the story.
            Ok(outcome) => println!("{name:<22} {:>12} {:>8}  {}", "-", "-", outcome.summary()),
            Err(e) => println!("{name:<22} {:>12} {:>8}  rejected: {e}", "-", "-"),
        }
    }

    // Hostile requests never reach the model: typed, line-numbered errors.
    match served.handle(&ServeRequest::from_text("n 3\ne 0 1 inf\n")).result {
        Err(RequestError::Parse(e)) => println!("\nhostile text rejected: {e}"),
        other => println!("\nunexpected: {other:?}"),
    }
    println!("(clean gnn outcomes are bit-identical across processes — see tests/serve_degradation.rs)");
    Ok(())
}
