//! The throughput layer: a concurrent request loop over [`GuardedPredictor`].
//!
//! [`crate::serve`] makes one request safe; this module makes millions of
//! them concurrent. A [`ServeLoop`] owns a small pool of worker threads
//! fed from one bounded queue, and layers three mechanisms on top of the
//! degradation ladder:
//!
//! **Batched admission.** [`ServeLoop::submit`] enqueues a typed
//! [`ServeRequest`] and returns a [`Ticket`] immediately; workers drain
//! the queue in batches of [`LoopConfig::batch_size`], taking the queue
//! lock once per batch rather than once per request and resolving the
//! current artifact generation once per batch rather than once per
//! request. Exactly one [`Completed`] reply exists per submitted request
//! — the loop structurally cannot drop work, because workers refuse to
//! exit while the queue is non-empty (even during shutdown).
//!
//! **Lock-free artifact hot-swap.** The active model is published through
//! a [`qpool::swap::SwapCell`] as a `(generation, artifact)` pair.
//! [`ServeLoop::swap_artifact`] validates a retrained [`RunArtifact`]
//! (behind the `hot_swap` failpoint — a rejected or panicking swap leaves
//! the old generation serving untouched) and swaps it in atomically:
//! in-flight requests keep the `Arc` they already loaded, later batches
//! observe the new generation and rebuild their worker-local predictor
//! from the shared weight image. Readers never block on writers and vice
//! versa; the memory-ordering argument lives in `qpool::swap` and is
//! summarized in DESIGN.md §"Serving at throughput". Worker-local
//! rebuilds are necessary, not an optimization: the autodiff tape inside
//! [`gnn::GnnModel`] is single-threaded (`Rc<RefCell<…>>`), so threads
//! share artifact *bytes* and each own their *model*.
//!
//! **Load shedding.** The queue is bounded by [`LoopConfig::queue_capacity`]
//! and never grows past it. Between [`LoopConfig::shed_watermark`] and
//! capacity, newly admitted [`Priority::Normal`] requests are marked to
//! shed — served from the fixed-angle rung, recorded as
//! [`crate::serve::SkipReason::Shed`] — while [`Priority::High`] requests
//! keep the full ladder. At capacity, *every* new request sheds inline on
//! the caller's own thread ([`Ticket::Ready`]), which simultaneously
//! bounds memory and applies backpressure. A request whose
//! [`ServeRequest::deadline_micros`] expires while queued sheds at
//! execution time rather than being served late at full quality. Shed
//! answers are still real answers off the ladder — degraded, accounted,
//! never dropped.
//!
//! ```no_run
//! use qaoa_gnn::serve_loop::{LoopConfig, ServeLoop};
//! use qaoa_gnn::serve::ServeRequest;
//! use qaoa_gnn::store::RunArtifact;
//!
//! let artifact = RunArtifact::load("run.artifact.json")?;
//! let serve = ServeLoop::new(artifact, LoopConfig::default());
//! let ticket = serve.submit(ServeRequest::from_text("n 3\ne 0 1\ne 1 2\ne 0 2\n"));
//! let done = ticket.wait();
//! println!("gen {}: {:?}", done.generation, done.response.result);
//! # Ok::<(), qaoa_gnn::store::ArtifactError>(())
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

use qpool::swap::SwapCell;

use crate::faults;
use crate::serve::{
    shed_response, GuardedPredictor, Priority, RequestError, ServeConfig, ServeRequest,
    ServeResponse,
};
use crate::store::RunArtifact;

/// Sizing and policy for a [`ServeLoop`]. Same builder + env-override
/// treatment as [`crate::pipeline::PipelineConfig`].
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Worker threads draining the queue. `0` resolves to
    /// "available parallelism − 1" (leaving the submitting thread a core),
    /// floored at 1.
    pub workers: usize,
    /// Hard queue bound: at this depth new requests shed inline on the
    /// caller thread instead of enqueueing. Memory is bounded by
    /// construction.
    pub queue_capacity: usize,
    /// Soft bound: at this depth newly admitted [`Priority::Normal`]
    /// requests are marked to shed. Clamped to `queue_capacity`.
    pub shed_watermark: usize,
    /// Jobs a worker claims per queue-lock acquisition (also the grain at
    /// which workers re-resolve the published artifact generation).
    pub batch_size: usize,
    /// Per-request serving policy handed to every worker's predictor.
    pub serve: ServeConfig,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            workers: 0,
            queue_capacity: 1024,
            shed_watermark: 768,
            batch_size: 32,
            serve: ServeConfig::default(),
        }
    }
}

impl LoopConfig {
    /// [`Default::default`] with environment overrides:
    /// `QAOA_GNN_SERVE_WORKERS`, `QAOA_GNN_SERVE_QUEUE` (capacity),
    /// `QAOA_GNN_SERVE_SHED` (watermark), `QAOA_GNN_SERVE_BATCH`, plus
    /// everything [`ServeConfig::from_env`] reads.
    pub fn from_env() -> Self {
        let mut config = LoopConfig {
            serve: ServeConfig::from_env(),
            ..LoopConfig::default()
        };
        let parse = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        if let Some(workers) = parse("QAOA_GNN_SERVE_WORKERS") {
            config.workers = workers;
        }
        if let Some(capacity) = parse("QAOA_GNN_SERVE_QUEUE") {
            config.queue_capacity = capacity;
        }
        if let Some(watermark) = parse("QAOA_GNN_SERVE_SHED") {
            config.shed_watermark = watermark;
        }
        if let Some(batch) = parse("QAOA_GNN_SERVE_BATCH") {
            config.batch_size = batch;
        }
        config
    }

    /// Builder-style: sets the worker-thread count (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style: sets the hard queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Builder-style: sets the shed watermark.
    pub fn with_shed_watermark(mut self, shed_watermark: usize) -> Self {
        self.shed_watermark = shed_watermark;
        self
    }

    /// Builder-style: sets the per-worker batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style: sets the per-request serving policy.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(1))
            .unwrap_or(1)
            .max(1)
    }
}

/// What the [`SwapCell`] publishes: one artifact generation. Workers
/// compare `generation` against their cached predictor's and rebuild on
/// mismatch; the artifact bytes themselves are shared, never copied.
struct Published {
    generation: u64,
    artifact: Arc<RunArtifact>,
    serve: ServeConfig,
}

/// One finished request: the response plus its serving provenance.
#[derive(Debug)]
pub struct Completed {
    /// The typed response (outcome or typed rejection — never absent).
    pub response: ServeResponse,
    /// Time the request spent queued before a worker picked it up
    /// (0 for inline-shed admissions).
    pub queued_micros: u64,
    /// The artifact generation that answered (0-based; bumped by every
    /// successful [`ServeLoop::swap_artifact`]).
    pub generation: u64,
}

/// The receipt for a submitted request.
#[derive(Debug)]
pub enum Ticket {
    /// Resolved synchronously at admission (inline shed at hard capacity,
    /// or an admission-failpoint refusal).
    Ready(Completed),
    /// In flight; resolve with [`Ticket::wait`].
    Pending(mpsc::Receiver<Completed>),
}

impl Ticket {
    /// Blocks until the reply arrives. Cannot hang on a live loop: workers
    /// drain every queued job before exiting, even at shutdown, so every
    /// pending ticket is answered.
    pub fn wait(self) -> Completed {
        match self {
            Ticket::Ready(completed) => completed,
            Ticket::Pending(rx) => rx
                .recv()
                .expect("serving loop dropped a request without replying — this is a bug"),
        }
    }
}

/// Monotonic counters describing a loop's traffic so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopStats {
    /// Requests answered by the full ladder (outcome, not shed).
    pub served: u64,
    /// Requests answered via the shed path (watermark, capacity, or
    /// deadline).
    pub shed: u64,
    /// Requests answered with a typed [`RequestError`].
    pub rejected: u64,
    /// Successful artifact hot-swaps.
    pub swaps: u64,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
    /// Currently published artifact generation.
    pub generation: u64,
}

impl LoopStats {
    /// Total requests answered (served + shed + rejected). Equals the
    /// number of submissions once all tickets resolve — nothing is
    /// dropped.
    pub fn total(&self) -> u64 {
        self.served + self.shed + self.rejected
    }
}

/// A queued request: what to run, how (full ladder or shed at a recorded
/// depth), and where the reply goes.
struct Job {
    request: ServeRequest,
    /// `Some(depth)` = shed (decided at admission); the depth feeds
    /// `SkipReason::Shed`.
    shed: Option<usize>,
    enqueued: Instant,
    reply: mpsc::Sender<Completed>,
}

struct Shared {
    cell: SwapCell<Published>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    depth: AtomicUsize,
    shutdown: AtomicBool,
    generation: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    swaps: AtomicU64,
    max_depth: AtomicUsize,
    batch_size: usize,
}

impl Shared {
    fn record(&self, response: &ServeResponse) {
        match &response.result {
            Ok(outcome) if outcome.was_shed() => self.shed.fetch_add(1, SeqCst),
            Ok(_) => self.served.fetch_add(1, SeqCst),
            Err(_) => self.rejected.fetch_add(1, SeqCst),
        };
    }
}

/// The concurrent serving loop. See the module docs for the protocol;
/// see `tests/serve_loop.rs` and `bench serve_load` for it under fire.
pub struct ServeLoop {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    queue_capacity: usize,
    shed_watermark: usize,
}

/// Why [`ServeLoop::swap_artifact`] refused to publish a new artifact.
/// Either way the previous generation keeps serving, untouched.
#[derive(Debug)]
pub enum SwapError {
    /// The incoming artifact failed pre-publication validation (its model
    /// would not rebuild), or the `hot_swap` failpoint injected an error.
    Rejected(String),
    /// Validation panicked; the panic was contained at the swap boundary.
    Panicked(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Rejected(e) => write!(f, "hot-swap rejected: {e}"),
            SwapError::Panicked(e) => write!(f, "hot-swap panicked (contained): {e}"),
        }
    }
}

impl std::error::Error for SwapError {}

impl ServeLoop {
    /// Starts the worker pool serving `artifact` under `config`'s policy.
    pub fn new(artifact: RunArtifact, config: LoopConfig) -> ServeLoop {
        let queue_capacity = config.queue_capacity.max(1);
        let shed_watermark = config.shed_watermark.min(queue_capacity);
        let shared = Arc::new(Shared {
            cell: SwapCell::new(Published {
                generation: 0,
                artifact: Arc::new(artifact),
                serve: config.serve.clone(),
            }),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            max_depth: AtomicUsize::new(0),
            batch_size: config.batch_size.max(1),
        });
        let workers = (0..config.resolved_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeLoop {
            shared,
            workers,
            queue_capacity,
            shed_watermark,
        }
    }

    /// [`Self::new`] on an artifact loaded (and fully validated) from disk.
    pub fn load<P: AsRef<std::path::Path>>(
        path: P,
        config: LoopConfig,
    ) -> Result<ServeLoop, crate::store::ArtifactError> {
        Ok(ServeLoop::new(RunArtifact::load(path)?, config))
    }

    /// Admits one request and returns its receipt immediately. Exactly one
    /// [`Completed`] will exist for it:
    ///
    /// * queue below the watermark — enqueued for the full ladder;
    /// * watermark ≤ depth < capacity — [`Priority::Normal`] enqueued
    ///   marked to shed, [`Priority::High`] keeps the full ladder;
    /// * depth at capacity — shed *inline* on the caller thread
    ///   ([`Ticket::Ready`]); the queue never grows past its bound;
    /// * `admission` failpoint armed — refused with
    ///   [`RequestError::Admission`] (a contained panic reports the same
    ///   way). Healthy saturation sheds; it never refuses.
    pub fn submit(&self, request: ServeRequest) -> Ticket {
        match catch_unwind(AssertUnwindSafe(|| {
            faults::fire_may_panic(faults::ADMISSION)
        })) {
            Ok(None) => {}
            Ok(Some(_)) => return self.refuse("fault injected: admission"),
            Err(payload) => {
                let msg = crate::serve::panic_message(&payload);
                return self.refuse(&format!("admission panicked (contained): {msg}"));
            }
        }

        // Reserve a slot; if the queue is hard-full, give the slot back and
        // answer from the shed ladder right here on the caller thread —
        // bounded memory and backpressure in one move.
        let depth = self.shared.depth.fetch_add(1, SeqCst);
        if depth >= self.queue_capacity {
            self.shared.depth.fetch_sub(1, SeqCst);
            let published = self.shared.cell.load();
            let response = shed_response(
                &published.serve,
                published.artifact.envelope.as_ref(),
                &request,
                depth,
            );
            self.shared.record(&response);
            return Ticket::Ready(Completed {
                response,
                queued_micros: 0,
                generation: published.generation,
            });
        }
        self.shared.max_depth.fetch_max(depth + 1, SeqCst);
        let shed = (depth >= self.shed_watermark && request.priority == Priority::Normal)
            .then_some(depth);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            request,
            shed,
            enqueued: Instant::now(),
            reply: tx,
        };
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(job);
        self.shared.available.notify_one();
        Ticket::Pending(rx)
    }

    /// [`Self::submit`] + [`Ticket::wait`]: the synchronous convenience
    /// path.
    pub fn handle_wait(&self, request: ServeRequest) -> Completed {
        self.submit(request).wait()
    }

    /// Atomically publishes a retrained artifact to all workers,
    /// mid-traffic, and returns the new generation number.
    ///
    /// The artifact is validated *before* publication (its model must
    /// rebuild — behind the `hot_swap` failpoint), so a broken artifact
    /// never reaches a worker: on any [`SwapError`] the previous
    /// generation keeps serving as if the call never happened. In-flight
    /// requests finish on whichever generation they loaded; there is no
    /// torn state in between (see `qpool::swap` for the proof sketch).
    pub fn swap_artifact(&self, artifact: RunArtifact) -> Result<u64, SwapError> {
        let validated = catch_unwind(AssertUnwindSafe(|| {
            if faults::fire_may_panic(faults::HOT_SWAP).is_some() {
                return Err(SwapError::Rejected("fault injected: hot_swap".to_string()));
            }
            artifact
                .build_model()
                .map_err(|e| SwapError::Rejected(e.to_string()))?;
            Ok(artifact)
        }));
        let artifact = match validated {
            Ok(Ok(artifact)) => artifact,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(SwapError::Panicked(crate::serve::panic_message(&payload)))
            }
        };
        let generation = self.shared.generation.fetch_add(1, SeqCst) + 1;
        self.shared.cell.swap(Published {
            generation,
            artifact: Arc::new(artifact),
            serve: self.shared.cell.load().serve.clone(),
        });
        self.shared.swaps.fetch_add(1, SeqCst);
        Ok(generation)
    }

    /// Current traffic counters.
    pub fn stats(&self) -> LoopStats {
        LoopStats {
            served: self.shared.served.load(SeqCst),
            shed: self.shared.shed.load(SeqCst),
            rejected: self.shared.rejected.load(SeqCst),
            swaps: self.shared.swaps.load(SeqCst),
            max_depth: self.shared.max_depth.load(SeqCst),
            generation: self.shared.generation.load(SeqCst),
        }
    }

    /// Current queue depth (queued, not yet claimed by a worker).
    pub fn depth(&self) -> usize {
        self.shared.depth.load(SeqCst)
    }

    /// The currently published artifact generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(SeqCst)
    }

    fn refuse(&self, message: &str) -> Ticket {
        let response = ServeResponse {
            result: Err(RequestError::Admission(message.to_string())),
        };
        self.shared.record(&response);
        Ticket::Ready(Completed {
            response,
            queued_micros: 0,
            generation: self.shared.generation.load(SeqCst),
        })
    }
}

impl Drop for ServeLoop {
    /// Graceful shutdown: workers drain every queued job (answering each
    /// ticket) before exiting. Zero drops, by construction.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One worker: claim a batch under the lock, resolve the published
/// generation once, serve the batch lock-free, repeat. Exits only when
/// shut down *and* the queue is empty.
fn worker_loop(shared: &Shared) {
    let mut cached: Option<(u64, GuardedPredictor)> = None;
    let mut batch = Vec::with_capacity(shared.batch_size);
    loop {
        {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
            while batch.len() < shared.batch_size {
                match queue.pop_front() {
                    Some(job) => batch.push(job),
                    None => break,
                }
            }
        }

        let published = shared.cell.load();
        let stale = match &cached {
            Some((generation, _)) => *generation != published.generation,
            None => true,
        };
        if stale {
            // Rebuild this worker's private model from the shared weight
            // image. GuardedPredictor::shared never panics (construction
            // is itself guarded), and a failed rebuild still serves — one
            // rung down, accounted per request.
            cached = Some((
                published.generation,
                GuardedPredictor::shared(Arc::clone(&published.artifact), published.serve.clone()),
            ));
        }
        let (generation, predictor) = cached.as_ref().expect("predictor cached above");

        for job in batch.drain(..) {
            shared.depth.fetch_sub(1, SeqCst);
            let queued_micros = job.enqueued.elapsed().as_micros() as u64;
            // A deadline that expired while queued sheds now: a fast
            // degraded answer beats a late full-quality one.
            let shed = job.shed.or_else(|| {
                job.request
                    .deadline_micros
                    .is_some_and(|d| queued_micros > d)
                    .then(|| shared.depth.load(SeqCst))
            });
            let response = catch_unwind(AssertUnwindSafe(|| match shed {
                Some(at_depth) => predictor.handle_shed(&job.request, at_depth),
                None => predictor.handle(&job.request),
            }))
            .unwrap_or_else(|payload| ServeResponse {
                result: Err(RequestError::Internal(crate::serve::panic_message(&payload))),
            });
            shared.record(&response);
            // A dropped receiver (caller gave up on the ticket) is fine;
            // the request was still served and counted.
            let _ = job.reply.send(Completed {
                response,
                queued_micros,
                generation: *generation,
            });
        }
    }
}
