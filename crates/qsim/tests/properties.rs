//! Property-based tests for the state-vector simulator.

use qcheck::{prop_assert, properties, vec};

use qsim::diagonal::DiagonalOperator;
use qsim::{gates, Complex, StateVector};

/// Builds a pseudo-random (but deterministic) non-trivial state by applying a
/// short layer of parameterized gates to the uniform superposition.
fn scrambled_state(num_qubits: usize, angles: &[f64]) -> StateVector {
    let mut psi = StateVector::uniform_superposition(num_qubits);
    for (i, &a) in angles.iter().enumerate() {
        let q = i % num_qubits;
        match i % 3 {
            0 => gates::rx(&mut psi, q, a),
            1 => gates::rz(&mut psi, q, a),
            _ => gates::ry(&mut psi, q, a),
        }
    }
    psi
}

properties! {
    fn all_gates_preserve_norm(
        n in 1usize..7,
        angles in vec(-6.3f64..6.3, 1usize..12),
    ) {
        let psi = scrambled_state(n, &angles);
        prop_assert!((psi.norm() - 1.0).abs() < 1e-10);
    }

    fn h_is_self_inverse(
        n in 1usize..6,
        q_raw in 0usize..6,
        angles in vec(-3.0f64..3.0, 1usize..6),
    ) {
        let q = q_raw % n;
        let mut psi = scrambled_state(n, &angles);
        let before = psi.clone();
        gates::h(&mut psi, q);
        gates::h(&mut psi, q);
        prop_assert!((psi.fidelity(&before) - 1.0).abs() < 1e-10);
    }

    fn x_is_self_inverse(
        n in 1usize..6,
        q_raw in 0usize..6,
        angles in vec(-3.0f64..3.0, 1usize..6),
    ) {
        let q = q_raw % n;
        let mut psi = scrambled_state(n, &angles);
        let before = psi.clone();
        gates::x(&mut psi, q);
        gates::x(&mut psi, q);
        prop_assert!((psi.fidelity(&before) - 1.0).abs() < 1e-10);
    }

    fn rotation_by_zero_is_identity(
        n in 1usize..6,
        q_raw in 0usize..6,
        angles in vec(-3.0f64..3.0, 1usize..6),
    ) {
        let q = q_raw % n;
        let mut psi = scrambled_state(n, &angles);
        let before = psi.clone();
        gates::rx(&mut psi, q, 0.0);
        gates::ry(&mut psi, q, 0.0);
        gates::rz(&mut psi, q, 0.0);
        prop_assert!((psi.fidelity(&before) - 1.0).abs() < 1e-10);
    }

    fn rx_angles_compose(
        n in 1usize..5,
        q_raw in 0usize..5,
        a in -3.0f64..3.0,
        b in -3.0f64..3.0,
    ) {
        let q = q_raw % n;
        let mut lhs = StateVector::uniform_superposition(n);
        let mut rhs = lhs.clone();
        gates::rx(&mut lhs, q, a);
        gates::rx(&mut lhs, q, b);
        gates::rx(&mut rhs, q, a + b);
        prop_assert!((lhs.fidelity(&rhs) - 1.0).abs() < 1e-10);
    }

    fn probabilities_sum_to_one(
        n in 1usize..7,
        angles in vec(-6.3f64..6.3, 1usize..12),
    ) {
        let psi = scrambled_state(n, &angles);
        let total: f64 = psi.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-10);
    }

    fn diagonal_phase_preserves_expectation(
        n in 1usize..6,
        theta in -6.3f64..6.3,
        angles in vec(-3.0f64..3.0, 1usize..8),
    ) {
        // e^{-iθD} commutes with D, so ⟨D⟩ is invariant.
        let op = DiagonalOperator::from_fn(n, |z| z.count_ones() as f64);
        let mut psi = scrambled_state(n, &angles);
        let before = op.expectation(&psi);
        op.apply_phase(&mut psi, theta);
        prop_assert!((op.expectation(&psi) - before).abs() < 1e-9);
    }

    fn expectation_within_operator_bounds(
        n in 1usize..6,
        angles in vec(-3.0f64..3.0, 1usize..8),
    ) {
        let op = DiagonalOperator::from_fn(n, |z| (z as f64).sin() * 3.0);
        let psi = scrambled_state(n, &angles);
        let e = op.expectation(&psi);
        prop_assert!(e >= op.min_value() - 1e-9);
        prop_assert!(e <= op.max_value() + 1e-9);
    }

    fn inner_product_is_conjugate_symmetric(
        n in 1usize..5,
        a1 in vec(-3.0f64..3.0, 1usize..6),
        a2 in vec(-3.0f64..3.0, 1usize..6),
    ) {
        let x = scrambled_state(n, &a1);
        let y = scrambled_state(n, &a2);
        let xy = x.inner_product(&y);
        let yx = y.inner_product(&x);
        prop_assert!((xy - yx.conj()).norm() < 1e-10);
    }

    fn cauchy_schwarz_fidelity(
        n in 1usize..5,
        a1 in vec(-3.0f64..3.0, 1usize..6),
        a2 in vec(-3.0f64..3.0, 1usize..6),
    ) {
        let x = scrambled_state(n, &a1);
        let y = scrambled_state(n, &a2);
        let f = x.fidelity(&y);
        prop_assert!((-1e-10..=1.0 + 1e-10).contains(&f));
    }

    fn complex_field_axioms(
        ar in -10.0f64..10.0, ai in -10.0f64..10.0,
        br in -10.0f64..10.0, bi in -10.0f64..10.0,
        cr in -10.0f64..10.0, ci in -10.0f64..10.0,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        let c = Complex::new(cr, ci);
        prop_assert!(((a * b) * c - a * (b * c)).norm() < 1e-9);
        prop_assert!((a * (b + c) - (a * b + a * c)).norm() < 1e-9);
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).norm() < 1e-9);
        prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-9);
    }
}
