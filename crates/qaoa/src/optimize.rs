//! Classical outer-loop optimizers for the QAOA objective.
//!
//! The paper's labeling loop "starts with randomly initialized values of γ
//! and β, and then undergoes a process of optimization over 500 iterations"
//! (§3.1). Every optimizer here maximizes a black-box objective
//! `f: R^k → R` under a fixed evaluation budget and records the best value
//! after each iteration, which is what the warm-start comparisons plot.
//!
//! * [`NelderMead`] — derivative-free simplex search; the default labeler.
//! * [`Spsa`] — simultaneous-perturbation stochastic approximation, the
//!   optimizer commonly used on real NISQ hardware (two evaluations per
//!   iteration regardless of dimension).
//! * [`FiniteDiffAdam`] — central-difference gradients fed into Adam.
//! * [`GridSearch`] — exhaustive p=1 baseline over the periodic domain.

use qrand::Rng;

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationResult {
    /// Best parameter vector found.
    pub best_point: Vec<f64>,
    /// Objective value at [`Self::best_point`].
    pub best_value: f64,
    /// Best-so-far objective value after each iteration (monotone
    /// non-decreasing). Length equals the number of iterations performed.
    pub history: Vec<f64>,
    /// Total number of objective evaluations used.
    pub evaluations: usize,
    /// Number of evaluations that returned a non-finite value (NaN or ±∞).
    /// Non-zero means the objective diverged somewhere along the trace;
    /// [`Self::diverged`] tells whether the *result* is still usable.
    pub non_finite_evals: usize,
}

impl OptimizationResult {
    /// `true` when the run never recovered a finite best value — every
    /// candidate the optimizer kept was NaN or infinite. Callers should
    /// discard such results (the labeler records them as failures).
    pub fn diverged(&self) -> bool {
        !self.best_value.is_finite()
    }
}

/// `true` when `candidate` is a usable improvement over `best`: finite, and
/// either strictly better or replacing a non-finite incumbent. This is the
/// single comparison every optimizer here uses to track its best point, so
/// a NaN-returning objective can never be propagated as "best".
fn improves(candidate: f64, best: f64) -> bool {
    candidate.is_finite() && (!best.is_finite() || candidate > best)
}

/// Descending total-order comparison for objective values where any
/// non-finite value ranks strictly below every finite one (NaN and -∞ tie
/// for last). Replaces the `partial_cmp().expect()` that used to panic the
/// whole labeling batch on the first NaN.
fn cmp_desc(a: f64, b: f64) -> std::cmp::Ordering {
    let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
    key(b).total_cmp(&key(a))
}

impl OptimizationResult {
    /// Number of iterations needed to first reach
    /// `fraction * best_value` (counting from 1), or `None` if the history
    /// is empty. Used for the convergence-speed comparisons.
    pub fn iterations_to_fraction(&self, fraction: f64) -> Option<usize> {
        let target = self.best_value * fraction;
        self.history
            .iter()
            .position(|&v| v >= target)
            .map(|i| i + 1)
    }
}

/// A maximizer of black-box objectives under an iteration budget.
///
/// Implementations are deterministic given the supplied RNG, making dataset
/// labeling reproducible.
pub trait Maximizer {
    /// Maximizes `objective` starting from `start`, spending at most the
    /// optimizer's configured iteration budget.
    fn maximize<F, R>(&self, objective: F, start: &[f64], rng: &mut R) -> OptimizationResult
    where
        F: FnMut(&[f64]) -> f64,
        R: Rng + ?Sized;
}

// ---------------------------------------------------------------------------
// Nelder–Mead
// ---------------------------------------------------------------------------

/// Derivative-free Nelder–Mead simplex search (maximizing).
///
/// One "iteration" is one simplex transformation, which costs 1–2 objective
/// evaluations (plus `k+1` for the initial simplex and occasional shrinks).
#[derive(Debug, Clone, PartialEq)]
pub struct NelderMead {
    /// Iteration budget (paper: 500).
    pub max_iterations: usize,
    /// Initial simplex edge length.
    pub initial_step: f64,
    /// Convergence tolerance on the simplex value spread; 0 disables early
    /// stopping so the full budget is always spent.
    pub tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        NelderMead {
            max_iterations: 500,
            initial_step: 0.5,
            tolerance: 0.0,
        }
    }
}

impl NelderMead {
    /// Creates a Nelder–Mead optimizer with the given iteration budget.
    pub fn new(max_iterations: usize) -> Self {
        NelderMead {
            max_iterations,
            ..NelderMead::default()
        }
    }
}

impl Maximizer for NelderMead {
    fn maximize<F, R>(&self, mut objective: F, start: &[f64], _rng: &mut R) -> OptimizationResult
    where
        F: FnMut(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        assert!(!start.is_empty(), "start point must be non-empty");
        let k = start.len();
        let mut evaluations = 0usize;
        let mut non_finite_evals = 0usize;
        let mut eval = |x: &[f64], evaluations: &mut usize| {
            *evaluations += 1;
            let v = objective(x);
            if !v.is_finite() {
                non_finite_evals += 1;
            }
            v
        };

        // Initial simplex: start plus one step along each axis.
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(k + 1);
        let v0 = start.to_vec();
        let f0 = eval(&v0, &mut evaluations);
        simplex.push((v0, f0));
        for i in 0..k {
            let mut v = start.to_vec();
            v[i] += self.initial_step;
            let f = eval(&v, &mut evaluations);
            simplex.push((v, f));
        }

        let mut history = Vec::with_capacity(self.max_iterations);
        let (alpha, gamma_e, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

        for _ in 0..self.max_iterations {
            // Sort descending by value (we maximize): best first, any
            // non-finite vertex last so it is the next to be replaced.
            simplex.sort_by(|a, b| cmp_desc(a.1, b.1));
            let best = simplex[0].1;
            let worst = simplex[k].1;
            history.push(best);
            if self.tolerance > 0.0 && (best - worst).abs() < self.tolerance {
                // Early convergence: pad history so callers still see a
                // monotone curve of full length semantics.
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; k];
            for (v, _) in &simplex[..k] {
                for (c, x) in centroid.iter_mut().zip(v) {
                    *c += x / k as f64;
                }
            }

            let reflect: Vec<f64> = centroid
                .iter()
                .zip(&simplex[k].0)
                .map(|(c, w)| c + alpha * (c - w))
                .collect();
            let f_reflect = eval(&reflect, &mut evaluations);

            if f_reflect > simplex[0].1 {
                // Try expansion.
                let expand: Vec<f64> = centroid
                    .iter()
                    .zip(&reflect)
                    .map(|(c, r)| c + gamma_e * (r - c))
                    .collect();
                let f_expand = eval(&expand, &mut evaluations);
                simplex[k] = if f_expand > f_reflect {
                    (expand, f_expand)
                } else {
                    (reflect, f_reflect)
                };
            } else if f_reflect > simplex[k - 1].1 {
                simplex[k] = (reflect, f_reflect);
            } else {
                // Contraction toward the better of worst/reflected.
                let (toward, f_toward) = if f_reflect > simplex[k].1 {
                    (&reflect, f_reflect)
                } else {
                    (&simplex[k].0.clone(), simplex[k].1)
                };
                let contract: Vec<f64> = centroid
                    .iter()
                    .zip(toward)
                    .map(|(c, t)| c + rho * (t - c))
                    .collect();
                let f_contract = eval(&contract, &mut evaluations);
                if f_contract > f_toward {
                    simplex[k] = (contract, f_contract);
                } else {
                    // Shrink toward the best vertex.
                    let best_v = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        let shrunk: Vec<f64> = best_v
                            .iter()
                            .zip(&entry.0)
                            .map(|(b, x)| b + sigma * (x - b))
                            .collect();
                        let f = eval(&shrunk, &mut evaluations);
                        *entry = (shrunk, f);
                    }
                }
            }
        }

        simplex.sort_by(|a, b| cmp_desc(a.1, b.1));
        // Record the final best if the loop body never pushed it.
        if history.last().copied() != Some(simplex[0].1) {
            history.push(simplex[0].1);
        }
        make_monotone(&mut history);
        OptimizationResult {
            best_point: simplex[0].0.clone(),
            best_value: simplex[0].1,
            history,
            evaluations,
            non_finite_evals,
        }
    }
}

// ---------------------------------------------------------------------------
// SPSA
// ---------------------------------------------------------------------------

/// Simultaneous-perturbation stochastic approximation (maximizing).
///
/// Uses the standard gain sequences `a_k = a / (k + 1 + A)^α` and
/// `c_k = c / (k + 1)^γ`.
#[derive(Debug, Clone, PartialEq)]
pub struct Spsa {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Step-size numerator `a`.
    pub a: f64,
    /// Stability constant `A`.
    pub big_a: f64,
    /// Step-size exponent `α`.
    pub alpha: f64,
    /// Perturbation numerator `c`.
    pub c: f64,
    /// Perturbation exponent `γ`.
    pub gamma: f64,
}

impl Default for Spsa {
    fn default() -> Self {
        Spsa {
            max_iterations: 500,
            a: 0.2,
            big_a: 10.0,
            alpha: 0.602,
            c: 0.15,
            gamma: 0.101,
        }
    }
}

impl Spsa {
    /// Creates an SPSA optimizer with the given iteration budget.
    pub fn new(max_iterations: usize) -> Self {
        Spsa {
            max_iterations,
            ..Spsa::default()
        }
    }
}

impl Maximizer for Spsa {
    fn maximize<F, R>(&self, mut objective: F, start: &[f64], rng: &mut R) -> OptimizationResult
    where
        F: FnMut(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        assert!(!start.is_empty(), "start point must be non-empty");
        let k = start.len();
        let mut x = start.to_vec();
        let mut evaluations = 0usize;
        let mut non_finite_evals = 0usize;
        let mut best_point = x.clone();
        let mut best_value = {
            evaluations += 1;
            objective(&x)
        };
        if !best_value.is_finite() {
            non_finite_evals += 1;
        }
        let mut history = Vec::with_capacity(self.max_iterations);

        for iter in 0..self.max_iterations {
            let ak = self.a / ((iter as f64 + 1.0 + self.big_a).powf(self.alpha));
            let ck = self.c / ((iter as f64 + 1.0).powf(self.gamma));
            // Rademacher perturbation.
            let delta: Vec<f64> = (0..k)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let plus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi + ck * d).collect();
            let minus: Vec<f64> = x.iter().zip(&delta).map(|(xi, d)| xi - ck * d).collect();
            evaluations += 2;
            let f_plus = objective(&plus);
            let f_minus = objective(&minus);
            non_finite_evals += usize::from(!f_plus.is_finite());
            non_finite_evals += usize::from(!f_minus.is_finite());
            let scale = (f_plus - f_minus) / (2.0 * ck);
            if scale.is_finite() {
                for (xi, d) in x.iter_mut().zip(&delta) {
                    // Ascent: move along the estimated gradient.
                    *xi += ak * scale * d;
                }
            }
            // A non-finite gradient estimate skips the update entirely so
            // one divergent evaluation cannot poison the iterate.
            evaluations += 1;
            let f_x = objective(&x);
            non_finite_evals += usize::from(!f_x.is_finite());
            if improves(f_x, best_value) {
                best_value = f_x;
                best_point = x.clone();
            }
            history.push(best_value);
        }
        OptimizationResult {
            best_point,
            best_value,
            history,
            evaluations,
            non_finite_evals,
        }
    }
}

// ---------------------------------------------------------------------------
// Finite-difference Adam
// ---------------------------------------------------------------------------

/// Central-difference gradient estimation fed into the Adam update rule
/// (maximizing).
#[derive(Debug, Clone, PartialEq)]
pub struct FiniteDiffAdam {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Finite-difference step.
    pub epsilon: f64,
    /// Adam β₁.
    pub beta1: f64,
    /// Adam β₂.
    pub beta2: f64,
}

impl Default for FiniteDiffAdam {
    fn default() -> Self {
        FiniteDiffAdam {
            max_iterations: 500,
            learning_rate: 0.05,
            epsilon: 1e-4,
            beta1: 0.9,
            beta2: 0.999,
        }
    }
}

impl FiniteDiffAdam {
    /// Creates a finite-difference Adam optimizer with the given budget.
    pub fn new(max_iterations: usize) -> Self {
        FiniteDiffAdam {
            max_iterations,
            ..FiniteDiffAdam::default()
        }
    }
}

impl Maximizer for FiniteDiffAdam {
    fn maximize<F, R>(&self, mut objective: F, start: &[f64], _rng: &mut R) -> OptimizationResult
    where
        F: FnMut(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        assert!(!start.is_empty(), "start point must be non-empty");
        let k = start.len();
        let mut x = start.to_vec();
        let mut m = vec![0.0; k];
        let mut v = vec![0.0; k];
        let mut evaluations = 0usize;
        let mut non_finite_evals = 0usize;
        let mut best_point = x.clone();
        let mut best_value = {
            evaluations += 1;
            objective(&x)
        };
        if !best_value.is_finite() {
            non_finite_evals += 1;
        }
        let mut history = Vec::with_capacity(self.max_iterations);

        for iter in 0..self.max_iterations {
            // Central differences per coordinate.
            let mut grad = vec![0.0; k];
            for i in 0..k {
                let mut plus = x.clone();
                plus[i] += self.epsilon;
                let mut minus = x.clone();
                minus[i] -= self.epsilon;
                evaluations += 2;
                let f_plus = objective(&plus);
                let f_minus = objective(&minus);
                non_finite_evals += usize::from(!f_plus.is_finite());
                non_finite_evals += usize::from(!f_minus.is_finite());
                grad[i] = (f_plus - f_minus) / (2.0 * self.epsilon);
            }
            // A non-finite gradient skips the whole update (Adam's moments
            // would otherwise be permanently NaN-poisoned).
            if grad.iter().all(|g| g.is_finite()) {
                let t = (iter + 1) as f64;
                for i in 0..k {
                    m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                    v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                    let m_hat = m[i] / (1.0 - self.beta1.powf(t));
                    let v_hat = v[i] / (1.0 - self.beta2.powf(t));
                    // Ascent step.
                    x[i] += self.learning_rate * m_hat / (v_hat.sqrt() + 1e-8);
                }
            }
            evaluations += 1;
            let f_x = objective(&x);
            non_finite_evals += usize::from(!f_x.is_finite());
            if improves(f_x, best_value) {
                best_value = f_x;
                best_point = x.clone();
            }
            history.push(best_value);
        }
        OptimizationResult {
            best_point,
            best_value,
            history,
            evaluations,
            non_finite_evals,
        }
    }
}

// ---------------------------------------------------------------------------
// Grid search (p = 1)
// ---------------------------------------------------------------------------

/// Exhaustive grid search over the periodic p=1 domain
/// `γ ∈ [0, 2π) × β ∈ [0, π)`.
///
/// Only valid for two-dimensional parameter vectors; used as the "ground
/// truth" labeler in data-quality ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSearch {
    /// Grid points per axis.
    pub resolution: usize,
}

impl Default for GridSearch {
    fn default() -> Self {
        GridSearch { resolution: 64 }
    }
}

impl Maximizer for GridSearch {
    fn maximize<F, R>(&self, mut objective: F, start: &[f64], _rng: &mut R) -> OptimizationResult
    where
        F: FnMut(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        assert_eq!(start.len(), 2, "grid search only supports p = 1 (2 params)");
        assert!(self.resolution >= 2, "grid resolution must be at least 2");
        let mut best_point = start.to_vec();
        let mut best_value = f64::NEG_INFINITY;
        let mut history = Vec::with_capacity(self.resolution * self.resolution);
        let mut evaluations = 0usize;
        let mut non_finite_evals = 0usize;
        for i in 0..self.resolution {
            for j in 0..self.resolution {
                let gamma = 2.0 * std::f64::consts::PI * i as f64 / self.resolution as f64;
                let beta = std::f64::consts::PI * j as f64 / self.resolution as f64;
                let point = [gamma, beta];
                evaluations += 1;
                let value = objective(&point);
                non_finite_evals += usize::from(!value.is_finite());
                // Non-finite grid points are skipped, not propagated as best.
                if improves(value, best_value) {
                    best_value = value;
                    best_point = point.to_vec();
                }
                history.push(best_value);
            }
        }
        OptimizationResult {
            best_point,
            best_value,
            history,
            evaluations,
            non_finite_evals,
        }
    }
}

// ---------------------------------------------------------------------------
// Multi-start wrapper
// ---------------------------------------------------------------------------

/// Runs an inner optimizer from several random restarts (plus the supplied
/// start) and keeps the best outcome — the standard defense against the
/// local traps §3.3 of the paper blames for its noisy labels.
///
/// Restart points are sampled uniformly from per-coordinate ranges supplied
/// at construction (for QAOA: `γ ∈ [0, 2π)`, `β ∈ [0, π)`).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStart<M> {
    inner: M,
    restarts: usize,
    ranges: Vec<(f64, f64)>,
}

impl<M: Maximizer> MultiStart<M> {
    /// Wraps `inner` with `restarts` additional random starts drawn from
    /// `ranges` (one `(lo, hi)` pair per coordinate).
    ///
    /// # Panics
    ///
    /// Panics if any range is empty or reversed.
    pub fn new(inner: M, restarts: usize, ranges: Vec<(f64, f64)>) -> Self {
        assert!(
            ranges.iter().all(|&(lo, hi)| lo < hi),
            "every restart range must satisfy lo < hi"
        );
        MultiStart {
            inner,
            restarts,
            ranges,
        }
    }

    /// The standard QAOA ranges for depth `p`: γ over `[0, 2π)`, β over
    /// `[0, π)`.
    pub fn qaoa(inner: M, restarts: usize, depth: usize) -> Self {
        let mut ranges = vec![(0.0, 2.0 * std::f64::consts::PI); depth];
        ranges.extend(vec![(0.0, std::f64::consts::PI); depth]);
        Self::new(inner, restarts, ranges)
    }
}

impl<M: Maximizer> Maximizer for MultiStart<M> {
    fn maximize<F, R>(&self, mut objective: F, start: &[f64], rng: &mut R) -> OptimizationResult
    where
        F: FnMut(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        assert_eq!(
            start.len(),
            self.ranges.len(),
            "start dimension must match restart ranges"
        );
        let mut best = self.inner.maximize(&mut objective, start, rng);
        let mut history = best.history.clone();
        for _ in 0..self.restarts {
            let restart: Vec<f64> = self
                .ranges
                .iter()
                .map(|&(lo, hi)| rng.gen_range(lo..hi))
                .collect();
            let result = self.inner.maximize(&mut objective, &restart, rng);
            best.evaluations += result.evaluations;
            best.non_finite_evals += result.non_finite_evals;
            history.extend(result.history.iter().copied());
            // A restart whose best is non-finite is skipped outright; a
            // finite restart also replaces a non-finite incumbent from the
            // supplied start, so one diverged trajectory never wins.
            if improves(result.best_value, best.best_value) {
                best.best_point = result.best_point;
                best.best_value = result.best_value;
            }
        }
        make_monotone(&mut history);
        OptimizationResult {
            history,
            ..best
        }
    }
}

/// Forces a history to be monotone non-decreasing (best-so-far semantics).
/// NaN entries (a diverged stretch of the trace) are overwritten by the
/// previous best-so-far, so downstream convergence metrics stay usable.
fn make_monotone(history: &mut [f64]) {
    for i in 1..history.len() {
        let prev = history[i - 1];
        // Overwrite both "strictly less" and NaN entries; a NaN prev is
        // never copied forward over a finite entry.
        if prev.is_finite() && (history[i] < prev || history[i].is_nan()) {
            history[i] = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    /// Smooth 2-d test objective with maximum 3.0 at (1, -2).
    fn bowl(x: &[f64]) -> f64 {
        3.0 - (x[0] - 1.0).powi(2) - (x[1] + 2.0).powi(2)
    }

    /// Periodic objective mimicking a QAOA landscape; max 1 at (π/4, π/8).
    fn periodic(x: &[f64]) -> f64 {
        (2.0 * x[0]).sin() * (4.0 * x[1]).sin()
    }

    #[test]
    fn nelder_mead_finds_bowl_maximum() {
        let mut rng = StdRng::seed_from_u64(41);
        let r = NelderMead::new(200).maximize(bowl, &[4.0, 4.0], &mut rng);
        assert!((r.best_value - 3.0).abs() < 1e-6, "value {}", r.best_value);
        assert!((r.best_point[0] - 1.0).abs() < 1e-3);
        assert!((r.best_point[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn spsa_improves_on_start() {
        let mut rng = StdRng::seed_from_u64(42);
        let r = Spsa::new(400).maximize(bowl, &[3.0, 1.0], &mut rng);
        assert!(r.best_value > bowl(&[3.0, 1.0]) + 1.0);
    }

    #[test]
    fn adam_finds_bowl_maximum() {
        let mut rng = StdRng::seed_from_u64(43);
        let r = FiniteDiffAdam::new(500).maximize(bowl, &[4.0, 4.0], &mut rng);
        assert!((r.best_value - 3.0).abs() < 1e-3, "value {}", r.best_value);
    }

    #[test]
    fn grid_search_finds_periodic_maximum() {
        let mut rng = StdRng::seed_from_u64(44);
        let r = GridSearch { resolution: 64 }.maximize(periodic, &[0.0, 0.0], &mut rng);
        assert!(r.best_value > 0.99, "value {}", r.best_value);
        assert_eq!(r.evaluations, 64 * 64);
    }

    #[test]
    fn histories_are_monotone_and_reach_best() {
        let mut rng = StdRng::seed_from_u64(45);
        type Runner = Box<dyn Fn(&mut StdRng) -> OptimizationResult>;
        let optimizers: Vec<Runner> = vec![
            Box::new(|rng| NelderMead::new(100).maximize(periodic, &[0.3, 0.1], rng)),
            Box::new(|rng| Spsa::new(100).maximize(periodic, &[0.3, 0.1], rng)),
            Box::new(|rng| FiniteDiffAdam::new(100).maximize(periodic, &[0.3, 0.1], rng)),
            Box::new(|rng| {
                GridSearch { resolution: 16 }.maximize(periodic, &[0.0, 0.0], rng)
            }),
        ];
        for run in optimizers {
            let r = run(&mut rng);
            assert!(!r.history.is_empty());
            for w in r.history.windows(2) {
                assert!(w[1] >= w[0] - 1e-12, "history must be monotone");
            }
            let last = *r.history.last().unwrap();
            assert!((last - r.best_value).abs() < 1e-9);
            assert!(r.evaluations > 0);
        }
    }

    #[test]
    fn iterations_to_fraction() {
        let r = OptimizationResult {
            best_point: vec![0.0],
            best_value: 10.0,
            history: vec![2.0, 5.0, 9.0, 10.0],
            evaluations: 4,
            non_finite_evals: 0,
        };
        assert_eq!(r.iterations_to_fraction(0.5), Some(2));
        assert_eq!(r.iterations_to_fraction(0.95), Some(4));
        assert_eq!(r.iterations_to_fraction(0.1), Some(1));
    }

    #[test]
    fn nelder_mead_early_stop_with_tolerance() {
        let mut rng = StdRng::seed_from_u64(46);
        let nm = NelderMead {
            max_iterations: 10_000,
            initial_step: 0.5,
            tolerance: 1e-10,
        };
        let r = nm.maximize(bowl, &[2.0, 0.0], &mut rng);
        assert!(r.history.len() < 10_000, "should converge early");
        assert!((r.best_value - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "p = 1")]
    fn grid_search_rejects_higher_dims() {
        let mut rng = StdRng::seed_from_u64(47);
        let _ = GridSearch::default().maximize(|_| 0.0, &[0.0; 4], &mut rng);
    }

    #[test]
    fn multi_start_escapes_local_trap() {
        // A bimodal objective: small bump at x=-2, big bump at x=3. Plain
        // Nelder–Mead from x=-2.5 climbs the small bump; multi-start over
        // [-5, 5] finds the big one.
        let bimodal = |x: &[f64]| {
            let small = (-((x[0] + 2.0).powi(2))).exp();
            let big = 3.0 * (-((x[0] - 3.0).powi(2))).exp();
            small + big
        };
        let mut rng = StdRng::seed_from_u64(48);
        let plain = NelderMead::new(80).maximize(bimodal, &[-2.5], &mut rng);
        assert!(plain.best_value < 1.5, "plain NM should be trapped");
        let multi = MultiStart::new(NelderMead::new(80), 10, vec![(-5.0, 5.0)]);
        let escaped = multi.maximize(bimodal, &[-2.5], &mut rng);
        assert!((escaped.best_value - 3.0).abs() < 0.1, "{}", escaped.best_value);
        assert!(escaped.evaluations > plain.evaluations);
        for w in escaped.history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn multi_start_qaoa_ranges() {
        let ms = MultiStart::qaoa(NelderMead::new(10), 2, 2);
        let mut rng = StdRng::seed_from_u64(49);
        // 2p = 4 coordinates expected.
        let r = ms.maximize(|x| -x.iter().map(|v| v * v).sum::<f64>(), &[0.1; 4], &mut rng);
        assert_eq!(r.best_point.len(), 4);
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn multi_start_rejects_bad_range() {
        let _ = MultiStart::new(NelderMead::new(10), 1, vec![(1.0, 1.0)]);
    }

    #[test]
    fn deterministic_given_seed() {
        let r1 = Spsa::new(50).maximize(periodic, &[0.2, 0.2], &mut StdRng::seed_from_u64(7));
        let r2 = Spsa::new(50).maximize(periodic, &[0.2, 0.2], &mut StdRng::seed_from_u64(7));
        assert_eq!(r1, r2);
    }

    /// `bowl` with a NaN hole around `hole`: the divergence-injection
    /// objective the fault-tolerance requirements call for.
    fn bowl_with_hole(hole: [f64; 2]) -> impl Fn(&[f64]) -> f64 {
        move |x: &[f64]| {
            if (x[0] - hole[0]).abs() < 0.5 && (x[1] - hole[1]).abs() < 0.5 {
                f64::NAN
            } else {
                bowl(x)
            }
        }
    }

    #[test]
    fn nelder_mead_survives_nan_objective() {
        // The hole sits right on the simplex's path from the start toward
        // the optimum; the old partial_cmp().expect() panicked here.
        let mut rng = StdRng::seed_from_u64(50);
        let r = NelderMead::new(300).maximize(bowl_with_hole([2.0, 0.0]), &[4.0, 4.0], &mut rng);
        assert!(r.best_value.is_finite());
        assert!(!r.diverged());
        assert!(r.best_value > bowl(&[4.0, 4.0]), "should still improve");
    }

    #[test]
    fn all_nan_objective_reports_divergence_instead_of_panicking() {
        let mut rng = StdRng::seed_from_u64(51);
        let r = NelderMead::new(40).maximize(|_| f64::NAN, &[0.5, 0.5], &mut rng);
        assert!(r.diverged());
        assert_eq!(r.non_finite_evals, r.evaluations);
        let r = Spsa::new(40).maximize(|_| f64::NAN, &[0.5, 0.5], &mut rng);
        assert!(r.diverged());
        let r = FiniteDiffAdam::new(40).maximize(|_| f64::NAN, &[0.5, 0.5], &mut rng);
        assert!(r.diverged());
    }

    #[test]
    fn grid_search_skips_non_finite_cells() {
        let mut rng = StdRng::seed_from_u64(52);
        // NaN exactly at the periodic maximum: the best grid cell must be
        // the best *finite* cell, not the poisoned one.
        let poisoned = |x: &[f64]| {
            let v = periodic(x);
            if v > 0.999 {
                f64::NAN
            } else {
                v
            }
        };
        let r = GridSearch { resolution: 64 }.maximize(poisoned, &[0.0, 0.0], &mut rng);
        assert!(r.best_value.is_finite());
        assert!(r.best_value > 0.9);
        assert!(r.non_finite_evals > 0);
    }

    #[test]
    fn multi_start_ignores_nan_trajectories() {
        // The supplied start lands inside the NaN hole, so the first inner
        // run diverges outright; a finite restart must replace it.
        let objective = bowl_with_hole([4.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(53);
        let direct = NelderMead::new(5).maximize(&objective, &[4.0, 4.0], &mut rng);
        assert!(direct.non_finite_evals > 0, "start must hit the hole");
        let multi = MultiStart::new(NelderMead::new(60), 8, vec![(-5.0, 5.0), (-5.0, 5.0)]);
        let r = multi.maximize(&objective, &[4.0, 4.0], &mut rng);
        assert!(r.best_value.is_finite());
        assert!((r.best_value - 3.0).abs() < 0.1, "{}", r.best_value);
    }
}

#[cfg(test)]
mod nan_properties {
    use super::*;
    use qrand::SeedableRng;

    // Property: wherever a single NaN cell is injected into the p=1 grid
    // domain, GridSearch and MultiStart(NelderMead) both return a finite
    // best value and never select a point inside the poisoned cell.
    qcheck::properties! {
        fn injected_nan_never_wins(ci in 0usize..8, cj in 0usize..8, seed in 0u64..1000) {
            let cell_w = 2.0 * std::f64::consts::PI / 8.0;
            let cell_h = std::f64::consts::PI / 8.0;
            let objective = |x: &[f64]| {
                let in_cell = (x[0] / cell_w) as usize == ci && (x[1] / cell_h) as usize == cj;
                if in_cell {
                    f64::NAN
                } else {
                    (2.0 * x[0]).sin() * (4.0 * x[1]).sin()
                }
            };
            let mut rng = qrand::rngs::StdRng::seed_from_u64(seed);
            let grid = GridSearch { resolution: 16 }.maximize(objective, &[0.0, 0.0], &mut rng);
            qcheck::prop_assert!(grid.best_value.is_finite());
            qcheck::prop_assert!(objective(&grid.best_point).is_finite());

            let multi = MultiStart::qaoa(NelderMead::new(30), 3, 1);
            let r = multi.maximize(objective, &[ci as f64 * cell_w + 0.1, cj as f64 * cell_h + 0.1], &mut rng);
            // Either a finite optimum was found or every trajectory stayed
            // inside the hole (possible but must be reported, not panicked).
            qcheck::prop_assert!(r.best_value.is_finite() || r.non_finite_evals > 0);
        }
    }
}
