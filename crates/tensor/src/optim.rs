//! First-order optimizers over tape parameters.
//!
//! The paper trains its GNNs with Adam (§4.1). [`Sgd`] (with optional
//! momentum) and AdamW-style decoupled weight decay are provided for the
//! architecture ablations. Optimizers read each parameter's gradient (filled
//! in by [`crate::Tape::backward`]) and update the value in place.

use std::collections::HashMap;

use crate::{Matrix, Tensor};

/// A gradient-based parameter updater.
///
/// Implementations assume `Tape::backward` ran since the last forward pass,
/// so every parameter's gradient is current.
pub trait Optimizer {
    /// Applies one update step to the given parameters.
    fn step(&mut self, params: &[Tensor]);
    /// Current learning rate.
    fn learning_rate(&self) -> f64;
    /// Overrides the learning rate (schedulers call this).
    fn set_learning_rate(&mut self, lr: f64);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Matrix>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `μ`: `v ← μv + g`, `θ ← θ − lr·v`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Tensor]) {
        for (i, p) in params.iter().enumerate() {
            let grad = p.grad();
            let mut value = p.value();
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(i)
                    .or_insert_with(|| Matrix::zeros(grad.rows(), grad.cols()));
                *v = v.scale(self.momentum).add(&grad);
                value.add_scaled_assign(v, -self.lr);
            } else {
                value.add_scaled_assign(&grad, -self.lr);
            }
            p.set_value(value);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba), optionally with AdamW-style decoupled
/// weight decay — the paper's training optimizer (§4.1).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    weight_decay: f64,
    t: u64,
    m: HashMap<usize, Matrix>,
    v: HashMap<usize, Matrix>,
}

impl Adam {
    /// Adam with standard moments `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_weight_decay(lr, 0.0)
    }

    /// Adam with decoupled weight decay (AdamW).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `weight_decay < 0`.
    pub fn with_weight_decay(lr: f64, weight_decay: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }
}

/// A serializable snapshot of an [`Adam`] optimizer mid-run: hyperparameters,
/// the step counter, and both moment estimates keyed by parameter index
/// (sorted ascending, so the encoding is canonical).
///
/// Exported by [`Adam::export_state`] and turned back into a live optimizer
/// by [`Adam::from_state`]; stepping the restored optimizer produces updates
/// bit-identical to the original.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Learning rate at export time (after any scheduler reductions).
    pub lr: f64,
    /// First-moment decay `β₁`.
    pub beta1: f64,
    /// Second-moment decay `β₂`.
    pub beta2: f64,
    /// Denominator fuzz `ε`.
    pub eps: f64,
    /// Decoupled weight-decay coefficient (0 = plain Adam).
    pub weight_decay: f64,
    /// Steps taken so far (drives bias correction).
    pub t: u64,
    /// First-moment estimates, `(param index, matrix)` sorted by index.
    pub m: Vec<(usize, Matrix)>,
    /// Second-moment estimates, `(param index, matrix)` sorted by index.
    pub v: Vec<(usize, Matrix)>,
}

impl Adam {
    /// Snapshots the full optimizer state for checkpointing. Moments are
    /// emitted sorted by parameter index so equal states encode equally.
    pub fn export_state(&self) -> AdamState {
        let sorted = |map: &HashMap<usize, Matrix>| {
            let mut entries: Vec<(usize, Matrix)> =
                map.iter().map(|(&i, m)| (i, m.clone())).collect();
            entries.sort_by_key(|(i, _)| *i);
            entries
        };
        AdamState {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            weight_decay: self.weight_decay,
            t: self.t,
            m: sorted(&self.m),
            v: sorted(&self.v),
        }
    }

    /// Rebuilds an optimizer from an exported state. The result steps
    /// bit-identically to the optimizer the state was exported from.
    pub fn from_state(state: &AdamState) -> Self {
        Adam {
            lr: state.lr,
            beta1: state.beta1,
            beta2: state.beta2,
            eps: state.eps,
            weight_decay: state.weight_decay,
            t: state.t,
            m: state.m.iter().cloned().collect(),
            v: state.v.iter().cloned().collect(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Tensor]) {
        self.t += 1;
        let t = self.t as f64;
        for (i, p) in params.iter().enumerate() {
            let grad = p.grad();
            let (rows, cols) = (grad.rows(), grad.cols());
            let m = self
                .m
                .entry(i)
                .or_insert_with(|| Matrix::zeros(rows, cols));
            let v = self
                .v
                .entry(i)
                .or_insert_with(|| Matrix::zeros(rows, cols));
            *m = m.scale(self.beta1).add(&grad.scale(1.0 - self.beta1));
            *v = v
                .scale(self.beta2)
                .add(&grad.hadamard(&grad).scale(1.0 - self.beta2));
            let m_hat = m.scale(1.0 / (1.0 - self.beta1.powf(t)));
            let v_hat = v.scale(1.0 / (1.0 - self.beta2.powf(t)));
            let update = m_hat.zip_with(&v_hat, |mh, vh| mh / (vh.sqrt() + self.eps));
            let mut value = p.value();
            if self.weight_decay > 0.0 {
                let decayed = value.scale(self.weight_decay);
                value.add_scaled_assign(&decayed, -self.lr);
            }
            value.add_scaled_assign(&update, -self.lr);
            p.set_value(value);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    /// Minimizes `sum((w - target)²)` and returns the final parameter.
    fn train<O: Optimizer>(mut opt: O, steps: usize) -> Matrix {
        let tape = Tape::new();
        let w = tape.parameter(Matrix::from_rows(&[&[5.0, -3.0]]));
        let target = Matrix::from_rows(&[&[1.0, 2.0]]);
        for _ in 0..steps {
            tape.reset();
            let loss = w.mse(&target);
            tape.backward(&loss);
            opt.step(std::slice::from_ref(&w));
        }
        w.value()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = train(Sgd::new(0.4), 200);
        assert!((w[(0, 0)] - 1.0).abs() < 1e-3, "{w}");
        assert!((w[(0, 1)] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = train(Sgd::with_momentum(0.1, 0.9), 300);
        assert!((w[(0, 0)] - 1.0).abs() < 1e-2);
        assert!((w[(0, 1)] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = train(Adam::new(0.1), 400);
        assert!((w[(0, 0)] - 1.0).abs() < 1e-2, "{w}");
        assert!((w[(0, 1)] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn adamw_decays_unused_weights() {
        // With pure decay (zero gradient via constant loss on other param),
        // weights shrink toward 0.
        let tape = Tape::new();
        let w = tape.parameter(Matrix::from_rows(&[&[4.0]]));
        let mut opt = Adam::with_weight_decay(0.1, 0.5);
        for _ in 0..50 {
            tape.reset();
            // Loss independent of w: gradient is 0, only decay acts.
            let c = tape.constant(Matrix::from_rows(&[&[1.0]]));
            let loss = c.sum();
            tape.backward(&loss);
            opt.step(std::slice::from_ref(&w));
        }
        assert!(w.value()[(0, 0)].abs() < 4.0 * 0.95f64.powi(40));
    }

    #[test]
    fn learning_rate_round_trip() {
        let mut opt = Adam::new(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        opt.set_learning_rate(0.002);
        assert_eq!(opt.learning_rate(), 0.002);
        let mut sgd = Sgd::new(0.1);
        sgd.set_learning_rate(0.05);
        assert_eq!(sgd.learning_rate(), 0.05);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_lr_rejected() {
        let _ = Sgd::new(0.0);
    }

    /// Export mid-run, rebuild, and finish training on both: the restored
    /// optimizer must track the original bit-for-bit.
    #[test]
    fn adam_state_round_trip_is_bit_identical() {
        let tape = Tape::new();
        let w = tape.parameter(Matrix::from_rows(&[&[5.0, -3.0]]));
        let target = Matrix::from_rows(&[&[1.0, 2.0]]);
        let mut opt = Adam::with_weight_decay(0.1, 0.01);
        for _ in 0..7 {
            tape.reset();
            let loss = w.mse(&target);
            tape.backward(&loss);
            opt.step(std::slice::from_ref(&w));
        }
        let state = state_round_trip(&opt.export_state());
        let mut restored = Adam::from_state(&state);
        let frozen = w.value();

        // Continue the original.
        for _ in 0..5 {
            tape.reset();
            let loss = w.mse(&target);
            tape.backward(&loss);
            opt.step(std::slice::from_ref(&w));
        }
        let original_final = w.value();

        // Rewind the parameter and continue the restored copy.
        w.set_value(frozen);
        for _ in 0..5 {
            tape.reset();
            let loss = w.mse(&target);
            tape.backward(&loss);
            restored.step(std::slice::from_ref(&w));
        }
        let restored_final = w.value();
        for r in 0..original_final.rows() {
            for c in 0..original_final.cols() {
                assert_eq!(
                    original_final[(r, c)].to_bits(),
                    restored_final[(r, c)].to_bits(),
                    "restored Adam diverged at ({r}, {c})"
                );
            }
        }
    }

    /// Clone-through-state identity: export → from_state → export is stable.
    fn state_round_trip(state: &AdamState) -> AdamState {
        let rebuilt = Adam::from_state(state);
        let again = rebuilt.export_state();
        assert_eq!(*state, again);
        again
    }

    #[test]
    fn adam_export_is_sorted_and_fresh_state_is_empty() {
        let opt = Adam::new(0.05);
        let state = opt.export_state();
        assert_eq!(state.t, 0);
        assert!(state.m.is_empty() && state.v.is_empty());
        assert_eq!(state.lr, 0.05);
        let tape = Tape::new();
        let params: Vec<_> = (0..4)
            .map(|i| tape.parameter(Matrix::from_rows(&[&[i as f64]])))
            .collect();
        let mut opt = Adam::new(0.05);
        tape.reset();
        let loss = params[0]
            .mse(&Matrix::from_rows(&[&[1.0]]))
            .add(&params[3].mse(&Matrix::from_rows(&[&[2.0]])));
        tape.backward(&loss);
        opt.step(&params);
        let state = opt.export_state();
        let indices: Vec<usize> = state.m.iter().map(|(i, _)| *i).collect();
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted, "moment export must be index-sorted");
    }
}
