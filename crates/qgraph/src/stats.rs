//! Dataset statistics: the histograms behind Figure 2 and the grouped
//! summaries behind Figures 3–4.

use std::collections::BTreeMap;


use crate::Graph;

/// A discrete histogram keyed by an integer bin (degree, size, ...).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<usize, usize>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Increments the count of `bin`.
    pub fn add(&mut self, bin: usize) {
        *self.counts.entry(bin).or_insert(0) += 1;
    }

    /// Count in `bin` (0 when absent).
    pub fn count(&self, bin: usize) -> usize {
        self.counts.get(&bin).copied().unwrap_or(0)
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// Sorted `(bin, count)` pairs.
    pub fn bins(&self) -> Vec<(usize, usize)> {
        self.counts.iter().map(|(&b, &c)| (b, c)).collect()
    }

    /// Relative frequency of `bin` in `[0, 1]`; 0 for an empty histogram.
    pub fn frequency(&self, bin: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(bin) as f64 / total as f64
        }
    }
}

impl FromIterator<usize> for Histogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for bin in iter {
            h.add(bin);
        }
        h
    }
}

impl Extend<usize> for Histogram {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for bin in iter {
            self.add(bin);
        }
    }
}

/// Degree histogram over all nodes of all graphs (Fig. 2a).
pub fn degree_histogram<'a, I: IntoIterator<Item = &'a Graph>>(graphs: I) -> Histogram {
    graphs
        .into_iter()
        .flat_map(|g| g.degrees())
        .collect()
}

/// Graph-size histogram (Fig. 2b).
pub fn size_histogram<'a, I: IntoIterator<Item = &'a Graph>>(graphs: I) -> Histogram {
    graphs.into_iter().map(|g| g.n()).collect()
}

/// Mean and (population) standard deviation of a sample; `(0, 0)` when empty.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Five-number-style summary of a sample grouped under one key, used for the
/// interval plots of Figures 3–4.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// The group key (graph size or degree).
    pub key: usize,
    /// Sample count.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Mean value.
    pub mean: f64,
    /// Maximum value.
    pub max: f64,
    /// Standard deviation.
    pub std: f64,
}

/// Groups `(key, value)` observations and summarizes each group, sorted by key.
pub fn grouped_summary(observations: &[(usize, f64)]) -> Vec<GroupSummary> {
    let mut groups: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for &(k, v) in observations {
        groups.entry(k).or_default().push(v);
    }
    groups
        .into_iter()
        .map(|(key, vals)| {
            let (mean, std) = mean_std(&vals);
            GroupSummary {
                key,
                count: vals.len(),
                min: vals.iter().copied().fold(f64::INFINITY, f64::min),
                mean,
                max: vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                std,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        h.add(3);
        h.add(3);
        h.add(5);
        assert_eq!(h.count(3), 2);
        assert_eq!(h.count(4), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.bins(), vec![(3, 2), (5, 1)]);
        assert!((h.frequency(3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Histogram::new().frequency(1), 0.0);
    }

    #[test]
    fn histogram_from_iterator_and_extend() {
        let mut h: Histogram = vec![1, 1, 2].into_iter().collect();
        h.extend(vec![2, 3]);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(3), 1);
    }

    #[test]
    fn degree_histogram_counts_nodes() {
        let graphs = vec![Graph::cycle(4).unwrap(), Graph::star(4).unwrap()];
        let h = degree_histogram(&graphs);
        // cycle: four degree-2 nodes; star: one degree-3 + three degree-1.
        assert_eq!(h.count(2), 4);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.count(1), 3);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn size_histogram_counts_graphs() {
        let graphs = vec![
            Graph::cycle(4).unwrap(),
            Graph::cycle(4).unwrap(),
            Graph::path(7).unwrap(),
        ];
        let h = size_histogram(&graphs);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.count(7), 1);
    }

    #[test]
    fn mean_std_matches_hand_computation() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((s - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn grouped_summary_sorted_and_correct() {
        let obs = vec![(5, 0.5), (3, 1.0), (5, 0.7), (3, 0.8)];
        let summary = grouped_summary(&obs);
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].key, 3);
        assert_eq!(summary[0].count, 2);
        assert!((summary[0].mean - 0.9).abs() < 1e-12);
        assert_eq!(summary[1].key, 5);
        assert!((summary[1].min - 0.5).abs() < 1e-12);
        assert!((summary[1].max - 0.7).abs() < 1e-12);
    }
}
