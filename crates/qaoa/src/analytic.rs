//! Closed-form p=1 QAOA expectation for unweighted Max-Cut.
//!
//! Wang, Hadfield, Jiang & Rieffel (Phys. Rev. A 97, 022304, 2018) derived
//! the exact depth-1 expectation of each edge's cut operator in terms of the
//! endpoint degrees and the number of triangles through the edge:
//!
//! ```text
//! ⟨C_uv⟩ = 1/2 + (1/4)·sin(4β)·sin(γ)·(cos^e γ + cos^f γ)
//!        − (1/4)·sin²(2β)·cos^{e+f−2λ} γ·(1 − cos^λ (2γ))
//! ```
//!
//! with `e = deg(u) − 1`, `f = deg(v) − 1` and `λ` the number of common
//! neighbors of `u` and `v`. This module provides that formula as an
//! independent oracle: the simulator is tested against it on arbitrary
//! unweighted graphs, and the fixed-angle module optimizes it in closed
//! loop instead of a `2^n` state vector.

use qgraph::Graph;

/// The closed-form p=1 expectation of a single edge's cut operator.
///
/// `degree_u`/`degree_v` are the endpoint degrees (must be ≥ 1 since the
/// edge itself exists) and `triangles` the number of common neighbors.
///
/// # Panics
///
/// Panics if either degree is 0 (the edge would not exist) or if
/// `triangles` exceeds `min(degree_u, degree_v) - 1`.
pub fn edge_expectation(
    gamma: f64,
    beta: f64,
    degree_u: usize,
    degree_v: usize,
    triangles: usize,
) -> f64 {
    assert!(
        degree_u >= 1 && degree_v >= 1,
        "edge endpoints must have degree >= 1"
    );
    assert!(
        triangles <= (degree_u - 1).min(degree_v - 1),
        "triangles through an edge cannot exceed min(deg)-1"
    );
    let e = (degree_u - 1) as i32;
    let f = (degree_v - 1) as i32;
    let lambda = triangles as i32;
    let cos_g = gamma.cos();
    let term1 = 0.25
        * (4.0 * beta).sin()
        * gamma.sin()
        * (cos_g.powi(e) + cos_g.powi(f));
    let term2 = 0.25
        * (2.0 * beta).sin().powi(2)
        * cos_g.powi(e + f - 2 * lambda)
        * (1.0 - (2.0 * gamma).cos().powi(lambda));
    0.5 + term1 - term2
}

/// The closed-form p=1 expectation `⟨C⟩` of the whole (unweighted) graph:
/// the sum of [`edge_expectation`] over all edges.
///
/// # Panics
///
/// Panics if the graph has non-unit edge weights; the closed form is only
/// valid for unweighted Max-Cut.
pub fn graph_expectation(graph: &Graph, gamma: f64, beta: f64) -> f64 {
    assert!(
        graph.is_unweighted(),
        "analytic p=1 formula requires an unweighted graph"
    );
    graph
        .edges()
        .iter()
        .map(|edge| {
            edge_expectation(
                gamma,
                beta,
                graph.degree(edge.u),
                graph.degree(edge.v),
                graph.common_neighbors(edge.u, edge.v),
            )
        })
        .sum()
}

/// The per-edge p=1 expectation of an (infinite) d-regular triangle-free
/// graph — the "tree subgraph" objective the fixed-angle conjecture
/// optimizes (Wurtz & Lykov, Phys. Rev. A 104, 052419, 2021).
///
/// # Panics
///
/// Panics if `degree == 0`.
pub fn regular_tree_edge_expectation(gamma: f64, beta: f64, degree: usize) -> f64 {
    edge_expectation(gamma, beta, degree, degree, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MaxCutHamiltonian, Params, QaoaCircuit};
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn simulator_expectation(g: &Graph, gamma: f64, beta: f64) -> f64 {
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(g));
        circuit.expectation(&Params::new(vec![gamma], vec![beta]))
    }

    #[test]
    fn single_edge_matches_simulator() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        for &(gamma, beta) in &[(0.3, 0.2), (1.1, 0.9), (2.0, 1.5)] {
            let analytic = graph_expectation(&g, gamma, beta);
            let sim = simulator_expectation(&g, gamma, beta);
            assert!(
                (analytic - sim).abs() < 1e-10,
                "γ={gamma} β={beta}: {analytic} vs {sim}"
            );
        }
    }

    #[test]
    fn triangle_matches_simulator() {
        // K3 exercises the λ > 0 term.
        let g = Graph::complete(3).unwrap();
        for &(gamma, beta) in &[(0.3, 0.2), (0.9, 0.7), (1.7, 1.2), (2.4, 0.1)] {
            let analytic = graph_expectation(&g, gamma, beta);
            let sim = simulator_expectation(&g, gamma, beta);
            assert!(
                (analytic - sim).abs() < 1e-10,
                "γ={gamma} β={beta}: {analytic} vs {sim}"
            );
        }
    }

    #[test]
    fn random_graphs_match_simulator() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..15 {
            let g = qgraph::generate::erdos_renyi(7, 0.45, &mut rng).unwrap();
            let gamma = 0.17 + 0.31 * trial as f64;
            let beta = 0.05 + 0.19 * trial as f64;
            let analytic = graph_expectation(&g, gamma, beta);
            let sim = simulator_expectation(&g, gamma, beta);
            assert!(
                (analytic - sim).abs() < 1e-9,
                "trial {trial}: {analytic} vs {sim}"
            );
        }
    }

    #[test]
    fn regular_graphs_match_simulator() {
        let mut rng = StdRng::seed_from_u64(32);
        for &(n, d) in &[(6, 3), (8, 3), (10, 4), (12, 5)] {
            let g = qgraph::generate::random_regular(n, d, &mut rng).unwrap();
            let analytic = graph_expectation(&g, 0.73, 0.41);
            let sim = simulator_expectation(&g, 0.73, 0.41);
            assert!(
                (analytic - sim).abs() < 1e-9,
                "n={n} d={d}: {analytic} vs {sim}"
            );
        }
    }

    #[test]
    fn ring_edge_expectation_peaks_at_known_angles() {
        // 2-regular triangle-free: 1/2 + (1/4)sin(4β)sin(2γ); max 3/4 at
        // β = π/8, γ = π/4.
        let best = regular_tree_edge_expectation(
            std::f64::consts::FRAC_PI_4,
            std::f64::consts::PI / 8.0,
            2,
        );
        assert!((best - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_angles_give_half() {
        for d in 1..8 {
            assert!((regular_tree_edge_expectation(0.0, 0.0, d) - 0.5).abs() < 1e-15);
        }
    }

    #[test]
    #[should_panic(expected = "unweighted")]
    fn weighted_graph_rejected() {
        let g = Graph::from_weighted_edges(2, &[(0, 1, 2.0)]).unwrap();
        let _ = graph_expectation(&g, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "degree >= 1")]
    fn zero_degree_rejected() {
        let _ = edge_expectation(0.1, 0.1, 0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "triangles")]
    fn too_many_triangles_rejected() {
        let _ = edge_expectation(0.1, 0.1, 2, 2, 5);
    }
}
