//! Micro-benchmarks for the state-vector simulator: the inner loop of
//! dataset labeling. One QAOA objective evaluation is a fused
//! phase+mixer sweep per depth on the evaluator's scratch buffer.

use qbench::Bench;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qsim::diagonal::DiagonalOperator;
use qsim::{fused, gates, StateVector};

fn bench_hadamard_layer(bench: &mut Bench) {
    for qubits in [8usize, 12, 15] {
        bench.bench_with_input("h_all", qubits, move || {
            let mut psi = StateVector::zero_state(qubits);
            gates::h_all(&mut psi);
            psi.amplitude(0)
        });
    }
}

fn bench_diagonal_phase(bench: &mut Bench) {
    for qubits in [8usize, 12, 15] {
        let op = DiagonalOperator::from_fn(qubits, |z| z.count_ones() as f64);
        let mut psi = StateVector::uniform_superposition(qubits);
        bench.bench_with_input("diagonal_phase", qubits, move || {
            op.apply_phase(&mut psi, 0.137);
            psi.amplitude(0)
        });
    }
}

/// The mixer layer alone: per-qubit sweeps vs the fused paired-qubit
/// kernel. Same unitary, ⌈n/2⌉ memory passes instead of n.
fn bench_rx_layer(bench: &mut Bench) {
    for qubits in [8usize, 12, 15] {
        let mut psi = StateVector::uniform_superposition(qubits);
        bench.bench_with_input("rx_layer_unfused", qubits, move || {
            gates::rx_all(&mut psi, 0.6);
            psi.amplitude(0)
        });
        let mut psi = StateVector::uniform_superposition(qubits);
        bench.bench_with_input("rx_layer_fused", qubits, move || {
            fused::rx_all(&mut psi, 0.6);
            psi.amplitude(0)
        });
    }
}

/// One full QAOA layer (phase separation + mixer): separate passes vs the
/// fully fused sweep that applies the diagonal phase at first load.
fn bench_qaoa_layer(bench: &mut Bench) {
    for qubits in [8usize, 12, 15] {
        let op = DiagonalOperator::from_fn(qubits, |z| z.count_ones() as f64);
        let mut psi = StateVector::uniform_superposition(qubits);
        bench.bench_with_input("qaoa_layer_unfused", qubits, move || {
            op.apply_phase(&mut psi, 0.137);
            gates::rx_all(&mut psi, 0.6);
            psi.amplitude(0)
        });
        let op = DiagonalOperator::from_fn(qubits, |z| z.count_ones() as f64);
        let mut psi = StateVector::uniform_superposition(qubits);
        bench.bench_with_input("qaoa_layer_fused", qubits, move || {
            op.apply_phase_rx_all(&mut psi, 0.137, 0.6);
            psi.amplitude(0)
        });
    }
}

fn bench_qaoa_expectation(bench: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(1);
    // n·d must be even for a d-regular graph to exist, so cap at 14 nodes.
    for nodes in [8usize, 12, 14] {
        let graph = qgraph::generate::random_regular(nodes, 3, &mut rng)
            .expect("feasible shape");
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));
        let mut evaluator = Evaluator::new(&circuit);
        let params = Params::new(vec![0.7], vec![0.3]);
        bench.bench_with_input("qaoa_expectation_p1", nodes, || {
            evaluator.expectation_in_place(&params)
        });
    }
}

fn bench_qaoa_depth_scaling(bench: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = qgraph::generate::random_regular(12, 3, &mut rng).expect("feasible shape");
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));
    let mut evaluator = Evaluator::new(&circuit);
    for depth in [1usize, 2, 4, 8] {
        let params = Params::new(vec![0.5; depth], vec![0.2; depth]);
        let evaluator = &mut evaluator;
        bench.bench_with_input("qaoa_expectation_depth", depth, move || {
            evaluator.expectation_in_place(&params)
        });
    }
}

fn main() {
    let mut bench = Bench::from_env();
    bench_hadamard_layer(&mut bench);
    bench_diagonal_phase(&mut bench);
    bench_rx_layer(&mut bench);
    bench_qaoa_layer(&mut bench);
    bench_qaoa_expectation(&mut bench);
    bench_qaoa_depth_scaling(&mut bench);
    bench.finish();
}
