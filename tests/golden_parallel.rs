//! Golden parallel-parity suite for the pooled state-vector kernels.
//!
//! Three guarantees, each pinned as a hard test:
//!
//! 1. **Serial bit-identity across the SoA refactor.** The split re/im
//!    storage rewrote every kernel; the serial path must still produce
//!    the *exact bits* it produced before. The golden table below was
//!    captured from the pre-refactor interleaved-`Complex` build.
//! 2. **Parallel-vs-serial parity ≤ 1e-12** for every register size the
//!    paper's dataset uses (n = 2..15) at depths p = 1..3. Pooled sweeps
//!    are bit-identical to serial by construction; the only divergence is
//!    the chunked expectation reduction, and it stays below 1e-12.
//! 3. **Thread-count invariance.** 1, 2, 4, and 8 pooled workers produce
//!    bit-identical expectations: sweep chunking is elementwise and the
//!    reduction uses fixed-size chunks folded in index order, so the pool
//!    width never enters the arithmetic.

use qaoa::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;
use qsim::exec::Executor;

fn depth_params() -> [Params; 3] {
    [
        Params::new(vec![0.7], vec![0.3]),
        Params::new(vec![0.9, 0.25], vec![0.55, 0.1]),
        Params::new(vec![1.3, 2.0, 0.4], vec![0.2, 0.35, 0.05]),
    ]
}

/// Expectation bits captured from the pre-refactor serial build
/// (interleaved `Complex` storage) on the graphs of [`golden_graphs`]
/// at the parameters of [`depth_params`].
const PRE_REFACTOR_BITS: [(&str, usize, u64); 15] = [
    ("cycle6", 0, 0x401182c81d1f4823),      // 4.377716498407639
    ("cycle6", 1, 0x400f1205a2f8f5cd),      // 3.883799813482915
    ("cycle6", 2, 0x400b8670f35d00d4),      // 3.4406451237447104
    ("complete5", 0, 0x4016334c8d0b39c6),   // 5.550096706209336
    ("complete5", 1, 0x400a1fc54a9b331f),   // 3.2655130222905338
    ("complete5", 2, 0x40117ba20fb89288),   // 4.370735402717976
    ("regular8x3", 0, 0x401f8045081c2d7d),  // 7.875263334960775
    ("regular8x3", 1, 0x401a2d3c6b19357d),  // 6.544175790227539
    ("regular8x3", 2, 0x4011f30f942e8ea5),  // 4.487364116040827
    ("regular12x3", 0, 0x40281717bfd14622), // 12.04510306768049
    ("regular12x3", 1, 0x4024c4a8000fbc70), // 10.384094240113171
    ("regular12x3", 2, 0x401ca99c3007f540), // 7.165634870992392
    ("er10", 0, 0x40277af2e44cac32),        // 11.740134367331937
    ("er10", 1, 0x40245b62a57257c8),        // 10.178486986358521
    ("er10", 2, 0x4024cae3ff6d043d),        // 10.396270734842
];

/// The graphs the golden bits were captured on. Construction order
/// matters: the regular and ER graphs consume the shared rng stream.
fn golden_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(0x60_1d);
    vec![
        ("cycle6", Graph::cycle(6).unwrap()),
        ("complete5", Graph::complete(5).unwrap()),
        (
            "regular8x3",
            qgraph::generate::random_regular(8, 3, &mut rng).unwrap(),
        ),
        (
            "regular12x3",
            qgraph::generate::random_regular(12, 3, &mut rng).unwrap(),
        ),
        (
            "er10",
            qgraph::generate::erdos_renyi(10, 0.4, &mut rng).unwrap(),
        ),
    ]
}

/// One deterministic graph per register size n = 2..=15.
fn graph_for_size(n: usize, rng: &mut StdRng) -> Graph {
    if n < 4 {
        Graph::complete(n).unwrap()
    } else if n.is_multiple_of(2) {
        qgraph::generate::random_regular(n, 3, rng).unwrap()
    } else {
        qgraph::generate::erdos_renyi(n, 0.5, rng).unwrap()
    }
}

#[test]
fn serial_path_matches_pre_refactor_golden_bits() {
    let graphs = golden_graphs();
    for &(name, depth_index, bits) in &PRE_REFACTOR_BITS {
        let graph = &graphs.iter().find(|(g, _)| *g == name).unwrap().1;
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
        let e = circuit.expectation(&depth_params()[depth_index]);
        assert_eq!(
            e.to_bits(),
            bits,
            "{name} p={}: serial path drifted from pre-refactor bits \
             (got {e} = 0x{:016x}, want 0x{bits:016x})",
            depth_index + 1,
            e.to_bits(),
        );
    }
}

#[test]
fn parallel_matches_serial_within_1e12_for_n_2_to_15_p_1_to_3() {
    let mut rng = StdRng::seed_from_u64(0x9a11e1);
    for n in 2..=15usize {
        let graph = graph_for_size(n, &mut rng);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));
        for (depth_index, params) in depth_params().iter().enumerate() {
            let serial = Evaluator::new(&circuit).expectation_in_place(params);
            // Crossover forced to 2 qubits so the pooled algorithm runs at
            // every size in the paper's range, not just n >= 12.
            let exec = Executor::threaded_with_crossover(2, 2);
            let pooled = Evaluator::with_executor(&circuit, exec).expectation_in_place(params);
            assert!(
                (pooled - serial).abs() <= 1e-12,
                "n={n} p={}: pooled {pooled} vs serial {serial} (diff {})",
                depth_index + 1,
                (pooled - serial).abs()
            );
        }
    }
}

#[test]
fn thread_count_invariance_1_2_4_8() {
    let mut rng = StdRng::seed_from_u64(0x1417);
    for n in [5usize, 8, 11, 13, 15] {
        let graph = graph_for_size(n, &mut rng);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));
        for (depth_index, params) in depth_params().iter().enumerate() {
            let results: Vec<f64> = [1usize, 2, 4, 8]
                .iter()
                .map(|&threads| {
                    let exec = Executor::threaded_with_crossover(threads, 2);
                    Evaluator::with_executor(&circuit, exec).expectation_in_place(params)
                })
                .collect();
            for (i, r) in results.iter().enumerate() {
                assert_eq!(
                    r.to_bits(),
                    results[0].to_bits(),
                    "n={n} p={}: {} threads diverged from 1 thread",
                    depth_index + 1,
                    [1, 2, 4, 8][i],
                );
            }
        }
    }
}

#[test]
fn default_crossover_keeps_small_registers_serial_bit_exact() {
    // At the default crossover, a threaded evaluator on a small graph must
    // produce the serial path's exact bits (it *is* the serial path).
    let graphs = golden_graphs();
    for &(name, depth_index, bits) in &PRE_REFACTOR_BITS {
        let graph = &graphs.iter().find(|(g, _)| *g == name).unwrap().1;
        if graph.n() >= qsim::exec::DEFAULT_CROSSOVER_QUBITS {
            continue;
        }
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
        let e = Evaluator::with_sim_threads(&circuit, 8)
            .expectation_in_place(&depth_params()[depth_index]);
        assert_eq!(e.to_bits(), bits, "{name}: crossover gate failed");
    }
}
