//! The end-to-end pipeline: generate → label → prune → augment → train →
//! evaluate, reproducing the paper's full experiment in one call.

use std::io;
use std::path::PathBuf;

use qrand::rngs::StdRng;

use gnn::train::{self, Example, TrainConfig, TrainHistory};
use gnn::{GnnKind, GnnModel, GraphContext, ModelConfig};
use qgraph::generate::DatasetSpec;

use crate::dataset::{Dataset, DatasetError, FailurePolicy, LabelConfig, LabelReport};
use crate::eval::{self, EvalConfig, EvaluationReport};
use crate::fixed::{self, FixedAngleStats};
use crate::sdp::{self, SdpConfig, SdpStats};
use crate::store::{self, RunArtifact};

/// Full-pipeline configuration.
///
/// [`PipelineConfig::paper_scale`] matches §3–4 exactly (9598 graphs, 500
/// optimizer iterations, 100 epochs, 100 test graphs) and takes hours;
/// [`PipelineConfig::quick`] is a minutes-scale configuration with the same
/// structure. The experiment binaries honor the `QAOA_GNN_FULL=1`
/// environment variable to select between them.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Dataset shape (§3.1).
    pub dataset: DatasetSpec,
    /// Labeling budget (§3.1).
    pub labeling: LabelConfig,
    /// Selective Data Pruning working point (§3.3); `None` disables.
    pub sdp: Option<SdpConfig>,
    /// Apply fixed-angle augmentation (§3.3).
    pub fixed_angles: bool,
    /// Model hyper-parameters (§4.1).
    pub model: ModelConfig,
    /// Training hyper-parameters (§4.1).
    pub training: TrainConfig,
    /// Held-out test graphs (paper: 100).
    pub test_size: usize,
    /// Evaluation setting (fixed parameters by default, §4).
    pub eval: EvalConfig,
    /// Master seed for dataset generation, labeling and splits.
    pub seed: u64,
    /// Directory for the labeling checkpoint journal; `None` labels
    /// in-memory only. With a directory set, an interrupted run resumes
    /// from the journal on the next invocation (see
    /// [`Dataset::resume_labeling`]).
    pub checkpoint_dir: Option<PathBuf>,
    /// What to do when labeling reports unrecovered per-graph failures.
    pub failure_policy: FailurePolicy,
    /// Where to save the completed run as a [`crate::store::RunArtifact`];
    /// `None` keeps the run in memory only. The artifact bundles the
    /// trained weights (bit-exact), this configuration, the training
    /// history, the labeling report, and the dataset fingerprint.
    pub artifact_path: Option<PathBuf>,
    /// Epoch stride between training checkpoints when `checkpoint_dir` is
    /// set (`1` = after every epoch; `0` is treated as `1`). The final
    /// done-state checkpoint is always written regardless of stride.
    pub checkpoint_every: usize,
}

impl PipelineConfig {
    /// The paper's full-scale configuration.
    pub fn paper_scale() -> Self {
        PipelineConfig {
            dataset: DatasetSpec::default(),
            labeling: LabelConfig::default(),
            sdp: Some(SdpConfig::paper_default()),
            fixed_angles: true,
            model: ModelConfig::default(),
            training: TrainConfig::default(),
            test_size: 100,
            eval: EvalConfig::default(),
            seed: 2024,
            checkpoint_dir: None,
            failure_policy: FailurePolicy::default(),
            artifact_path: None,
            checkpoint_every: 1,
        }
    }

    /// A minutes-scale configuration with identical structure: 360 graphs,
    /// 120 labeling iterations, 40 epochs, 40 test graphs.
    pub fn quick() -> Self {
        PipelineConfig {
            dataset: DatasetSpec::with_count(360),
            labeling: LabelConfig::quick(120),
            training: TrainConfig::quick(40),
            test_size: 40,
            ..PipelineConfig::paper_scale()
        }
    }

    /// Selects [`Self::paper_scale`] when the `QAOA_GNN_FULL` environment
    /// variable is set to a non-empty, non-`0` value, else [`Self::quick`],
    /// then applies optional env overrides through the builder methods —
    /// the same construction path callers use in code:
    ///
    /// * `QAOA_GNN_THREADS` — labeling worker threads.
    /// * `QAOA_GNN_SIM_THREADS` — pooled amplitude-sweep workers per
    ///   evaluation for registers at or above the simulator crossover
    ///   (`0` = serial simulation, the default).
    /// * `QAOA_GNN_ITERATIONS` — optimizer iterations per labeled graph.
    /// * `QAOA_GNN_SEED` — master seed.
    /// * `QAOA_GNN_CHECKPOINT_DIR` — checkpoint directory for the labeling
    ///   journal **and** per-epoch training checkpoints; an interrupted run
    ///   re-launched with the same directory resumes from the furthest
    ///   completed stage, bit-identically.
    /// * `QAOA_GNN_CHECKPOINT_EVERY` — epoch stride between training
    ///   checkpoints (default 1 = every epoch).
    /// * `QAOA_GNN_ARTIFACT` — path to save the completed run as a
    ///   [`crate::store::RunArtifact`] (binaries that train several
    ///   architectures derive one path per architecture from it, see
    ///   [`crate::store::artifact_path_for_kind`]).
    pub fn from_env() -> Self {
        let full = matches!(std::env::var("QAOA_GNN_FULL"), Ok(v) if !v.is_empty() && v != "0");
        let mut config = if full { Self::paper_scale() } else { Self::quick() };
        let parse = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        if let Some(threads) = parse("QAOA_GNN_THREADS") {
            config = config.with_threads(threads as usize);
        }
        if let Some(sim_threads) = parse("QAOA_GNN_SIM_THREADS") {
            config = config.with_sim_threads(sim_threads as usize);
        }
        if let Some(iterations) = parse("QAOA_GNN_ITERATIONS") {
            config = config.with_iterations(iterations as usize);
        }
        if let Some(seed) = parse("QAOA_GNN_SEED") {
            config = config.with_seed(seed);
        }
        if let Ok(dir) = std::env::var("QAOA_GNN_CHECKPOINT_DIR") {
            if !dir.trim().is_empty() {
                config = config.with_checkpoint_dir(Some(PathBuf::from(dir.trim())));
            }
        }
        if let Ok(path) = std::env::var("QAOA_GNN_ARTIFACT") {
            if !path.trim().is_empty() {
                config = config.with_artifact_path(Some(PathBuf::from(path.trim())));
            }
        }
        if let Some(every) = parse("QAOA_GNN_CHECKPOINT_EVERY") {
            config = config.with_checkpoint_every(every as usize);
        }
        config
    }

    /// Builder-style: sets the labeling worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.labeling = self.labeling.with_threads(threads);
        self
    }

    /// Builder-style: sets the pooled sweep-worker count per evaluation
    /// (`0` = serial simulation, the default). Compounds with
    /// [`Self::with_threads`]: graph-level parallelism across the
    /// dataset, sweep-level parallelism within each large instance.
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.labeling = self.labeling.with_sim_threads(sim_threads);
        self
    }

    /// Builder-style: sets the optimizer iteration budget per labeled graph.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.labeling = self.labeling.with_iterations(iterations);
        self
    }

    /// Builder-style: sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: sets the dataset shape.
    pub fn with_dataset(mut self, dataset: DatasetSpec) -> Self {
        self.dataset = dataset;
        self
    }

    /// Builder-style: sets the held-out test-set size.
    pub fn with_test_size(mut self, test_size: usize) -> Self {
        self.test_size = test_size;
        self
    }

    /// Builder-style: sets (or disables, with `None`) the SDP pass.
    pub fn with_sdp(mut self, sdp: Option<SdpConfig>) -> Self {
        self.sdp = sdp;
        self
    }

    /// Builder-style: enables or disables fixed-angle augmentation.
    pub fn with_fixed_angles(mut self, fixed_angles: bool) -> Self {
        self.fixed_angles = fixed_angles;
        self
    }

    /// Builder-style: sets the model hyper-parameters.
    pub fn with_model(mut self, model: ModelConfig) -> Self {
        self.model = model;
        self
    }

    /// Builder-style: sets the training hyper-parameters.
    pub fn with_training(mut self, training: TrainConfig) -> Self {
        self.training = training;
        self
    }

    /// Builder-style: sets (or clears, with `None`) the labeling
    /// checkpoint directory.
    pub fn with_checkpoint_dir(mut self, checkpoint_dir: Option<PathBuf>) -> Self {
        self.checkpoint_dir = checkpoint_dir;
        self
    }

    /// Builder-style: sets the labeling failure policy.
    pub fn with_failure_policy(mut self, failure_policy: FailurePolicy) -> Self {
        self.failure_policy = failure_policy;
        self
    }

    /// Builder-style: sets (or clears, with `None`) the run-artifact save
    /// path.
    pub fn with_artifact_path(mut self, artifact_path: Option<PathBuf>) -> Self {
        self.artifact_path = artifact_path;
        self
    }

    /// Builder-style: sets the epoch stride between training checkpoints
    /// (`0` is treated as `1`).
    pub fn with_checkpoint_every(mut self, checkpoint_every: usize) -> Self {
        self.checkpoint_every = checkpoint_every;
        self
    }
}

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// The generation/labeling/split layer failed (see [`DatasetError`]);
    /// filesystem errors from checkpoint and artifact writes also arrive
    /// here as [`DatasetError::Io`].
    Dataset(DatasetError),
    /// `checkpoint_dir` holds a **valid** training checkpoint that belongs
    /// to a different run — different config, dataset, architecture, or
    /// RNG stream. Resuming would silently mix two runs, so the pipeline
    /// refuses; point it at a fresh directory (or delete the stale
    /// checkpoint) to proceed.
    CheckpointMismatch {
        /// The refusing checkpoint file.
        path: PathBuf,
        /// [`crate::store::train_identity`] of the current run.
        expected: u64,
        /// Identity recorded in the checkpoint.
        found: u64,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Dataset(e) => write!(f, "{e}"),
            PipelineError::CheckpointMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "training checkpoint {} belongs to a different run \
                 (identity {found:#018x}, this run is {expected:#018x}); \
                 refusing to resume",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Dataset(e) => Some(e),
            PipelineError::CheckpointMismatch { .. } => None,
        }
    }
}

impl From<DatasetError> for PipelineError {
    fn from(e: DatasetError) -> Self {
        PipelineError::Dataset(e)
    }
}

impl From<io::Error> for PipelineError {
    fn from(e: io::Error) -> Self {
        PipelineError::Dataset(DatasetError::from(e))
    }
}

/// Everything one pipeline run produced.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// The architecture that was trained.
    pub kind: GnnKind,
    /// The trained model.
    pub model: GnnModel,
    /// Label-quality statistics of the raw dataset (Figs. 3–4 data).
    pub raw_dataset: Dataset,
    /// Dataset actually used for training (after SDP + augmentation).
    pub train_dataset: Dataset,
    /// SDP pass statistics, when enabled.
    pub sdp_stats: Option<SdpStats>,
    /// Fixed-angle pass statistics, when enabled.
    pub fixed_stats: Option<FixedAngleStats>,
    /// Training history.
    pub history: TrainHistory,
    /// Test-set MSE of the normalized angle regression.
    pub test_mse: f64,
    /// The §4 comparison against random initialization.
    pub report: EvaluationReport,
    /// What the checked labeling stage reported (clean when the pipeline
    /// ran on a pre-labeled dataset).
    pub label_report: LabelReport,
}

/// Converts dataset entries into training examples (normalized targets).
pub fn to_examples(dataset: &Dataset, model_config: &ModelConfig) -> Vec<Example> {
    dataset
        .entries
        .iter()
        .map(|entry| {
            let canonical = entry.params.canonical();
            Example {
                context: GraphContext::new(
                    &entry.graph,
                    &model_config.features,
                    model_config.gin_eps,
                ),
                target: gnn::normalize_target(canonical.gammas()[0], canonical.betas()[0]),
            }
        })
        .collect()
}

impl Pipeline {
    /// Runs the full pipeline for one architecture.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is infeasible (e.g. `test_size` not
    /// below the dataset size), the dataset spec is invalid, or labeling
    /// fails under [`FailurePolicy::Halt`] — see [`Self::try_run`] for the
    /// non-panicking form.
    pub fn run(kind: GnnKind, config: &PipelineConfig, rng: &mut StdRng) -> Pipeline {
        Self::try_run(kind, config, rng).unwrap_or_else(|e| panic!("pipeline failed: {e}"))
    }

    /// [`Self::run`] with fault-tolerant labeling surfaced as a `Result`:
    /// labels through the checked engine (journaled into
    /// `config.checkpoint_dir` when set), applies `config.failure_policy`
    /// to any unrecovered per-graph failures, and attaches the
    /// [`LabelReport`] to the returned pipeline.
    ///
    /// With `checkpoint_dir` set, the run is **stage-resumable**: every
    /// completed label is journaled and every `checkpoint_every`-th epoch
    /// writes a [`crate::store::TrainCheckpoint`], so a killed run
    /// relaunched with the same directory skips journaled labels, resumes
    /// training from the last checkpointed epoch, and produces a final
    /// artifact byte-identical to a never-interrupted run.
    ///
    /// # Errors
    ///
    /// [`DatasetError::LabelingFailed`] when labeling left unrecovered
    /// failures under [`FailurePolicy::Halt`]; spec and checkpoint-journal
    /// errors from [`Dataset::generate_checked`];
    /// [`PipelineError::CheckpointMismatch`] when the directory holds a
    /// valid training checkpoint from a different run.
    pub fn try_run(
        kind: GnnKind,
        config: &PipelineConfig,
        rng: &mut StdRng,
    ) -> Result<Pipeline, PipelineError> {
        let (raw_dataset, label_report) = Dataset::generate_checked(
            &config.dataset,
            &config.labeling,
            config.seed,
            config.checkpoint_dir.as_deref(),
        )?;
        if config.failure_policy == FailurePolicy::Halt && !label_report.is_complete() {
            return Err(DatasetError::LabelingFailed(label_report).into());
        }
        Self::finish(kind, raw_dataset, config, label_report, rng)
    }

    /// Runs the pipeline on a pre-labeled dataset (lets the experiment
    /// binaries label once and train all four architectures).
    ///
    /// # Panics
    ///
    /// Panics if `config.test_size >= dataset.len()` or the artifact save
    /// fails — see [`Self::try_run_on_dataset`] for the non-panicking form.
    pub fn run_on_dataset(
        kind: GnnKind,
        raw_dataset: Dataset,
        config: &PipelineConfig,
        rng: &mut StdRng,
    ) -> Pipeline {
        Self::try_run_on_dataset(kind, raw_dataset, config, rng)
            .unwrap_or_else(|e| panic!("pipeline failed: {e}"))
    }

    /// [`Self::run_on_dataset`] surfacing infeasible splits and artifact
    /// save failures as a `Result`. The labeling stage did not run here, so
    /// the attached [`LabelReport`] is clean.
    ///
    /// # Errors
    ///
    /// [`DatasetError::SplitTooLarge`] when `config.test_size >=
    /// dataset.len()`; [`DatasetError::Io`] when saving to
    /// `config.artifact_path` fails.
    pub fn try_run_on_dataset(
        kind: GnnKind,
        raw_dataset: Dataset,
        config: &PipelineConfig,
        rng: &mut StdRng,
    ) -> Result<Pipeline, PipelineError> {
        let report = LabelReport::clean(raw_dataset.len());
        Self::finish(kind, raw_dataset, config, report, rng)
    }

    /// Shared tail of every entry point: split, prune, augment, train,
    /// evaluate, attach the labeling report, and — when
    /// `config.artifact_path` is set — persist the whole run as a
    /// [`crate::store::RunArtifact`]. Saving happens *after* the real
    /// label report is attached so the artifact records what labeling
    /// actually did.
    ///
    /// With `checkpoint_dir` set, training runs through
    /// [`train::train_resumable`] with a [`crate::store::TrainCheckpoint`]
    /// persisted at epoch boundaries. On restart the furthest completed
    /// stage is detected and skipped: journaled labels replay for free
    /// (upstream, in [`Dataset::resume_labeling`]), a fingerprint-validated
    /// checkpoint resumes training mid-schedule (a `done` one skips it
    /// entirely), and an artifact already holding this run's exact bytes is
    /// left untouched. A checkpoint whose [`store::train_identity`] differs
    /// is a different run and refuses typed; a torn or corrupted one falls
    /// back to a fresh training start — the result is bit-identical either
    /// way, only the work saved differs.
    fn finish(
        kind: GnnKind,
        raw_dataset: Dataset,
        config: &PipelineConfig,
        label_report: LabelReport,
        rng: &mut StdRng,
    ) -> Result<Pipeline, PipelineError> {
        let (train_split, test_split) =
            raw_dataset.split(config.test_size, config.seed ^ 0x5f5f)?;

        // Data-quality passes apply to the training split only; the test
        // split stays untouched for unbiased evaluation.
        let (pruned, sdp_stats) = match &config.sdp {
            Some(sdp_config) => {
                let (d, s) = sdp::prune(&train_split, sdp_config, rng);
                (d, Some(s))
            }
            None => (train_split, None),
        };
        let (train_dataset, fixed_stats) = if config.fixed_angles {
            let (d, s) = fixed::augment(&pruned);
            (d, Some(s))
        } else {
            (pruned, None)
        };

        let model = GnnModel::new(kind, config.model.clone(), rng);
        let train_examples = to_examples(&train_dataset, &config.model);
        let history = match &config.checkpoint_dir {
            Some(dir) if !train_examples.is_empty() => {
                let dataset_fingerprint = store::fingerprint_graph_refs(
                    raw_dataset.entries.iter().map(|e| &e.graph),
                );
                // The identity is taken at the train-start RNG position:
                // every stage before this point replays deterministically
                // from the master seed, so first run and resume compute the
                // same value — and a checkpoint from any *other* run
                // (different seed, config, dataset, or architecture) cannot.
                let identity =
                    store::train_identity(kind, config, dataset_fingerprint, rng.state());
                let path = store::train_checkpoint_path(dir, kind);
                let resume = match store::TrainCheckpoint::load(&path) {
                    Ok(checkpoint) => {
                        if checkpoint.identity != identity {
                            return Err(PipelineError::CheckpointMismatch {
                                path,
                                expected: identity,
                                found: checkpoint.identity,
                            });
                        }
                        // Identity matches but the state is structurally
                        // incompatible (a hand-edited file with recomputed
                        // checksums): train from scratch rather than guess.
                        match checkpoint.state.compatible_with(
                            &model,
                            &config.training,
                            train_examples.len(),
                        ) {
                            Ok(()) => Some(checkpoint.state),
                            Err(_) => None,
                        }
                    }
                    // Missing, torn, or corrupted checkpoint: the previous
                    // run never survived an epoch boundary — start fresh.
                    Err(_) => None,
                };
                train::train_resumable(
                    &model,
                    &train_examples,
                    &config.training,
                    rng,
                    resume,
                    config.checkpoint_every.max(1),
                    |state| {
                        store::TrainCheckpoint {
                            kind,
                            identity,
                            state: state.clone(),
                        }
                        .save(&path)
                    },
                )
                .map_err(DatasetError::from)?
            }
            _ => train::train(&model, &train_examples, &config.training, rng),
        };
        let test_examples = to_examples(&test_split, &config.model);
        let test_mse = train::evaluate(&model, &test_examples);

        let test_graphs: Vec<qgraph::Graph> = test_split
            .entries
            .iter()
            .map(|e| e.graph.clone())
            .collect();
        let report = eval::evaluate_model(&model, &test_graphs, &config.eval, rng);

        let pipeline = Pipeline {
            kind,
            model,
            raw_dataset,
            train_dataset,
            sdp_stats,
            fixed_stats,
            history,
            test_mse,
            report,
            label_report,
        };
        if let Some(path) = &config.artifact_path {
            let artifact = pipeline.to_artifact(config);
            let mut bytes = artifact.to_json().to_pretty().into_bytes();
            bytes.push(b'\n');
            // Stage detection, final rung: a previous run killed *after*
            // its save already published exactly these bytes — leave the
            // file untouched instead of rewriting it.
            match std::fs::read(path) {
                Ok(existing) if existing == bytes => {}
                _ => artifact.save(path).map_err(DatasetError::from)?,
            }
        }
        Ok(pipeline)
    }

    /// Bundles this run into a [`RunArtifact`]: the trained weights
    /// (bit-exact), `config`, the training history, the labeling report,
    /// the raw dataset's fingerprint, and the training envelope (what the
    /// model actually saw after pruning/augmentation, so serving can tell
    /// in-distribution requests from out-of-envelope ones).
    pub fn to_artifact(&self, config: &PipelineConfig) -> RunArtifact {
        RunArtifact {
            config: config.clone(),
            weights: self.model.export_weights(),
            history: self.history.clone(),
            label_report: self.label_report.clone(),
            dataset_fingerprint: store::fingerprint_graph_refs(
                self.raw_dataset.entries.iter().map(|e| &e.graph),
            ),
            envelope: store::TrainingEnvelope::from_dataset(
                &self.train_dataset,
                config.model.features.dim(),
            ),
        }
    }

    /// Publishes this run's trained model into a live serving loop as a
    /// mid-traffic hot-swap: the retrain → redeploy path with no restart
    /// and no dropped requests. The artifact is validated before
    /// publication; on [`crate::serve_loop::SwapError`] the loop keeps
    /// serving its previous generation untouched.
    pub fn publish(
        &self,
        config: &PipelineConfig,
        serve: &crate::serve_loop::ServeLoop,
    ) -> Result<u64, crate::serve_loop::SwapError> {
        serve.swap_artifact(self.to_artifact(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig {
            dataset: DatasetSpec::with_count(40),
            labeling: LabelConfig::quick(60),
            training: TrainConfig::quick(10),
            test_size: 10,
            ..PipelineConfig::paper_scale()
        }
    }

    #[test]
    fn pipeline_produces_consistent_artifacts() {
        let mut rng = StdRng::seed_from_u64(151);
        let p = Pipeline::run(GnnKind::Gcn, &tiny_config(), &mut rng);
        assert_eq!(p.kind, GnnKind::Gcn);
        assert_eq!(p.raw_dataset.len(), 40);
        assert_eq!(p.report.per_graph.len(), 10);
        assert!(p.train_dataset.len() <= 30);
        assert!(!p.history.epochs.is_empty());
        assert!(p.test_mse.is_finite());
        assert!(p.sdp_stats.is_some());
        assert!(p.fixed_stats.is_some());
        // Data-quality passes must not lower mean label quality.
        assert!(
            p.train_dataset.mean_approx_ratio() >= p.raw_dataset.mean_approx_ratio() - 0.05
        );
    }

    #[test]
    fn pipeline_without_quality_passes() {
        let mut rng = StdRng::seed_from_u64(152);
        let config = PipelineConfig {
            sdp: None,
            fixed_angles: false,
            ..tiny_config()
        };
        let p = Pipeline::run(GnnKind::Sage, &config, &mut rng);
        assert!(p.sdp_stats.is_none());
        assert!(p.fixed_stats.is_none());
        assert_eq!(p.train_dataset.len(), 30);
    }

    #[test]
    fn quick_config_is_structurally_paper_scale() {
        let quick = PipelineConfig::quick();
        let paper = PipelineConfig::paper_scale();
        assert_eq!(quick.model, paper.model);
        assert_eq!(quick.sdp, paper.sdp);
        assert_eq!(quick.eval, paper.eval);
        assert!(quick.dataset.count < paper.dataset.count);
        assert_eq!(paper.dataset.count, 9598);
        assert_eq!(paper.labeling.iterations, 500);
        assert_eq!(paper.test_size, 100);
        assert_eq!(paper.training.epochs, 100);
    }

    #[test]
    fn builder_chain_overrides_fields() {
        let config = PipelineConfig::quick()
            .with_threads(8)
            .with_sim_threads(2)
            .with_iterations(200)
            .with_seed(7)
            .with_test_size(12)
            .with_dataset(DatasetSpec::with_count(50))
            .with_sdp(None)
            .with_fixed_angles(false)
            .with_training(TrainConfig::quick(5));
        assert_eq!(config.labeling.threads, 8);
        assert_eq!(config.labeling.sim_threads, 2);
        assert_eq!(config.labeling.iterations, 200);
        assert_eq!(config.seed, 7);
        assert_eq!(config.test_size, 12);
        assert_eq!(config.dataset.count, 50);
        assert!(config.sdp.is_none());
        assert!(!config.fixed_angles);
        assert_eq!(config.training.epochs, 5);
        // Untouched fields keep their quick() values.
        assert_eq!(config.model, PipelineConfig::quick().model);
    }

    #[test]
    fn to_examples_normalizes_targets() {
        let mut rng = StdRng::seed_from_u64(153);
        let ds = Dataset::generate(
            &DatasetSpec::with_count(5),
            &LabelConfig::quick(30),
            9,
        )
        .unwrap();
        let _ = &mut rng;
        let examples = to_examples(&ds, &ModelConfig::default());
        assert_eq!(examples.len(), 5);
        for ex in &examples {
            assert!(ex.target.iter().all(|v| v.is_finite()));
        }
    }
}
