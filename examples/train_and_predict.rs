//! Full pipeline demo: all four GNN architectures through the paper's
//! generate → label → prune → augment → train → evaluate pipeline.
//!
//! ```text
//! cargo run --release --example train_and_predict
//! ```
//!
//! Prints a miniature Table 1. For the paper-scale run use the experiment
//! binary instead: `QAOA_GNN_FULL=1 cargo run --release -p qaoa-gnn-bench
//! --bin fig5_table1`.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::TrainConfig;
use gnn::GnnKind;
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::Dataset;
use qgraph::generate::DatasetSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PipelineConfig::paper_scale()
        .with_dataset(DatasetSpec::with_count(120))
        .with_iterations(80)
        .with_training(TrainConfig::quick(20))
        .with_test_size(24);

    println!(
        "labeling {} graphs ({} optimizer iterations each)...",
        config.dataset.count, config.labeling.iterations
    );
    // The checked engine isolates per-graph panics/divergences; a bad
    // instance becomes a recorded failure instead of a dead run.
    let (dataset, label_report) = Dataset::generate_checked(
        &config.dataset,
        &config.labeling,
        config.seed,
        config.checkpoint_dir.as_deref(),
    )?;
    if !label_report.is_complete() {
        println!(
            "skipped {} unlabelable graphs: {:?}",
            label_report.unrecovered().len(),
            label_report.unrecovered()
        );
    }
    println!("mean label AR: {:.3}", dataset.mean_approx_ratio());

    println!("\n{:<10} {:>18} {:>10} {:>9}", "method", "improvement (pts)", "win rate", "test MSE");
    for kind in GnnKind::ALL {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let p = Pipeline::run_on_dataset(kind, dataset.clone(), &config, &mut rng);
        if let Some(event) = &p.history.diverged {
            println!("{kind}: training diverged at epoch {}; best weights kept", event.epoch);
        }
        println!(
            "{:<10} {:>8.2} ± {:<7.2} {:>9.2} {:>9.5}",
            kind.to_string(),
            p.report.mean_improvement,
            p.report.std_improvement,
            p.report.win_rate(),
            p.test_mse
        );
    }
    println!("\n(paper, full scale: GAT 3.28±9.99, GCN 3.65±10.17, GIN 3.66±9.97, GraphSAGE 2.86±10.01)");
    Ok(())
}
