use std::f64::consts::PI;

use qrand::Rng;

/// QAOA variational parameters: `p` phase angles γ and `p` mixer angles β.
///
/// The standard Max-Cut QAOA landscape is periodic — γ over `[0, 2π)` (for
/// integer-weight graphs) and β over `[0, π)` — so random initialization
/// (the paper's baseline, §3.1) samples those ranges.
///
/// # Example
///
/// ```
/// use qaoa::Params;
///
/// let params = Params::new(vec![0.5, 1.0], vec![0.2, 0.3]);
/// assert_eq!(params.depth(), 2);
/// let flat = params.to_flat();
/// assert_eq!(Params::from_flat(&flat).unwrap(), params);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    gammas: Vec<f64>,
    betas: Vec<f64>,
}

impl Params {
    /// Creates parameters from explicit angle vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or are empty.
    pub fn new(gammas: Vec<f64>, betas: Vec<f64>) -> Self {
        assert_eq!(
            gammas.len(),
            betas.len(),
            "gamma and beta vectors must have equal length"
        );
        assert!(!gammas.is_empty(), "depth p must be at least 1");
        Params { gammas, betas }
    }

    /// Uniformly random parameters: γ ∈ [0, 2π), β ∈ [0, π) — the paper's
    /// random-initialization baseline.
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn random<R: Rng + ?Sized>(depth: usize, rng: &mut R) -> Self {
        assert!(depth >= 1, "depth p must be at least 1");
        let gammas = (0..depth).map(|_| rng.gen_range(0.0..2.0 * PI)).collect();
        let betas = (0..depth).map(|_| rng.gen_range(0.0..PI)).collect();
        Params { gammas, betas }
    }

    /// All-zero parameters of the given depth (the QAOA identity circuit).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    pub fn zeros(depth: usize) -> Self {
        assert!(depth >= 1, "depth p must be at least 1");
        Params {
            gammas: vec![0.0; depth],
            betas: vec![0.0; depth],
        }
    }

    /// Circuit depth `p`.
    pub fn depth(&self) -> usize {
        self.gammas.len()
    }

    /// Phase-separation angles γ.
    pub fn gammas(&self) -> &[f64] {
        &self.gammas
    }

    /// Mixer angles β.
    pub fn betas(&self) -> &[f64] {
        &self.betas
    }

    /// Flattens to `[γ_1..γ_p, β_1..β_p]` — the layout the optimizers use.
    pub fn to_flat(&self) -> Vec<f64> {
        let mut flat = self.gammas.clone();
        flat.extend_from_slice(&self.betas);
        flat
    }

    /// Rebuilds from the flat layout produced by [`Self::to_flat`].
    ///
    /// Returns `None` if the length is zero or odd.
    pub fn from_flat(flat: &[f64]) -> Option<Self> {
        if flat.is_empty() || !flat.len().is_multiple_of(2) {
            return None;
        }
        let p = flat.len() / 2;
        Some(Params {
            gammas: flat[..p].to_vec(),
            betas: flat[p..].to_vec(),
        })
    }

    /// Wraps angles into a canonical fundamental domain:
    /// `γ_1 ∈ [0, π]`, remaining `γ ∈ [0, 2π)`, `β ∈ [0, π/2)`.
    ///
    /// For integer-weight Max-Cut these are exact symmetries of the QAOA
    /// expectation: the cost eigenvalues are integers so `e^{-iγC}` has
    /// period 2π in γ; shifting any β by π/2 appends `(−i)^n X⊗…⊗X`, and
    /// the global bit-flip commutes with every layer and leaves the cut
    /// value invariant; and time reversal (complex conjugation of the
    /// whole circuit) gives `E(γ⃗, β⃗) = E(−γ⃗, −β⃗)`, which folds `γ_1`
    /// into `[0, π]`. Canonicalizing labels before training removes the
    /// several-copies-of-every-optimum ambiguity that otherwise makes the
    /// regression targets multimodal (§3.3's "noisy labels").
    pub fn canonical(&self) -> Params {
        let wrap = |gammas: &[f64], betas: &[f64]| Params {
            gammas: gammas.iter().map(|g| g.rem_euclid(2.0 * PI)).collect(),
            betas: betas
                .iter()
                .map(|b| b.rem_euclid(PI / 2.0))
                .collect(),
        };
        let wrapped = wrap(&self.gammas, &self.betas);
        if wrapped.gammas[0] <= PI {
            return wrapped;
        }
        // Time-reversal fold: negate every angle, then re-wrap.
        let neg_g: Vec<f64> = wrapped.gammas.iter().map(|g| -g).collect();
        let neg_b: Vec<f64> = wrapped.betas.iter().map(|b| -b).collect();
        wrap(&neg_g, &neg_b)
    }

    /// Euclidean distance to another parameter vector of the same depth.
    ///
    /// # Panics
    ///
    /// Panics if depths differ.
    pub fn distance(&self, other: &Params) -> f64 {
        assert_eq!(self.depth(), other.depth(), "depths must match");
        self.to_flat()
            .iter()
            .zip(other.to_flat())
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn construction_and_accessors() {
        let p = Params::new(vec![0.1, 0.2], vec![0.3, 0.4]);
        assert_eq!(p.depth(), 2);
        assert_eq!(p.gammas(), &[0.1, 0.2]);
        assert_eq!(p.betas(), &[0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        let _ = Params::new(vec![0.1], vec![0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn empty_rejected() {
        let _ = Params::new(vec![], vec![]);
    }

    #[test]
    fn random_in_documented_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let p = Params::random(3, &mut rng);
            for &g in p.gammas() {
                assert!((0.0..2.0 * PI).contains(&g));
            }
            for &b in p.betas() {
                assert!((0.0..PI).contains(&b));
            }
        }
    }

    #[test]
    fn flat_round_trip() {
        let p = Params::new(vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]);
        let flat = p.to_flat();
        assert_eq!(flat, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(Params::from_flat(&flat).unwrap(), p);
    }

    #[test]
    fn from_flat_rejects_odd_or_empty() {
        assert!(Params::from_flat(&[1.0, 2.0, 3.0]).is_none());
        assert!(Params::from_flat(&[]).is_none());
    }

    #[test]
    fn canonical_wraps_into_ranges() {
        let p = Params::new(vec![7.0, -1.0], vec![4.0, -0.5]);
        let c = p.canonical();
        assert!(c.gammas()[0] <= PI, "first gamma folded into [0, π]");
        for &g in c.gammas() {
            assert!((0.0..2.0 * PI).contains(&g));
        }
        for &b in c.betas() {
            assert!((0.0..PI / 2.0).contains(&b));
        }
        // Already-canonical params are untouched.
        let q = Params::new(vec![1.0], vec![0.5]);
        assert_eq!(q.canonical(), q);
    }

    #[test]
    fn canonical_folds_time_reversed_pairs_together() {
        // (γ, β) and (2π−γ, π−β) are the same physical point; both must map
        // to the same canonical representative.
        let a = Params::new(vec![1.1], vec![0.4]);
        let b = Params::new(vec![2.0 * PI - 1.1], vec![PI - 0.4]);
        let ca = a.canonical();
        let cb = b.canonical();
        assert!((ca.gammas()[0] - cb.gammas()[0]).abs() < 1e-12);
        assert!((ca.betas()[0] - cb.betas()[0]).abs() < 1e-12);
    }

    #[test]
    fn canonical_folds_beta_period_pi_over_2() {
        // β and β + π/2 are the same physical point.
        let a = Params::new(vec![0.7], vec![0.3]);
        let b = Params::new(vec![0.7], vec![0.3 + PI / 2.0]);
        assert!(a.canonical().distance(&b.canonical()) < 1e-12);
    }

    #[test]
    fn canonical_preserves_expectation() {
        use crate::{MaxCutHamiltonian, QaoaCircuit};
        let g = qgraph::Graph::cycle(5).unwrap();
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let p = Params::new(vec![9.3, -2.0], vec![5.1, -1.2]);
        let e1 = circuit.expectation(&p);
        let e2 = circuit.expectation(&p.canonical());
        assert!((e1 - e2).abs() < 1e-9, "{e1} vs {e2}");
    }

    #[test]
    fn zeros_and_distance() {
        let z = Params::zeros(2);
        let p = Params::new(vec![3.0, 0.0], vec![0.0, 4.0]);
        assert!((z.distance(&p) - 5.0).abs() < 1e-12);
        assert_eq!(z.distance(&z), 0.0);
    }
}
