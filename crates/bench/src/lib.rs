//! # qaoa-gnn-bench — the experiment harness
//!
//! One binary per paper artifact (see `src/bin/`), plus Criterion
//! micro-benchmarks (see `benches/`). Every binary prints a human-readable
//! table to stdout and writes a CSV under `target/experiments/` so the
//! numbers in EXPERIMENTS.md can be regenerated.
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig2_distributions` | Fig. 2a/2b dataset histograms |
//! | `fig3_ar_by_size` | Fig. 3 possible AR by graph size |
//! | `fig4_ar_by_degree` | Fig. 4 possible AR by degree |
//! | `fig5_table1` | Fig. 5 per-graph AR series + Table 1 improvements |
//! | `ablation_sdp` | §3.3 SDP threshold / selective-rate sweep |
//! | `ablation_fixed_angle` | §3.3 fixed-angle label-quality study |
//! | `ablation_arch` | §4.1 architecture hyper-parameter sweep |
//!
//! All binaries honor `QAOA_GNN_FULL=1` for paper-scale runs and default to
//! a CI-sized configuration (see
//! [`qaoa_gnn::pipeline::PipelineConfig::from_env`]).

use std::fs;
use std::io;
use std::path::PathBuf;

use qaoa_gnn::dataset::LabelReport;
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::Dataset;

/// Labels the configured dataset through the checked, checkpointable
/// engine — the shared front half of every experiment binary. Honors
/// `config.checkpoint_dir` (set it via `QAOA_GNN_CHECKPOINT_DIR` to make
/// an interrupted run resumable) and prints any per-graph failures instead
/// of dying on them.
///
/// # Panics
///
/// Panics on an invalid dataset spec or a broken checkpoint journal.
pub fn label_dataset(config: &PipelineConfig) -> Dataset {
    if let Some(dir) = &config.checkpoint_dir {
        println!("checkpoint journal: {}", dir.display());
    }
    let (dataset, report) = Dataset::generate_checked(
        &config.dataset,
        &config.labeling,
        config.seed,
        config.checkpoint_dir.as_deref(),
    )
    .unwrap_or_else(|e| panic!("labeling failed: {e}"));
    print_label_report(&report);
    dataset
}

/// Prints a one-line summary of labeling failures; silent when clean.
pub fn print_label_report(report: &LabelReport) {
    if report.failures.is_empty() {
        return;
    }
    let recovered = report.failures.iter().filter(|f| f.recovered).count();
    println!(
        "label failures: {}/{} graphs ({} recovered by retry, {} skipped: {:?})",
        report.failures.len(),
        report.total,
        recovered,
        report.unrecovered().len(),
        report.unrecovered()
    );
}

/// Directory experiment CSVs are written to (`target/experiments/`),
/// created on first use.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn experiments_dir() -> io::Result<PathBuf> {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace target dir is two up.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes a CSV file into [`experiments_dir`] and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> io::Result<PathBuf> {
    let path = experiments_dir()?.join(name);
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out)?;
    Ok(path)
}

/// Prints an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with 4 decimal places (the tables' standard precision).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimal places (Table 1 precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_dir_is_created() {
        let dir = experiments_dir().unwrap();
        assert!(dir.is_dir());
    }

    #[test]
    fn csv_round_trip() {
        let path = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(1.0 / 3.0), "0.3333");
        assert_eq!(f2(3.275), "3.27");
    }
}
