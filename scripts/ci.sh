#!/usr/bin/env bash
# Hermetic CI: build and test fully offline, then verify the dependency
# graph contains only in-tree path crates. Any dependency that resolves to
# a registry, git, or other non-path source fails the build — that is the
# workspace's zero-external-dependency guarantee.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> offline release build (all targets)"
cargo build --release --offline --all-targets

echo "==> clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "==> offline test suite"
test_log=$(mktemp)
cargo test -q --offline | tee "$test_log"

echo "==> test-count floor"
# The suite must never silently shrink: the floor is the passing-test
# count at the time of the last change to it. Raise it when adding tests.
TEST_FLOOR=712
total=$(grep -oE '[0-9]+ passed' "$test_log" | awk '{s+=$1} END {print s+0}')
rm -f "$test_log"
if [ "$total" -lt "$TEST_FLOOR" ]; then
    echo "ERROR: only $total tests passed; floor is $TEST_FLOOR" >&2
    exit 1
fi
echo "OK: $total tests (floor $TEST_FLOOR)"

echo "==> dependency source guard"
# Every package in the resolved graph must have "source": null (a path
# dependency / workspace member). Registry packages carry a
# "registry+https://..." source, git packages "git+...".
metadata=$(cargo metadata --format-version 1 --offline)
violations=$(printf '%s' "$metadata" | python3 -c '
import json, sys
meta = json.load(sys.stdin)
bad = ["{} {} ({})".format(p["name"], p["version"], p["source"])
       for p in meta["packages"] if p["source"] is not None]
print("\n".join(bad))
')
if [ -n "$violations" ]; then
    echo "ERROR: non-path dependencies found:" >&2
    echo "$violations" >&2
    exit 1
fi
echo "OK: $(printf '%s' "$metadata" | python3 -c 'import json,sys; print(len(json.load(sys.stdin)["packages"]))') packages, all path-only"

echo "==> smoke-run benches (qbench --test mode)"
for bench in generators optimizers gnn_forward simulator labeling; do
    cargo bench --offline -q -p qaoa-gnn-bench --bench "$bench" -- --test >/dev/null
done
echo "OK: benches run"

echo "==> parallel smoke (pooled kernels at 2 threads: golden parity + invariance)"
# Release-mode pass over the golden parallel-parity suite: serial bits
# pinned across the SoA refactor, pooled-vs-serial ≤ 1e-12 for n=2..15
# p=1..3, and 1/2/4/8-thread bit-identity (the suite drives 2-thread
# pools internally; the env var covers the from_env plumbing too).
QAOA_GNN_SIM_THREADS=2 cargo test --release --offline -q -p qaoa-gnn --test golden_parallel >/dev/null
echo "OK: pooled path matches serial and is thread-count invariant"

echo "==> checkpoint/resume smoke (label, kill mid-journal, resume, diff)"
cargo run --release --offline -q -p qaoa-gnn-bench --bin checkpoint_smoke
echo "OK: checkpoint/resume round trip is bit-identical"

echo "==> artifact smoke (train tiny, save, reload in a fresh process, diff bits)"
cargo run --release --offline -q -p qaoa-gnn-bench --bin artifact_smoke
echo "OK: saved artifacts reproduce in-memory predictions bit-exactly"

echo "==> serving smoke (env-armed fault, degradation ladder, bit-identity)"
cargo run --release --offline -q -p qaoa-gnn-bench --bin serve_smoke
echo "OK: guarded serving degrades visibly and matches the raw path bit-exactly"

echo "==> serve_load smoke (concurrent loop: zero drops, mid-traffic hot-swaps, bounded shed)"
# CI-sized closed-loop + saturation-burst run. The bin itself asserts zero
# dropped requests, zero typed rejections, all 3 hot-swaps succeeding
# mid-traffic (≥2 artifact generations observed in responses), a bounded
# queue, and a non-empty shed fraction under the forced-saturation burst.
cargo run --release --offline -q -p qaoa-gnn-bench --bin serve_load -- --smoke
echo "OK: serving loop sheds under saturation and hot-swaps without dropping requests"

echo "==> cache smoke (Zipf replay: hit-rate > 0, cached bits identical to fresh bits)"
# CI-sized Zipf replay of one request stream through a cache-off and a
# cache-on loop (workers=1). The bin itself asserts a non-zero hit rate,
# a zero hit rate on the baseline, and an identical FNV digest over every
# reply's angle bits + rung across both phases.
cargo run --release --offline -q -p qaoa-gnn-bench --bin cache_hit -- --smoke
echo "OK: canonical-form cache hits serve bit-identical replies"

echo "==> chaos smoke (seeded fault schedule: kills, breaker trips, bit-identical replay)"
# Two CI-sized soaks of the same seed under a scripted fault schedule. The
# bin itself asserts exactly-once replies, census restoration after worker
# kills, the breaker tripping and re-closing inside the run, a Ready end
# state, and a bit-identical outcome digest across both runs.
cargo run --release --offline -q -p qaoa-gnn-bench --bin chaos_soak -- --smoke
echo "OK: self-healing loop survives scripted chaos deterministically"

echo "==> crash smoke (SIGKILL the pipeline at scripted wall-phases, resume, diff bits)"
# CI-sized kill-and-resume ladder: a control pipeline runs to completion,
# then a fresh run is SIGKILLed mid-label, mid-epoch, mid-checkpoint-write
# and mid-artifact-save (stall failpoints hold each protocol window open),
# relaunched after every kill, and the final artifact must be byte-identical
# to the control. The bin also reports per-epoch checkpoint overhead.
cargo run --release --offline -q -p qaoa-gnn-bench --bin crash_resume -- --smoke
echo "OK: killed-and-resumed runs reproduce the control artifact byte for byte"

echo "All checks passed."
