//! Fixed-angle label augmentation (§3.3).
//!
//! For regular graphs whose degree falls in the published lookup range
//! (3–11), the fixed-angle conjecture provides instance-independent angles
//! that are often better than what 500 iterations from a random start
//! found. This pass replaces a label with the fixed angles whenever they
//! improve its approximation ratio — mirroring how the paper used the
//! JPMorgan lookup on "about 6% of our dataset".


use qaoa::{fixed_angle, Evaluator, MaxCutHamiltonian, QaoaCircuit};

use crate::dataset::Dataset;

/// Statistics of one augmentation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedAngleStats {
    /// Entries whose graph is regular with degree in the lookup range.
    pub eligible: usize,
    /// Eligible entries whose label actually improved.
    pub improved: usize,
    /// Mean AR gain over improved entries (0 when none improved).
    pub mean_gain: f64,
}

/// Replaces labels with fixed angles where that improves the approximation
/// ratio. Returns the augmented dataset and pass statistics.
pub fn augment(dataset: &Dataset) -> (Dataset, FixedAngleStats) {
    let mut eligible = 0usize;
    let mut improved = 0usize;
    let mut total_gain = 0.0;
    let entries = dataset
        .entries
        .iter()
        .map(|entry| {
            let Some(fa) = fixed_angle::for_graph(&entry.graph) else {
                return entry.clone();
            };
            eligible += 1;
            // Fixed angles are defined for p=1 labels only.
            if entry.params.depth() != 1 {
                return entry.clone();
            }
            let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&entry.graph));
            let mut evaluator = Evaluator::new(&circuit);
            let expectation = evaluator.expectation_in_place(&fa.params);
            let ratio = circuit.hamiltonian().approximation_ratio(expectation);
            if ratio > entry.approx_ratio {
                improved += 1;
                total_gain += ratio - entry.approx_ratio;
                let mut better = entry.clone();
                better.params = fa.params;
                better.expectation = expectation;
                better.approx_ratio = ratio;
                better
            } else {
                entry.clone()
            }
        })
        .collect();
    let stats = FixedAngleStats {
        eligible,
        improved,
        mean_gain: if improved > 0 {
            total_gain / improved as f64
        } else {
            0.0
        },
    };
    (Dataset { entries }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledGraph;
    use qaoa::Params;
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn poor_label(graph: Graph) -> LabeledGraph {
        // Zero angles: AR = (W/2) / opt, deliberately bad.
        let hamiltonian = MaxCutHamiltonian::new(&graph);
        let circuit = QaoaCircuit::new(hamiltonian.clone());
        let params = Params::zeros(1);
        let expectation = circuit.expectation(&params);
        let approx_ratio = hamiltonian.approximation_ratio(expectation);
        LabeledGraph {
            graph,
            params,
            expectation,
            optimal: hamiltonian.optimal_value(),
            approx_ratio,
        }
    }

    #[test]
    fn augment_improves_poor_regular_labels() {
        let mut rng = StdRng::seed_from_u64(131);
        let ds: Dataset = (0..4)
            .map(|_| poor_label(qgraph::generate::random_regular(10, 3, &mut rng).unwrap()))
            .collect();
        let before = ds.mean_approx_ratio();
        let (augmented, stats) = augment(&ds);
        assert_eq!(stats.eligible, 4);
        assert_eq!(stats.improved, 4);
        assert!(stats.mean_gain > 0.0);
        assert!(augmented.mean_approx_ratio() > before);
    }

    #[test]
    fn out_of_range_degrees_untouched() {
        // 2-regular (ring) is below the lookup range.
        let ds: Dataset = vec![poor_label(Graph::cycle(8).unwrap())].into_iter().collect();
        let (augmented, stats) = augment(&ds);
        assert_eq!(stats.eligible, 0);
        assert_eq!(augmented, ds);
    }

    #[test]
    fn irregular_graphs_untouched() {
        let ds: Dataset = vec![poor_label(Graph::star(6).unwrap())].into_iter().collect();
        let (augmented, stats) = augment(&ds);
        assert_eq!(stats.eligible, 0);
        assert_eq!(augmented, ds);
    }

    #[test]
    fn good_labels_never_degraded() {
        // Label a graph well first; augmentation must keep the better label.
        let mut rng = StdRng::seed_from_u64(132);
        let g = qgraph::generate::random_regular(8, 3, &mut rng).unwrap();
        let good = crate::dataset::label_graph(
            &g,
            &crate::dataset::LabelConfig::quick(200),
            &mut rng,
        );
        let before = good.approx_ratio;
        let ds: Dataset = vec![good].into_iter().collect();
        let (augmented, _) = augment(&ds);
        assert!(augmented.entries[0].approx_ratio >= before - 1e-12);
    }

    #[test]
    fn deeper_labels_skipped() {
        let mut rng = StdRng::seed_from_u64(133);
        let g = qgraph::generate::random_regular(6, 3, &mut rng).unwrap();
        let hamiltonian = MaxCutHamiltonian::new(&g);
        let circuit = QaoaCircuit::new(hamiltonian.clone());
        let params = Params::zeros(2);
        let expectation = circuit.expectation(&params);
        let entry = LabeledGraph {
            graph: g,
            params: params.clone(),
            expectation,
            optimal: hamiltonian.optimal_value(),
            approx_ratio: hamiltonian.approximation_ratio(expectation),
        };
        let ds: Dataset = vec![entry.clone()].into_iter().collect();
        let (augmented, stats) = augment(&ds);
        assert_eq!(stats.eligible, 1);
        assert_eq!(stats.improved, 0);
        assert_eq!(augmented.entries[0].params, params);
    }
}
