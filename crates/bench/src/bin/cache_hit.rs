//! Hit-rate / speedup bench for the canonical-form prediction cache.
//!
//! Replays one pre-generated Zipf-distributed request stream (a few
//! graph shapes dominate, a long tail of rarer ones — the shape of
//! production optimizer traffic, where clients re-ask popular instances)
//! through two otherwise identical [`qaoa_gnn::ServeLoop`]s:
//!
//! 1. **cache off** — the `LoopConfig::default()` baseline; every
//!    request runs the full ladder.
//! 2. **cache on** — `CacheConfig::default()` in front of the GNN rung;
//!    repeats of a canonical form are served from memory.
//!
//! Both phases run `workers = 1` and closed-loop `handle_wait`, so the
//! reply stream is deterministic and an FNV-1a digest over every reply's
//! angle bits + rung can prove the tentpole guarantee end to end: the
//! cache changes *when* work happens, never *which bits* are served.
//! The `cached` marker is excluded from the digest — it is the one field
//! a hit is allowed to differ in.
//!
//! ```text
//! cargo run --release -p qaoa-gnn-bench --bin cache_hit            # 200k requests
//! cargo run --release -p qaoa-gnn-bench --bin cache_hit -- --smoke # CI-sized
//! ```
//!
//! Flags: `--requests N` (default 200_000, smoke 4_000), `--pool N`
//! distinct canonical forms (default 48), `--smoke`. Appends a CSV row
//! per phase to `target/experiments/cache_hit_<cores>core.csv`.

use std::process::ExitCode;
use std::time::Instant;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::LabelReport;
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::serve::ServeRequest;
use qaoa_gnn::serve_loop::{LoopConfig, ServeLoop};
use qaoa_gnn::{CacheConfig, RunArtifact, TrainingEnvelope};
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::{Rng, SeedableRng};

fn fail(msg: &str) -> ExitCode {
    eprintln!("FAIL: {msg}");
    ExitCode::FAILURE
}

fn artifact() -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(4242);
    let model = GnnModel::new(
        GnnKind::Gcn,
        gnn::ModelConfig {
            hidden_dim: 4,
            ..gnn::ModelConfig::default()
        },
        &mut rng,
    );
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: 4242,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}

/// `pool_size` distinct in-envelope canonical forms: structured shapes
/// first (the popular head), Erdős–Rényi instances for the tail.
///
/// The pool is deduped up to isomorphism (e.g. `star(3)` ≅ `path(3)`).
/// This matters for the digest: an isomorphic lookup legitimately serves
/// the *representative's* memoized bits, which can differ in the last
/// float bit from a fresh forward pass on the query's own node labeling
/// (summation order). Digest parity is the exact-replay guarantee, so
/// the replayed pool must be isomorphism-free.
fn graph_pool(pool_size: usize) -> Vec<Graph> {
    let mut pool: Vec<Graph> = Vec::new();
    let push_unique = |pool: &mut Vec<Graph>, candidate: Graph| {
        let hash = qgraph::canon::wl_hash(&candidate);
        let duplicate = pool.iter().any(|g| {
            qgraph::canon::wl_hash(g) == hash && qgraph::canon::are_isomorphic(g, &candidate)
        });
        if !duplicate {
            pool.push(candidate);
        }
    };
    for n in 3..=12usize {
        push_unique(&mut pool, Graph::cycle(n).expect("cycle"));
        push_unique(&mut pool, Graph::path(n).expect("path"));
        push_unique(&mut pool, Graph::star(n).expect("star"));
    }
    let mut rng = StdRng::seed_from_u64(515);
    let mut attempts = 0;
    while pool.len() < pool_size && attempts < pool_size * 20 {
        let n = 5 + (attempts % 8);
        push_unique(
            &mut pool,
            qgraph::generate::erdos_renyi(n, 0.5, &mut rng).expect("gnp"),
        );
        attempts += 1;
    }
    pool.truncate(pool_size);
    pool
}

/// A Zipf(s = 1.1) index stream over `pool_size` ranks: rank r is drawn
/// with probability ∝ 1/r^1.1.
fn zipf_stream(pool_size: usize, requests: usize, seed: u64) -> Vec<usize> {
    let weights: Vec<f64> = (1..=pool_size).map(|r| 1.0 / (r as f64).powf(1.1)).collect();
    let total: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(pool_size);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cumulative.push(acc);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..requests)
        .map(|_| {
            let u: f64 = rng.gen();
            cumulative.partition_point(|&c| c < u).min(pool_size - 1)
        })
        .collect()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(hash: u64, value: u64) -> u64 {
    let mut hash = hash;
    for byte in value.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

struct Phase {
    name: &'static str,
    elapsed_secs: f64,
    digest: u64,
    hit_rate: f64,
}

/// Replays the stream through one loop configuration and digests every
/// reply's bits (angles + rung quality, `cached` marker excluded).
fn run_phase(name: &'static str, config: LoopConfig, pool: &[Graph], stream: &[usize]) -> Phase {
    let serve = ServeLoop::new(artifact(), config);
    let mut digest = FNV_OFFSET;
    let start = Instant::now();
    for &index in stream {
        let done = serve.handle_wait(ServeRequest::from_graph(pool[index].clone()));
        let outcome = done.response.result.expect("in-envelope request serves");
        let (gamma, beta) = outcome.angles();
        digest = fnv_u64(digest, gamma.to_bits());
        digest = fnv_u64(digest, beta.to_bits());
        digest = fnv_u64(digest, u64::from(outcome.rung.quality()));
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    let hit_rate = serve.cache_stats().hit_rate();
    Phase { name, elapsed_secs, digest, hit_rate }
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let requests = parse_flag(&args, "--requests").unwrap_or(if smoke { 4_000 } else { 200_000 });
    let pool_size = parse_flag(&args, "--pool").unwrap_or(48).max(1);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let pool = graph_pool(pool_size);
    let stream = zipf_stream(pool.len(), requests, 2024);
    println!(
        "cache_hit: {requests} Zipf requests over {} canonical forms, workers=1, {cores} core(s)",
        pool.len()
    );

    // Single worker: the reply stream is then a deterministic function of
    // the request stream, making digest parity a meaningful assertion.
    let base = LoopConfig::default().with_workers(1).with_batch_size(8);
    let off = run_phase("cache_off", base.clone(), &pool, &stream);
    let on = run_phase(
        "cache_on",
        base.with_cache(CacheConfig::default()),
        &pool,
        &stream,
    );

    let speedup = off.elapsed_secs / on.elapsed_secs.max(1e-9);
    for phase in [&off, &on] {
        println!(
            "{:10} {:>8} req in {:7.2}s = {:>9.0} req/s   hit-rate {:5.1}%   digest {:016x}",
            phase.name,
            requests,
            phase.elapsed_secs,
            requests as f64 / phase.elapsed_secs,
            phase.hit_rate * 100.0,
            phase.digest,
        );
    }
    println!("speedup {speedup:.2}x (single-core, single-worker; see EXPERIMENTS.md caveat)");

    if on.digest != off.digest {
        return fail(&format!(
            "reply digests diverge: cache_off {:016x} vs cache_on {:016x} — cached bits are not \
             identical to fresh bits",
            off.digest, on.digest
        ));
    }
    if on.hit_rate <= 0.0 {
        return fail("cache hit rate is zero on a Zipf replay; the cache never engaged");
    }
    if off.hit_rate != 0.0 {
        return fail("baseline loop reported cache hits; the off phase is miswired");
    }

    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let csv = dir.join(format!("cache_hit_{cores}core.csv"));
    let mut out =
        String::from("phase,requests,pool,elapsed_s,throughput_rps,hit_rate,digest,speedup_vs_off\n");
    for phase in [&off, &on] {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.0},{:.4},{:016x},{:.3}\n",
            phase.name,
            requests,
            pool.len(),
            phase.elapsed_secs,
            requests as f64 / phase.elapsed_secs,
            phase.hit_rate,
            phase.digest,
            off.elapsed_secs / phase.elapsed_secs.max(1e-9),
        ));
    }
    if let Err(e) = std::fs::write(&csv, out) {
        return fail(&format!("writing {}: {e}", csv.display()));
    }
    println!("wrote {}", csv.display());
    println!("cache_hit OK: digest parity, hit-rate {:.1}%", on.hit_rate * 100.0);
    ExitCode::SUCCESS
}
