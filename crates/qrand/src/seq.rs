//! Sequence randomization: Fisher–Yates shuffle and uniform choice.

use crate::{RngCore, SampleUniform};

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, unbiased).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// A uniformly chosen mutable element, or `None` if the slice is empty.
    fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_inclusive(0, i, rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_half_open(0, self.len(), rng)])
        }
    }

    fn choose_mut<R: RngCore + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
        if self.is_empty() {
            None
        } else {
            let i = usize::sample_half_open(0, self.len(), rng);
            Some(&mut self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_moves_something() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: [u8; 0] = [];
        assert!(v.choose(&mut rng).is_none());
        let mut w: Vec<u8> = vec![];
        assert!(w.choose_mut(&mut rng).is_none());
    }

    #[test]
    fn choose_mut_allows_mutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v = [0u8; 3];
        *v.choose_mut(&mut rng).unwrap() = 7;
        assert_eq!(v.iter().filter(|&&x| x == 7).count(), 1);
    }
}
