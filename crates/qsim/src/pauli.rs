//! Pauli-string observables.
//!
//! The cost Hamiltonian is diagonal, but analyzing QAOA states also needs
//! off-diagonal observables: the mixer `Σ X_j`, energy variances, and
//! overlap diagnostics. A [`PauliString`] is a tensor product of `I/X/Y/Z`
//! factors; expectation values are computed exactly by applying the string
//! to a copy of the state (O(2^n), same cost as one gate layer).

use std::fmt;


use crate::{Complex, StateVector};

/// A single-qubit Pauli factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of Pauli factors over a register, e.g. `X I Z`.
///
/// # Example
///
/// ```
/// use qsim::pauli::PauliString;
/// use qsim::StateVector;
///
/// // ⟨+|X|+⟩ = 1 on every qubit of the uniform superposition.
/// let psi = StateVector::uniform_superposition(3);
/// let x0: PauliString = "XII".parse()?;
/// assert!((x0.expectation(&psi) - 1.0).abs() < 1e-12);
/// # Ok::<(), qsim::pauli::ParsePauliError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    factors: Vec<Pauli>,
}

/// Error parsing a Pauli string from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError {
    /// The offending character.
    pub character: char,
    /// Its position in the input.
    pub position: usize,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid pauli character '{}' at position {}",
            self.character, self.position
        )
    }
}

impl std::error::Error for ParsePauliError {}

impl std::str::FromStr for PauliString {
    type Err = ParsePauliError;

    /// Parses e.g. `"XIZY"`; character `i` acts on qubit `i`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let factors = s
            .chars()
            .enumerate()
            .map(|(position, c)| match c {
                'I' | 'i' => Ok(Pauli::I),
                'X' | 'x' => Ok(Pauli::X),
                'Y' | 'y' => Ok(Pauli::Y),
                'Z' | 'z' => Ok(Pauli::Z),
                character => Err(ParsePauliError {
                    character,
                    position,
                }),
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PauliString { factors })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.factors {
            let c = match p {
                Pauli::I => 'I',
                Pauli::X => 'X',
                Pauli::Y => 'Y',
                Pauli::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl PauliString {
    /// Builds a string from factors (factor `i` acts on qubit `i`).
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty.
    pub fn new(factors: Vec<Pauli>) -> Self {
        assert!(!factors.is_empty(), "pauli string must be non-empty");
        PauliString { factors }
    }

    /// The all-identity string on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        Self::new(vec![Pauli::I; n])
    }

    /// A single `pauli` on `qubit` of an `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, pauli: Pauli) -> Self {
        assert!(qubit < n, "qubit {qubit} out of range");
        let mut factors = vec![Pauli::I; n];
        factors[qubit] = pauli;
        Self::new(factors)
    }

    /// Number of qubits the string spans.
    pub fn num_qubits(&self) -> usize {
        self.factors.len()
    }

    /// Number of non-identity factors.
    pub fn weight(&self) -> usize {
        self.factors.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// Applies the string to the state in place.
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn apply(&self, psi: &mut StateVector) {
        assert_eq!(
            psi.num_qubits(),
            self.num_qubits(),
            "state and string register sizes differ"
        );
        // Collect bit masks: X-type flips, Z-type phases. Y = iXZ.
        let mut flip_mask = 0usize;
        let mut phase_mask = 0usize;
        let mut y_count = 0u32;
        for (q, &p) in self.factors.iter().enumerate() {
            match p {
                Pauli::I => {}
                Pauli::X => flip_mask |= 1 << q,
                Pauli::Z => phase_mask |= 1 << q,
                Pauli::Y => {
                    flip_mask |= 1 << q;
                    phase_mask |= 1 << q;
                    y_count += 1;
                }
            }
        }
        let global = match y_count % 4 {
            0 => Complex::ONE,
            1 => Complex::I,
            2 => -Complex::ONE,
            _ => -Complex::I,
        };
        let dim = psi.dim();
        let (re, im) = psi.re_im_mut();
        let mut out = vec![Complex::ZERO; dim];
        for i in 0..dim {
            let j = i ^ flip_mask;
            // Phase from Z/Y factors acting on the *input* basis state:
            // (-1)^{popcount(i & phase_mask)}.
            let sign = if (i & phase_mask).count_ones().is_multiple_of(2) {
                Complex::ONE
            } else {
                -Complex::ONE
            };
            out[j] += global * sign * Complex::new(re[i], im[i]);
        }
        for (i, a) in out.iter().enumerate() {
            re[i] = a.re;
            im[i] = a.im;
        }
    }

    /// Exact expectation `⟨ψ|P|ψ⟩` (real, since `P` is Hermitian).
    ///
    /// # Panics
    ///
    /// Panics if the register sizes differ.
    pub fn expectation(&self, psi: &StateVector) -> f64 {
        let mut applied = psi.clone();
        self.apply(&mut applied);
        psi.inner_product(&applied).re
    }
}

/// The transverse-field mixer `B = Σ_j X_j` expectation — the quantity QAOA
/// drives toward its extremes between layers.
pub fn mixer_expectation(psi: &StateVector) -> f64 {
    (0..psi.num_qubits())
        .map(|q| PauliString::single(psi.num_qubits(), q, Pauli::X).expectation(psi))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    #[test]
    fn parse_and_display_round_trip() {
        let s: PauliString = "XIZY".parse().unwrap();
        assert_eq!(s.to_string(), "XIZY");
        assert_eq!(s.num_qubits(), 4);
        assert_eq!(s.weight(), 3);
        let err = "XQ".parse::<PauliString>().unwrap_err();
        assert_eq!(err.position, 1);
        assert_eq!(err.character, 'Q');
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let z0 = PauliString::single(2, 0, Pauli::Z);
        assert!((z0.expectation(&StateVector::basis_state(2, 0b00)) - 1.0).abs() < 1e-12);
        assert!((z0.expectation(&StateVector::basis_state(2, 0b01)) + 1.0).abs() < 1e-12);
        // Qubit 1 untouched by Z on qubit 0.
        assert!((z0.expectation(&StateVector::basis_state(2, 0b10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let psi = StateVector::uniform_superposition(3);
        for q in 0..3 {
            let x = PauliString::single(3, q, Pauli::X);
            assert!((x.expectation(&psi) - 1.0).abs() < 1e-12);
        }
        assert!((mixer_expectation(&psi) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn y_expectation_on_eigenstate() {
        // |+i⟩ = (|0⟩ + i|1⟩)/√2 is the +1 eigenstate of Y.
        let psi = StateVector::from_amplitudes(vec![
            Complex::from(1.0 / 2f64.sqrt()),
            Complex::new(0.0, 1.0 / 2f64.sqrt()),
        ]);
        let y = PauliString::single(1, 0, Pauli::Y);
        assert!((y.expectation(&psi) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_strings_square_to_identity() {
        let mut psi = StateVector::uniform_superposition(3);
        gates::rz(&mut psi, 0, 0.9);
        gates::rx(&mut psi, 2, 0.4);
        let before = psi.clone();
        let s: PauliString = "YXZ".parse().unwrap();
        s.apply(&mut psi);
        s.apply(&mut psi);
        assert!((psi.fidelity(&before) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn apply_matches_gate_implementation() {
        // X and Z strings must act exactly like the gate kernels.
        let mut a = StateVector::uniform_superposition(2);
        gates::rz(&mut a, 0, 0.31);
        let mut b = a.clone();
        PauliString::single(2, 1, Pauli::X).apply(&mut a);
        gates::x(&mut b, 1);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);

        let mut c = StateVector::uniform_superposition(2);
        let mut d = c.clone();
        PauliString::single(2, 0, Pauli::Z).apply(&mut c);
        gates::z(&mut d, 0);
        assert!((c.fidelity(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_expectation_matches_diagonal_operator() {
        use crate::diagonal::DiagonalOperator;
        let mut psi = StateVector::uniform_superposition(2);
        gates::rzz(&mut psi, 0, 1, 0.8);
        gates::rx_all(&mut psi, 0.5);
        let zz: PauliString = "ZZ".parse().unwrap();
        let op = DiagonalOperator::from_fn(2, |z| {
            let a = (z & 1) as i32;
            let b = ((z >> 1) & 1) as i32;
            if a == b {
                1.0
            } else {
                -1.0
            }
        });
        assert!((zz.expectation(&psi) - op.expectation(&psi)).abs() < 1e-12);
    }

    #[test]
    fn mixer_expectation_bounds() {
        let psi = StateVector::basis_state(4, 7);
        // Basis states have ⟨X⟩ = 0 on every qubit.
        assert!(mixer_expectation(&psi).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "register sizes differ")]
    fn size_mismatch_rejected() {
        let s = PauliString::identity(2);
        let psi = StateVector::zero_state(3);
        let _ = s.expectation(&psi);
    }
}
