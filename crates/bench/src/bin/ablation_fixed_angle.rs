//! §3.3 ablation: the fixed-angle conjecture as a label-quality tool.
//!
//! Two views:
//! 1. Per degree 3–11 (the published lookup range): fixed-angle AR vs
//!    random-init-then-optimize AR on random regular graphs.
//! 2. Dataset coverage: what fraction of a paper-shaped dataset is eligible
//!    (the paper found ~6%) and how much augmentation moves mean quality.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::fixed_angle;
use qaoa::optimize::NelderMead;
use qaoa::warm_start::{self, InitStrategy};
use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::{dataset::Dataset, fixed};
use qaoa_gnn_bench::{f2, f4, print_table, write_csv};

fn main() {
    let config = PipelineConfig::from_env();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xfa);

    // View 1: per-degree comparison.
    let mut rows = Vec::new();
    for degree in fixed_angle::LOOKUP_DEGREES {
        // Smallest even-product size comfortably above the degree.
        let n = if (degree + 1) % 2 == 0 { degree + 1 } else { degree + 2 }.max(8);
        let n = if (n * degree) % 2 == 0 { n } else { n + 1 };
        let fa = fixed_angle::fixed_angles(degree);
        let mut fixed_ars = Vec::new();
        let mut random_ars = Vec::new();
        let trials = 5;
        for _ in 0..trials {
            let g = qgraph::generate::random_regular(n, degree, &mut rng)
                .expect("feasible regular shape");
            let ham = MaxCutHamiltonian::new(&g);
            let circuit = QaoaCircuit::new(ham.clone());
            fixed_ars.push(ham.approximation_ratio(circuit.expectation(&fa.params)));
            let outcome = warm_start::run(
                &ham,
                Params::random(1, &mut rng),
                InitStrategy::Random,
                &NelderMead::new(config.labeling.iterations),
                &mut rng,
            );
            random_ars.push(outcome.final_ratio);
        }
        let (fixed_mean, _) = qgraph::stats::mean_std(&fixed_ars);
        let (random_mean, _) = qgraph::stats::mean_std(&random_ars);
        rows.push(vec![
            degree.to_string(),
            n.to_string(),
            f4(fa.params.gammas()[0]),
            f4(fa.params.betas()[0]),
            f4(fa.tree_edge_value),
            f4(fixed_mean),
            f4(random_mean),
        ]);
    }
    let header = [
        "degree",
        "n",
        "gamma*",
        "beta*",
        "tree_edge_value",
        "fixed_ar",
        "random_opt_ar",
    ];
    print_table("Fixed angles vs random-init optimization", &header, &rows);
    let path = write_csv("ablation_fixed_angle_degrees.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());

    // View 2: dataset coverage and augmentation effect.
    println!("\nlabeling {} graphs for the coverage study...", config.dataset.count);
    let dataset = Dataset::generate(&config.dataset, &config.labeling, config.seed)
        .expect("default dataset spec is valid");
    let before = dataset.mean_approx_ratio();
    let (augmented, stats) = fixed::augment(&dataset);
    let rows = vec![vec![
        dataset.len().to_string(),
        stats.eligible.to_string(),
        f2(100.0 * stats.eligible as f64 / dataset.len() as f64),
        stats.improved.to_string(),
        f4(stats.mean_gain),
        f4(before),
        f4(augmented.mean_approx_ratio()),
    ]];
    let header = [
        "dataset",
        "eligible",
        "eligible_%",
        "improved",
        "mean_gain",
        "mean_ar_before",
        "mean_ar_after",
    ];
    print_table("Fixed-angle dataset coverage (paper: ~6%)", &header, &rows);
    let path = write_csv("ablation_fixed_angle_coverage.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
