//! INTERP deepening: from a predicted p=1 start to a p=4 schedule.
//!
//! ```text
//! cargo run --release --example deepening
//! ```
//!
//! The paper predicts p=1 angles and lists deeper circuits as future work.
//! This example shows the natural composition: take the fixed-angle p=1
//! start (a stand-in for the GNN prediction), optimize, then repeatedly
//! INTERP-extend and re-optimize — the approximation ratio climbs with
//! depth while every level starts warm.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::interp;
use qaoa::optimize::NelderMead;
use qaoa::{fixed_angle, MaxCutHamiltonian};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2025);
    let graph = qgraph::generate::random_regular(12, 3, &mut rng)?;
    let hamiltonian = MaxCutHamiltonian::new(&graph);
    println!(
        "instance: 3-regular, 12 nodes, optimal cut {}",
        hamiltonian.optimal_value()
    );

    let start = fixed_angle::fixed_angles(3).params;
    println!(
        "p=1 warm start: γ={:.3}, β={:.3}",
        start.gammas()[0],
        start.betas()[0]
    );

    let outcomes = interp::deepen(&hamiltonian, start, 4, &NelderMead::new(200), &mut rng);
    println!("\ndepth  initial AR  final AR  evaluations");
    for (i, outcome) in outcomes.iter().enumerate() {
        println!(
            "{:>5}  {:>10.4}  {:>8.4}  {:>11}",
            i + 1,
            outcome.initial_ratio,
            outcome.final_ratio,
            outcome.evaluations
        );
    }
    let last = outcomes.last().expect("at least one depth");
    println!(
        "\nfinal p=4 schedule: γ = {:?}",
        last.final_params
            .gammas()
            .iter()
            .map(|g| (g * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
