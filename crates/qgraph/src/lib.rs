//! # qgraph — graph substrate for the QAOA-GNN reproduction
//!
//! This crate provides everything graph-shaped that the paper's pipeline
//! needs:
//!
//! * [`Graph`] — a simple undirected weighted graph with validated
//!   construction and cheap neighbor queries.
//! * [`generate`] — synthetic instance generators (random regular graphs —
//!   the paper's dataset — plus Erdős–Rényi and a family of structured
//!   graphs used by the examples).
//! * [`features`] — node-feature construction: degree plus one-hot node id,
//!   exactly as described in §3.1 of the paper.
//! * [`io`] — the text file format the paper stores each graph in, plus a
//!   TSV dataset index.
//! * [`stats`] — degree / size histograms used for Figure 2.
//! * [`maxcut`] — exact (brute-force) and heuristic Max-Cut solvers used to
//!   compute approximation ratios.
//! * [`canon`] — permutation-invariant Weisfeiler–Leman canonical hashing
//!   and an exact isomorphism check, used by the prediction cache and the
//!   labeling deduper.
//!
//! ## Example
//!
//! ```
//! use qgraph::{Graph, maxcut};
//!
//! # fn main() -> Result<(), qgraph::GraphError> {
//! // A 4-cycle: the optimal cut severs all four edges.
//! let g = Graph::cycle(4)?;
//! let best = maxcut::brute_force(&g);
//! assert_eq!(best.value, 4.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;

pub mod canon;
pub mod features;
pub mod generate;
pub mod io;
pub mod maxcut;
pub mod stats;

pub use error::{GraphError, ParseError, ParseErrorKind};
pub use graph::{Edge, Graph};
