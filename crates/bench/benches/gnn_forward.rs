//! Micro-benchmarks of GNN inference and training steps for all four
//! architectures — the per-example cost of the §4.1 training loop.

use qbench::Bench;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::{GnnKind, GnnModel, GraphContext, ModelConfig};
use tensor::optim::{Adam, Optimizer};
use tensor::Matrix;

fn context() -> GraphContext {
    let mut rng = StdRng::seed_from_u64(21);
    let graph = qgraph::generate::random_regular(12, 4, &mut rng).expect("feasible shape");
    GraphContext::new(&graph, &ModelConfig::default().features, 0.0)
}

fn bench_predict(bench: &mut Bench) {
    let ctx = context();
    for kind in GnnKind::ALL {
        let mut rng = StdRng::seed_from_u64(22);
        let model = GnnModel::new(kind, ModelConfig::default(), &mut rng);
        let ctx = &ctx;
        bench.bench_with_input("gnn_predict_n12", kind, move || model.predict_ctx(ctx));
    }
}

fn bench_train_step(bench: &mut Bench) {
    let ctx = context();
    let target = Matrix::row_vector(&[0.3, 0.7]);
    for kind in GnnKind::ALL {
        let mut rng = StdRng::seed_from_u64(23);
        let model = GnnModel::new(kind, ModelConfig::default(), &mut rng);
        let mut optimizer = Adam::new(0.01);
        let (ctx, target) = (&ctx, &target);
        bench.bench_with_input("gnn_train_step_n12", kind, move || {
            model.tape().reset();
            let out = model.forward(ctx, &mut rng);
            let loss = out.mse(target);
            model.tape().backward(&loss);
            optimizer.step(model.parameters());
        });
    }
}

fn bench_hidden_dim_scaling(bench: &mut Bench) {
    let ctx = context();
    for hidden in [16usize, 32, 64, 128] {
        let mut rng = StdRng::seed_from_u64(24);
        let model = GnnModel::new(
            GnnKind::Gin,
            ModelConfig {
                hidden_dim: hidden,
                ..ModelConfig::default()
            },
            &mut rng,
        );
        let ctx = &ctx;
        bench.bench_with_input("gin_predict_by_width", hidden, move || {
            model.predict_ctx(ctx)
        });
    }
}

fn main() {
    let mut bench = Bench::from_env();
    bench_predict(&mut bench);
    bench_train_step(&mut bench);
    bench_hidden_dim_scaling(&mut bench);
    bench.finish();
}
