//! In-tree property-based testing.
//!
//! A deliberately small replacement for the subset of `proptest` this
//! workspace used: generator combinators, a configurable case count, a
//! failing-seed report with replay-by-seed, and basic shrinking for
//! integers and vectors.
//!
//! # Model
//!
//! A [`Gen`] produces values from a seeded [`qrand::rngs::StdRng`] and
//! knows how to propose *smaller* variants of a failing value
//! ([`Gen::shrink`]). Properties return an [`Outcome`]; the
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`] macros emit early
//! returns, and the [`properties!`] macro packages everything as `#[test]`
//! functions:
//!
//! ```
//! qcheck::properties! {
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         qcheck::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {} // (doctest scaffolding)
//! ```
//!
//! # Determinism and replay
//!
//! Case seeds derive deterministically from the case index, so a failure
//! is reproducible by rerunning the same test binary. Each failure report
//! prints the case seed; exporting `QCHECK_SEED=<seed>` reruns exactly
//! that case (then shrinks and reports as usual). `QCHECK_CASES=<n>`
//! scales the number of cases globally without recompiling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use qrand::rngs::StdRng;
use qrand::seq::SliceRandom;
use qrand::{Rng, SampleUniform, SeedableRng};

/// Result of evaluating a property on one generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The property held.
    Pass,
    /// The case did not meet the property's assumptions; draw another.
    Discard,
    /// The property failed with the given message.
    Fail(String),
}

impl Outcome {
    /// Shorthand for `Outcome::Fail(msg.into())`.
    pub fn fail(msg: impl Into<String>) -> Outcome {
        Outcome::Fail(msg.into())
    }
}

/// A value generator with optional shrinking.
pub trait Gen {
    /// The generated type.
    type Item;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Item;

    /// Proposes strictly "smaller" variants of a failing value, best first.
    /// The default proposes nothing (no shrinking).
    fn shrink(&self, value: &Self::Item) -> Vec<Self::Item> {
        let _ = value;
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Item = G::Item;
    fn generate(&self, rng: &mut StdRng) -> Self::Item {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Item) -> Vec<Self::Item> {
        (**self).shrink(value)
    }
}

// ---------------------------------------------------------------------------
// Primitive generators: ranges are generators, proptest-style.
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_gen {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Item = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*value, self.start)
            }
        }
        impl Gen for RangeInclusive<$t> {
            type Item = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*value, *self.start())
            }
        }
    )*};
}
impl_int_range_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer shrink candidates: the range minimum, then the halving sequence
/// `value − (value−lo)/2, value − (value−lo)/4, …` down to the predecessor,
/// ordered most-aggressive first. The halving ladder lets the greedy shrink
/// loop binary-search toward a failure boundary in O(log) steps instead of
/// decrementing one at a time.
fn shrink_int<T>(value: T, lo: T) -> Vec<T>
where
    T: SampleUniform + PartialEq + Copy + Midpoint + Pred,
{
    let mut out = Vec::new();
    if value == lo {
        return out;
    }
    out.push(lo);
    // Walk candidate = midpoint(candidate, value) from lo toward value:
    // each iteration halves the remaining distance, so the ladder has at
    // most bit-width entries.
    let mut candidate = T::midpoint(lo, value);
    while candidate != value && !out.contains(&candidate) {
        out.push(candidate);
        candidate = T::midpoint(candidate, value);
    }
    let pred = value.pred();
    if pred != value && !out.contains(&pred) {
        out.push(pred);
    }
    out
}

/// Midpoint of two values, rounding toward the first.
pub trait Midpoint {
    /// `lo + (hi - lo) / 2` without overflow.
    fn midpoint(lo: Self, hi: Self) -> Self;
}

/// Predecessor of a value (toward the range minimum).
pub trait Pred {
    /// `self - 1` (saturating).
    fn pred(self) -> Self;
}

macro_rules! impl_mid_pred {
    ($($t:ty),*) => {$(
        impl Midpoint for $t {
            fn midpoint(lo: Self, hi: Self) -> Self {
                lo + (hi - lo) / 2
            }
        }
        impl Pred for $t {
            fn pred(self) -> Self {
                self.saturating_sub(1)
            }
        }
    )*};
}
impl_mid_pred!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_gen {
    ($($t:ty),*) => {$(
        impl Gen for Range<$t> {
            type Item = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            // Floats shrink to the range minimum only: anything cleverer
            // needs care around signs and kinks, and the minimum is already
            // the most readable counterexample coordinate.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                if *value != self.start { vec![self.start] } else { Vec::new() }
            }
        }
        impl Gen for RangeInclusive<$t> {
            type Item = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                if *value != *self.start() { vec![*self.start()] } else { Vec::new() }
            }
        }
    )*};
}
impl_float_range_gen!(f32, f64);

// ---------------------------------------------------------------------------
// Combinators
// ---------------------------------------------------------------------------

/// Full-range `u64` generator (the classic "arbitrary seed").
pub fn any_u64() -> RangeInclusive<u64> {
    0..=u64::MAX
}

/// Generator for a constant.
pub fn just<T: Clone>(value: T) -> Just<T> {
    Just(value)
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Gen for Just<T> {
    type Item = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice from a fixed list; shrinks toward earlier entries.
pub fn choice<T: Clone, const N: usize>(options: [T; N]) -> Choice<T> {
    assert!(N > 0, "choice: options must be non-empty");
    Choice(options.to_vec())
}

/// See [`choice`].
#[derive(Debug, Clone)]
pub struct Choice<T>(Vec<T>);

impl<T: Clone> Gen for Choice<T> {
    type Item = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.choose(rng).expect("non-empty").clone()
    }
    fn shrink(&self, _value: &T) -> Vec<T> {
        // Without Eq we cannot locate the value; propose the first option
        // (the conventional "simplest") as the only candidate.
        vec![self.0[0].clone()]
    }
}

/// Vector generator: length drawn from `len`, elements from `element`.
pub fn vec<G: Gen, L: Gen<Item = usize>>(element: G, len: L) -> VecGen<G, L> {
    VecGen { element, len }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecGen<G, L> {
    element: G,
    len: L,
}

impl<G: Gen, L: Gen<Item = usize>> Gen for VecGen<G, L>
where
    G::Item: Clone,
{
    type Item = Vec<G::Item>;

    fn generate(&self, rng: &mut StdRng) -> Vec<G::Item> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Item>) -> Vec<Vec<G::Item>> {
        let mut out = Vec::new();
        let n = value.len();
        // Shorter prefixes first (halving), respecting the length range is
        // the runner's job via re-testing — candidates that violate the
        // property's own length assumptions will simply not fail again.
        if n > 0 {
            out.push(value[..n / 2].to_vec());
            if n > 1 {
                out.push(value[..n - 1].to_vec());
            }
        }
        // Element-wise shrinks, one position at a time (bounded fan-out).
        for (i, v) in value.iter().enumerate().take(8) {
            for candidate in self.element.shrink(v).into_iter().take(2) {
                let mut copy = value.clone();
                copy[i] = candidate;
                out.push(copy);
            }
        }
        out
    }
}

/// Maps a generator through a function (no shrinking through the map).
pub fn map<G: Gen, T, F: Fn(G::Item) -> T>(gen: G, f: F) -> Map<G, F> {
    Map { gen, f }
}

/// See [`map`].
pub struct Map<G, F> {
    gen: G,
    f: F,
}

impl<G: Gen, T, F: Fn(G::Item) -> T> Gen for Map<G, F> {
    type Item = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.gen.generate(rng))
    }
}

macro_rules! impl_tuple_gen {
    ($($g:ident/$v:ident/$i:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+)
        where
            $($g::Item: Clone,)+
        {
            type Item = ($($g::Item,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Item {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Item) -> Vec<Self::Item> {
                // One component shrinks per candidate; keep each component's
                // full ladder so the greedy loop can binary-search toward a
                // failure boundary (truncating it stalls the shrink).
                let mut out = Vec::new();
                $(
                    for candidate in self.$i.shrink(&value.$i) {
                        let mut copy = value.clone();
                        copy.$i = candidate;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}
impl_tuple_gen!(A/a/0);
impl_tuple_gen!(A/a/0, B/b/1);
impl_tuple_gen!(A/a/0, B/b/1, C/c/2);
impl_tuple_gen!(A/a/0, B/b/1, C/c/2, D/d/3);
impl_tuple_gen!(A/a/0, B/b/1, C/c/2, D/d/3, E/e/4);
impl_tuple_gen!(A/a/0, B/b/1, C/c/2, D/d/3, E/e/4, F/f/5);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required (default 64, env `QCHECK_CASES`).
    pub cases: u32,
    /// Maximum accepted shrink steps per failure.
    pub max_shrink_steps: u32,
    /// Discard budget as a multiple of `cases`.
    pub max_discard_ratio: u32,
    /// Base seed for case-seed derivation.
    pub base_seed: u64,
    /// Replay exactly this case seed (env `QCHECK_SEED`), then stop.
    pub replay_seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_shrink_steps: 256,
            max_discard_ratio: 10,
            base_seed: 0x5eed_0000_0000_0000,
            replay_seed: None,
        }
    }
}

impl Config {
    /// Default configuration with `QCHECK_CASES`/`QCHECK_SEED` applied.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Ok(cases) = std::env::var("QCHECK_CASES") {
            if let Ok(n) = cases.trim().parse::<u32>() {
                cfg.cases = n.max(1);
            }
        }
        if let Ok(seed) = std::env::var("QCHECK_SEED") {
            let s = seed.trim().trim_start_matches("0x");
            cfg.replay_seed = u64::from_str_radix(s, 16)
                .ok()
                .or_else(|| seed.trim().parse::<u64>().ok());
        }
        cfg
    }

    /// Overrides the case count.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::from_env()
        }
    }
}

fn case_seed(base: u64, index: u64) -> u64 {
    // SplitMix64-style mix of (base, index): decorrelates consecutive cases.
    let mut z = base
        .wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Checks `prop` against `cfg.cases` generated cases with default config.
///
/// # Panics
///
/// Panics with a replayable report if the property is falsified (or if the
/// discard budget is exhausted).
pub fn check<G: Gen>(name: &str, gen: &G, prop: impl Fn(&G::Item) -> Outcome)
where
    G::Item: Debug + Clone,
{
    check_with(&Config::from_env(), name, gen, prop);
}

/// [`check`] with an explicit configuration.
///
/// # Panics
///
/// Panics with a replayable report if the property is falsified (or if the
/// discard budget is exhausted).
pub fn check_with<G: Gen>(cfg: &Config, name: &str, gen: &G, prop: impl Fn(&G::Item) -> Outcome)
where
    G::Item: Debug + Clone,
{
    if let Some(seed) = cfg.replay_seed {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen.generate(&mut rng);
        match prop(&value) {
            Outcome::Pass => println!("[qcheck] {name}: replay seed {seed:#018x} passes"),
            Outcome::Discard => println!("[qcheck] {name}: replay seed {seed:#018x} discarded"),
            Outcome::Fail(msg) => report_failure(cfg, name, gen, &prop, value, msg, seed, 0),
        }
        return;
    }

    let mut passes: u32 = 0;
    let mut discards: u32 = 0;
    let mut index: u64 = 0;
    while passes < cfg.cases {
        assert!(
            discards <= cfg.cases * cfg.max_discard_ratio,
            "[qcheck] property '{name}': discard budget exhausted \
             ({discards} discards for {passes} passes) — loosen the \
             generator or the prop_assume! conditions"
        );
        let seed = case_seed(cfg.base_seed, index);
        index += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let value = gen.generate(&mut rng);
        match prop(&value) {
            Outcome::Pass => passes += 1,
            Outcome::Discard => discards += 1,
            Outcome::Fail(msg) => report_failure(cfg, name, gen, &prop, value, msg, seed, passes),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn report_failure<G: Gen>(
    cfg: &Config,
    name: &str,
    gen: &G,
    prop: &impl Fn(&G::Item) -> Outcome,
    original: G::Item,
    mut message: String,
    seed: u64,
    passes_before: u32,
) where
    G::Item: Debug + Clone,
{
    // Greedy shrink: take the first candidate that still fails; repeat.
    let mut current = original.clone();
    let mut steps = 0u32;
    'outer: while steps < cfg.max_shrink_steps {
        for candidate in gen.shrink(&current) {
            if let Outcome::Fail(msg) = prop(&candidate) {
                current = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    panic!(
        "[qcheck] property '{name}' falsified after {passes_before} passing case(s)\n\
         case seed: {seed:#018x}  (replay: QCHECK_SEED={seed:#x} cargo test {name})\n\
         minimal counterexample ({steps} shrink step(s)): {current:?}\n\
         original counterexample: {original:?}\n\
         error: {message}"
    );
}

// ---------------------------------------------------------------------------
// Assertion macros (proptest-compatible names)
// ---------------------------------------------------------------------------

/// Asserts a condition inside a property; on failure returns
/// [`Outcome::Fail`] with the stringified condition (or a format message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return $crate::Outcome::fail(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return $crate::Outcome::fail(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(l == r) {
                    return $crate::Outcome::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if l == r {
                    return $crate::Outcome::fail(format!(
                        "assertion failed: {} != {} (both {:?})",
                        stringify!($left), stringify!($right), l
                    ));
                }
            }
        }
    };
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::Outcome::Discard;
        }
    };
}

/// Declares property tests: each `fn name(arg in gen, ...) { body }` becomes
/// a `#[test]` running [`check`] over the tuple of generators. An optional
/// leading `cases = N;` overrides the case count for the whole block.
#[macro_export]
macro_rules! properties {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),* $(,)?) $body:block
    )*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let gen = ($($gen,)*);
                let cfg = $cfg;
                $crate::check_with(&cfg, stringify!($name), &gen, |__case| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(__case);
                    $body
                    #[allow(unreachable_code)]
                    $crate::Outcome::Pass
                });
            }
        )*
    };
    (cases = $cases:expr; $($rest:tt)*) => {
        $crate::properties!(@cfg ($crate::Config::with_cases($cases)); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::properties!(@cfg ($crate::Config::from_env()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 32,
            ..Config::default()
        };
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        check_with(&cfg, "tautology", &(0u64..100), |_| {
            counter.set(counter.get() + 1);
            Outcome::Pass
        });
        count += counter.get();
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let cfg = Config {
            cases: 200,
            ..Config::default()
        };
        let err = std::panic::catch_unwind(|| {
            check_with(&cfg, "finds_big", &(0u64..1000), |&v| {
                if v >= 500 {
                    Outcome::fail("too big")
                } else {
                    Outcome::Pass
                }
            });
        })
        .expect_err("property must be falsified");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("falsified"), "{msg}");
        assert!(msg.contains("QCHECK_SEED="), "{msg}");
        // Shrinking must land exactly on the boundary value 500.
        assert!(msg.contains("minimal counterexample"), "{msg}");
        assert!(msg.contains("shrink step(s)): 500\n"), "{msg}");
    }

    #[test]
    fn discard_budget_enforced() {
        let cfg = Config {
            cases: 10,
            max_discard_ratio: 2,
            ..Config::default()
        };
        let err = std::panic::catch_unwind(|| {
            check_with(&cfg, "discards_everything", &(0u64..10), |_| Outcome::Discard);
        })
        .expect_err("must exhaust discard budget");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("discard budget"), "{msg}");
    }

    #[test]
    fn vec_shrink_prefers_shorter() {
        let gen = vec(0u64..100, 0usize..=10);
        let candidates = gen.shrink(&std::vec![7, 8, 9, 10]);
        assert_eq!(candidates[0], std::vec![7, 8]);
        assert!(candidates.iter().any(|c| c.len() == 3));
    }

    #[test]
    fn int_shrink_walks_toward_range_start() {
        let gen = 5u64..100;
        let candidates = gen.shrink(&80);
        assert_eq!(candidates[0], 5);
        assert!(candidates.contains(&79));
        assert!(gen.shrink(&5).is_empty());
    }

    #[test]
    fn tuple_shrink_varies_one_coordinate() {
        let gen = (0u64..10, 0u64..10);
        for cand in gen.shrink(&(3, 4)) {
            let moved = usize::from(cand.0 != 3) + usize::from(cand.1 != 4);
            assert_eq!(moved, 1, "exactly one coordinate shrinks per candidate");
        }
    }

    #[test]
    fn choice_and_just_generate() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = choice([10, 20, 30]);
        for _ in 0..20 {
            assert!([10, 20, 30].contains(&c.generate(&mut rng)));
        }
        assert_eq!(just(42).generate(&mut rng), 42);
    }

    #[test]
    fn map_transforms() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = map(0u64..10, |v| v * 2);
        for _ in 0..20 {
            assert_eq!(g.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn replay_seed_regenerates_same_case() {
        let seed = 0xdead_beef_u64;
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let gen = (0u64..1000, 0.0f64..1.0);
        assert_eq!(gen.generate(&mut a).0, gen.generate(&mut b).0);
    }

    properties! {
        cases = 16;

        fn macro_declares_tests(a in 0u64..50, b in 0u64..50) {
            prop_assume!(a + b < 100);
            prop_assert!(a + b < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a + b + 1, a + b);
        }

        fn macro_supports_vec_gens(values in vec(-5.0f64..5.0, 1usize..8)) {
            prop_assert!(!values.is_empty());
            prop_assert!(values.iter().all(|v| (-5.0..5.0).contains(v)));
        }
    }
}
