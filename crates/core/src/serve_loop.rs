//! The throughput layer: a concurrent request loop over [`GuardedPredictor`].
//!
//! [`crate::serve`] makes one request safe; this module makes millions of
//! them concurrent — and keeps the loop itself alive when its parts die. A
//! [`ServeLoop`] owns a small pool of worker threads fed from one bounded
//! queue, and layers six mechanisms on top of the degradation ladder:
//!
//! **Batched admission.** [`ServeLoop::submit`] enqueues a typed
//! [`ServeRequest`] and returns a [`Ticket`] immediately; workers drain
//! the queue in batches of [`LoopConfig::batch_size`], taking the queue
//! lock once per batch rather than once per request and resolving the
//! current artifact generation once per batch rather than once per
//! request. Exactly one [`Completed`] reply exists per submitted request
//! — the loop structurally cannot drop work, because workers refuse to
//! exit while the queue is non-empty (even during shutdown) and a worker
//! that dies mid-batch requeues its unanswered claims (below).
//!
//! **Lock-free artifact hot-swap.** The active model is published through
//! a [`qpool::swap::SwapCell`] as a `(generation, artifact)` pair.
//! [`ServeLoop::swap_artifact`] validates a retrained [`RunArtifact`]
//! (behind the `hot_swap` failpoint — a rejected or panicking swap leaves
//! the old generation serving untouched) and swaps it in atomically:
//! in-flight requests keep the `Arc` they already loaded, later batches
//! observe the new generation and rebuild their worker-local predictor
//! from the shared weight image. Readers never block on writers and vice
//! versa; the memory-ordering argument lives in `qpool::swap` and is
//! summarized in DESIGN.md §"Serving at throughput". Worker-local
//! rebuilds are necessary, not an optimization: the autodiff tape inside
//! [`gnn::GnnModel`] is single-threaded (`Rc<RefCell<…>>`), so threads
//! share artifact *bytes* and each own their *model*.
//!
//! **Load shedding.** The queue is bounded by [`LoopConfig::queue_capacity`]
//! and never grows past it. Between [`LoopConfig::shed_watermark`] and
//! capacity, newly admitted [`Priority::Normal`] requests are marked to
//! shed — served from the fixed-angle rung, recorded as
//! [`crate::serve::SkipReason::Shed`] — while [`Priority::High`] requests
//! keep the full ladder. At capacity, *every* new request sheds inline on
//! the caller's own thread ([`Ticket::Ready`]), which simultaneously
//! bounds memory and applies backpressure. A request whose
//! [`ServeRequest::deadline_micros`] expires while queued sheds at
//! execution time rather than being served late at full quality. Shed
//! answers are still real answers off the ladder — degraded, accounted,
//! never dropped.
//!
//! **Worker supervision.** Per-request panics are contained by the ladder
//! and an outer `catch_unwind`, but a panic *between* requests (the
//! `worker` failpoint models this: allocator faults, poisoned locks, bugs
//! in the batching code itself) kills the worker thread. Each worker holds
//! a census guard that decrements a live-worker count on *any* exit and
//! wakes the supervisor thread; a [`BatchGuard`] pushes the worker's
//! claimed-but-unanswered jobs back to the *front* of the queue during
//! unwind, so nothing the dead worker held is lost. The supervisor
//! respawns workers up to the configured target (each respawn gets a
//! fresh generation-tagged thread name and bumps
//! [`LoopMetrics::respawns`]), and its periodic tick also reaps queued
//! jobs whose deadline expired while no worker picked them up — answering
//! them shed instead of letting a stalled pool strand tickets.
//!
//! **Circuit breaker on the GNN rung.** Every non-shed request passes
//! through a request-indexed [`CircuitBreaker`] (see [`crate::breaker`])
//! keyed to the artifact generation. Persistent GNN failures (panics,
//! NaNs, rebuild failures, verification failures) trip it Open: traffic
//! is answered model-free at fixed cost, recorded as
//! [`crate::serve::SkipReason::BreakerOpen`], until a deterministic
//! schedule of Half-Open probes observes the model serving again. A
//! hot-swap to a fresh generation resets the breaker — a retrained
//! artifact starts with a clean record.
//!
//! **Health state machine.** [`ServeLoop::health`] folds the above into
//! one observable state:
//!
//! ```text
//! Starting ──first worker picks up work──► Ready ◄──────────┐
//!                                            │              │ last reason
//!                     any degradation reason │              │ clears
//!                     (workers down, breaker │              │
//!                     not closed, queue past │              ▼
//!                     watermark, model down) └─────────► Degraded
//!
//!        any state ──ServeLoop dropped──► Draining (terminal)
//! ```
//!
//! [`HealthReport::reasons`] lists every active cause, so "Degraded" is
//! always attributable. [`ServeLoop::metrics`] exposes the full counter
//! set (sheds by cause, breaker trips, respawns, per-rung counts) as a
//! [`LoopMetrics`] snapshot serializable via `core::json`.
//!
//! The whole layer is deterministic under test: the chaos harness
//! (`tests/chaos_soak.rs`, `bench chaos_soak`) drives thousands of
//! requests under a seeded [`crate::faults::FaultSchedule`] and asserts
//! exactly-once replies, census recovery, bounded breaker trip/recovery,
//! and bit-identical outcome sequences across runs of the same seed.
//!
//! ```no_run
//! use qaoa_gnn::serve_loop::{LoopConfig, ServeLoop};
//! use qaoa_gnn::serve::ServeRequest;
//! use qaoa_gnn::store::RunArtifact;
//!
//! let artifact = RunArtifact::load("run.artifact.json")?;
//! let serve = ServeLoop::new(artifact, LoopConfig::default());
//! let ticket = serve.submit(ServeRequest::from_text("n 3\ne 0 1\ne 1 2\ne 0 2\n"));
//! let done = ticket.wait();
//! println!("gen {}: {:?}", done.generation, done.response.result);
//! println!("health: {}", serve.health().state);
//! # Ok::<(), qaoa_gnn::store::ArtifactError>(())
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qpool::swap::SwapCell;

use crate::breaker::{
    BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker, GnnObservation,
};
use crate::faults;
use crate::cache::{CacheConfig, CacheStats, PredictionCache};
use crate::serve::{
    model_free_response, shed_response, GuardedPredictor, Priority, RequestError, Rung,
    ServeConfig, ServeRequest, ServeResponse, SkipReason,
};
use crate::store::RunArtifact;

/// How often the supervisor wakes on its own (besides being notified by a
/// dying worker) to respawn missing workers and reap expired deadlines.
const SUPERVISOR_TICK: Duration = Duration::from_millis(2);

/// Sizing and policy for a [`ServeLoop`]. Same builder + env-override
/// treatment as [`crate::pipeline::PipelineConfig`].
#[derive(Debug, Clone)]
pub struct LoopConfig {
    /// Worker threads draining the queue. `0` resolves to
    /// "available parallelism − 1" (leaving the submitting thread a core),
    /// floored at 1. The supervisor holds the pool at this census.
    pub workers: usize,
    /// Hard queue bound: at this depth new requests shed inline on the
    /// caller thread instead of enqueueing. Memory is bounded by
    /// construction.
    pub queue_capacity: usize,
    /// Soft bound: at this depth newly admitted [`Priority::Normal`]
    /// requests are marked to shed. Clamped to `queue_capacity`.
    pub shed_watermark: usize,
    /// Jobs a worker claims per queue-lock acquisition (also the grain at
    /// which workers re-resolve the published artifact generation).
    pub batch_size: usize,
    /// Per-request serving policy handed to every worker's predictor.
    pub serve: ServeConfig,
    /// Circuit-breaker policy for the GNN rung (see [`crate::breaker`]).
    pub breaker: BreakerConfig,
    /// Canonical-form prediction cache sizing (see [`crate::cache`]).
    /// Defaults to [`CacheConfig::disabled`] — caching is opt-in, so the
    /// request-for-request determinism of existing deployments (and the
    /// chaos replay suite) is unchanged unless a deployment asks for it.
    pub cache: CacheConfig,
}

impl Default for LoopConfig {
    fn default() -> Self {
        LoopConfig {
            workers: 0,
            queue_capacity: 1024,
            shed_watermark: 768,
            batch_size: 32,
            serve: ServeConfig::default(),
            breaker: BreakerConfig::default(),
            cache: CacheConfig::disabled(),
        }
    }
}

impl LoopConfig {
    /// [`Default::default`] with environment overrides:
    /// `QAOA_GNN_SERVE_WORKERS`, `QAOA_GNN_SERVE_QUEUE` (capacity),
    /// `QAOA_GNN_SERVE_SHED` (watermark), `QAOA_GNN_SERVE_BATCH`, plus
    /// everything [`ServeConfig::from_env`] and
    /// [`BreakerConfig::from_env`] read. The prediction cache stays
    /// disabled unless any `QAOA_GNN_CACHE_*` variable is present, in
    /// which case [`CacheConfig::from_env`] sizes it.
    pub fn from_env() -> Self {
        let cache_keys = [
            "QAOA_GNN_CACHE_SHARDS",
            "QAOA_GNN_CACHE_ENTRIES",
            "QAOA_GNN_CACHE_BYTES",
        ];
        let cache = if cache_keys.iter().any(|k| std::env::var_os(k).is_some()) {
            CacheConfig::from_env()
        } else {
            CacheConfig::disabled()
        };
        let mut config = LoopConfig {
            serve: ServeConfig::from_env(),
            breaker: BreakerConfig::from_env(),
            cache,
            ..LoopConfig::default()
        };
        let parse = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        if let Some(workers) = parse("QAOA_GNN_SERVE_WORKERS") {
            config.workers = workers;
        }
        if let Some(capacity) = parse("QAOA_GNN_SERVE_QUEUE") {
            config.queue_capacity = capacity;
        }
        if let Some(watermark) = parse("QAOA_GNN_SERVE_SHED") {
            config.shed_watermark = watermark;
        }
        if let Some(batch) = parse("QAOA_GNN_SERVE_BATCH") {
            config.batch_size = batch;
        }
        config
    }

    /// Builder-style: sets the worker-thread count (`0` = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style: sets the hard queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Builder-style: sets the shed watermark.
    pub fn with_shed_watermark(mut self, shed_watermark: usize) -> Self {
        self.shed_watermark = shed_watermark;
        self
    }

    /// Builder-style: sets the per-worker batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Builder-style: sets the per-request serving policy.
    pub fn with_serve(mut self, serve: ServeConfig) -> Self {
        self.serve = serve;
        self
    }

    /// Builder-style: sets the GNN-rung circuit-breaker policy.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Builder-style: enables (or resizes) the canonical-form prediction
    /// cache fronting every worker's GNN rung.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(1))
            .unwrap_or(1)
            .max(1)
    }
}

/// What the [`SwapCell`] publishes: one artifact generation. Workers
/// compare `generation` against their cached predictor's and rebuild on
/// mismatch; the artifact bytes themselves are shared, never copied.
struct Published {
    generation: u64,
    artifact: Arc<RunArtifact>,
    serve: ServeConfig,
}

/// One finished request: the response plus its serving provenance.
#[derive(Debug)]
pub struct Completed {
    /// The typed response (outcome or typed rejection — never absent).
    pub response: ServeResponse,
    /// Time the request spent queued before a worker picked it up
    /// (0 for inline-shed admissions).
    pub queued_micros: u64,
    /// The artifact generation that answered (0-based; bumped by every
    /// successful [`ServeLoop::swap_artifact`]).
    pub generation: u64,
}

/// The receipt for a submitted request.
#[derive(Debug)]
pub enum Ticket {
    /// Resolved synchronously at admission (inline shed at hard capacity,
    /// or an admission-failpoint refusal).
    Ready(Completed),
    /// In flight; resolve with [`Ticket::wait`] or
    /// [`Ticket::wait_timeout`].
    Pending(mpsc::Receiver<Completed>),
}

impl Ticket {
    /// Blocks until the reply arrives. Cannot hang on a live loop: workers
    /// drain every queued job before exiting (even at shutdown), dead
    /// workers' claims are requeued, and the supervisor respawns the pool
    /// — so every pending ticket is answered.
    pub fn wait(self) -> Completed {
        match self {
            Ticket::Ready(completed) => completed,
            Ticket::Pending(rx) => rx
                .recv()
                .expect("serving loop dropped a request without replying — this is a bug"),
        }
    }

    /// [`Self::wait`] with an upper bound: blocks at most `timeout`.
    ///
    /// On timeout the ticket comes back inside the [`WaitTimeout`] error,
    /// still live — the caller can log, adjust, and wait again; the reply
    /// (which the loop still guarantees) is never lost by timing out.
    /// This is the caller-side seatbelt the supervisor cannot provide:
    /// even a supervision bug can only cost a caller `timeout`, never an
    /// unbounded hang.
    ///
    /// # Errors
    ///
    /// [`WaitTimeout`] when no reply arrived within `timeout`.
    // The "large" Err is the point: it carries the live ticket back to
    // the caller so the reply is never lost by timing out.
    #[allow(clippy::result_large_err)]
    pub fn wait_timeout(self, timeout: Duration) -> Result<Completed, WaitTimeout> {
        match self {
            Ticket::Ready(completed) => Ok(completed),
            Ticket::Pending(rx) => match rx.recv_timeout(timeout) {
                Ok(completed) => Ok(completed),
                Err(mpsc::RecvTimeoutError::Timeout) => Err(WaitTimeout {
                    ticket: Ticket::Pending(rx),
                    waited: timeout,
                }),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("serving loop dropped a request without replying — this is a bug")
                }
            },
        }
    }
}

/// Typed timeout from [`Ticket::wait_timeout`]: the reply did not arrive
/// in time, but the ticket is returned intact for another wait.
#[derive(Debug)]
pub struct WaitTimeout {
    /// The still-live ticket; the loop's exactly-once reply guarantee is
    /// unaffected by the timeout.
    pub ticket: Ticket,
    /// How long the call waited before giving up.
    pub waited: Duration,
}

impl std::fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no reply within {:?}; the ticket is still live and can be waited again",
            self.waited
        )
    }
}

impl std::error::Error for WaitTimeout {}

/// Monotonic counters describing a loop's traffic so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopStats {
    /// Requests answered by the full ladder (outcome, not shed).
    pub served: u64,
    /// Requests answered via the shed path (watermark, capacity, or
    /// deadline).
    pub shed: u64,
    /// Requests answered with a typed [`RequestError`].
    pub rejected: u64,
    /// Successful artifact hot-swaps.
    pub swaps: u64,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
    /// Currently published artifact generation.
    pub generation: u64,
}

impl LoopStats {
    /// Total requests answered (served + shed + rejected). Equals the
    /// number of submissions once all tickets resolve — nothing is
    /// dropped.
    pub fn total(&self) -> u64 {
        self.served + self.shed + self.rejected
    }
}

/// Overall loop condition, folded from worker census, breaker state,
/// queue depth, and model availability. See the module docs for the
/// state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Workers are up but none has picked up work yet.
    Starting,
    /// Fully operational: full census, breaker closed, queue below the
    /// watermark, model serving.
    Ready,
    /// Operational but impaired; [`HealthReport::reasons`] says why.
    /// Every ticket is still answered.
    Degraded,
    /// Shutting down: draining the queue, then exiting. Terminal.
    Draining,
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Health::Starting => write!(f, "starting"),
            Health::Ready => write!(f, "ready"),
            Health::Degraded => write!(f, "degraded"),
            Health::Draining => write!(f, "draining"),
        }
    }
}

impl std::error::Error for Health {}

/// One attributable cause of a [`Health::Degraded`] report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthReason {
    /// Fewer workers alive than the configured target (the supervisor is
    /// respawning).
    WorkersDown {
        /// Workers currently alive.
        alive: usize,
        /// The configured census target.
        target: usize,
    },
    /// The GNN-rung circuit breaker is not Closed.
    BreakerTripped(BreakerState),
    /// Queue depth at or past the shed watermark: normal-priority traffic
    /// is being shed.
    QueueSaturated {
        /// Current queue depth.
        depth: usize,
        /// The configured shed watermark.
        watermark: usize,
    },
    /// The published generation's model would not rebuild; the ladder is
    /// serving from the model-free rungs.
    ModelUnavailable,
}

impl std::fmt::Display for HealthReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HealthReason::WorkersDown { alive, target } => {
                write!(f, "workers down ({alive}/{target} alive)")
            }
            HealthReason::BreakerTripped(state) => write!(f, "circuit breaker {state}"),
            HealthReason::QueueSaturated { depth, watermark } => {
                write!(f, "queue saturated (depth {depth} ≥ watermark {watermark})")
            }
            HealthReason::ModelUnavailable => write!(f, "model unavailable"),
        }
    }
}

/// Point-in-time health snapshot from [`ServeLoop::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// The folded state.
    pub state: Health,
    /// Every active degradation cause (empty unless `Degraded`).
    pub reasons: Vec<HealthReason>,
    /// Workers currently alive.
    pub workers_alive: usize,
    /// The configured census target.
    pub workers_target: usize,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Current breaker state.
    pub breaker: BreakerState,
    /// Currently published artifact generation.
    pub generation: u64,
}

/// Full observability snapshot from [`ServeLoop::metrics`]; serializable
/// via `core::json` for bench tables and dashboards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopMetrics {
    /// Requests answered by the full ladder.
    pub served: u64,
    /// Requests answered via the shed path (all causes).
    pub shed: u64,
    /// Requests answered with a typed rejection.
    pub rejected: u64,
    /// Sheds decided at admission by the watermark.
    pub shed_watermark: u64,
    /// Sheds answered inline at hard capacity.
    pub shed_capacity: u64,
    /// Sheds decided at execution by an expired deadline.
    pub shed_deadline: u64,
    /// Expired-deadline jobs reaped from the queue by the supervisor.
    pub reaped_deadline: u64,
    /// Requests answered model-free because the breaker was open.
    pub breaker_open_served: u64,
    /// Lifetime breaker trips.
    pub breaker_trips: u64,
    /// Current breaker state.
    pub breaker_state: BreakerState,
    /// Successful artifact hot-swaps.
    pub swaps: u64,
    /// Currently published artifact generation.
    pub generation: u64,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Workers respawned by the supervisor (0 in a healthy run).
    pub respawns: u64,
    /// Workers currently alive.
    pub workers_alive: usize,
    /// The configured census target.
    pub workers_target: usize,
    /// Outcomes served by the GNN rung.
    pub rung_gnn: u64,
    /// Outcomes served by the fixed-angle rung.
    pub rung_fixed: u64,
    /// Outcomes served by the fallback rung.
    pub rung_fallback: u64,
    /// Prediction-cache hits (0 when the cache is disabled).
    pub cache_hits: u64,
    /// Prediction-cache misses, including contained lookup faults.
    pub cache_misses: u64,
    /// Prediction-cache entries stored.
    pub cache_inserts: u64,
    /// Prediction-cache LRU evictions (count or byte pressure).
    pub cache_evictions: u64,
    /// Prediction-cache entries dropped by generation invalidation
    /// (hot-swap flushes plus lazy stale purges).
    pub cache_invalidations: u64,
    /// WL-hash bucket hits rejected by the exact isomorphism check — the
    /// collision fallback doing its job.
    pub cache_collisions: u64,
    /// Cache lookup/insert faults contained on the serving path.
    pub cache_lookup_faults: u64,
    /// Current folded health state.
    pub health: Health,
}

/// A queued request: what to run, how (full ladder or shed at a recorded
/// depth), and where the reply goes.
struct Job {
    /// Monotone submission index (ties the chaos schedule's firing
    /// windows to specific requests; see [`crate::faults`]).
    index: u64,
    request: ServeRequest,
    /// `Some(depth)` = shed (decided at admission); the depth feeds
    /// `SkipReason::Shed`.
    shed: Option<usize>,
    enqueued: Instant,
    reply: mpsc::Sender<Completed>,
}

struct Shared {
    cell: SwapCell<Published>,
    /// Canonical-form prediction cache shared by every worker's predictor
    /// (a no-op instance when the config disables caching).
    cache: Arc<PredictionCache>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    depth: AtomicUsize,
    shutdown: AtomicBool,
    generation: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    swaps: AtomicU64,
    max_depth: AtomicUsize,
    batch_size: usize,
    // --- self-healing state ---
    breaker: CircuitBreaker,
    /// Monotone submission counter; assigns `Job::index`.
    submitted: AtomicU64,
    /// Live workers. Incremented by the *spawner* before the thread
    /// starts (so the supervisor never double-respawns a worker that is
    /// mid-spawn), decremented by the worker's census guard on any exit.
    workers_alive: AtomicUsize,
    workers_target: usize,
    /// Set the first time any worker reaches its serving loop; gates
    /// `Starting → Ready`.
    ever_ready: AtomicBool,
    /// Generation whose model rebuild last failed (`u64::MAX` = none):
    /// feeds [`HealthReason::ModelUnavailable`].
    model_down: AtomicU64,
    respawns: AtomicU64,
    reaped: AtomicU64,
    shed_watermark_n: AtomicU64,
    shed_capacity_n: AtomicU64,
    shed_deadline_n: AtomicU64,
    breaker_open_n: AtomicU64,
    rung_gnn: AtomicU64,
    rung_fixed: AtomicU64,
    rung_fallback: AtomicU64,
    /// Tag for generation-named worker threads (monotone across spawns).
    next_spawn: AtomicU64,
    /// Join handles for every spawned worker (initial + respawned).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// The supervisor parks here between ticks; census guards notify it.
    supervisor_mx: Mutex<()>,
    supervisor_cv: Condvar,
}

impl Shared {
    fn record(&self, response: &ServeResponse) {
        match &response.result {
            Ok(outcome) => {
                match outcome.rung {
                    Rung::Gnn => self.rung_gnn.fetch_add(1, SeqCst),
                    Rung::FixedAngle => self.rung_fixed.fetch_add(1, SeqCst),
                    Rung::Fallback => self.rung_fallback.fetch_add(1, SeqCst),
                };
                if outcome.was_shed() {
                    self.shed.fetch_add(1, SeqCst);
                } else {
                    self.served.fetch_add(1, SeqCst);
                }
            }
            Err(_) => {
                self.rejected.fetch_add(1, SeqCst);
            }
        }
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The concurrent serving loop. See the module docs for the protocol;
/// see `tests/serve_loop.rs`, `tests/chaos_soak.rs`, and the
/// `serve_load` / `chaos_soak` bench bins for it under fire.
pub struct ServeLoop {
    shared: Arc<Shared>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    queue_capacity: usize,
    shed_watermark: usize,
}

/// Why [`ServeLoop::swap_artifact`] refused to publish a new artifact.
/// Either way the previous generation keeps serving, untouched.
#[derive(Debug)]
pub enum SwapError {
    /// The incoming artifact failed pre-publication validation (its model
    /// would not rebuild), or the `hot_swap` failpoint injected an error.
    Rejected(String),
    /// Validation panicked; the panic was contained at the swap boundary.
    Panicked(String),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::Rejected(e) => write!(f, "hot-swap rejected: {e}"),
            SwapError::Panicked(e) => write!(f, "hot-swap panicked (contained): {e}"),
        }
    }
}

impl std::error::Error for SwapError {}

impl ServeLoop {
    /// Starts the worker pool (plus its supervisor) serving `artifact`
    /// under `config`'s policy.
    pub fn new(artifact: RunArtifact, config: LoopConfig) -> ServeLoop {
        let queue_capacity = config.queue_capacity.max(1);
        let shed_watermark = config.shed_watermark.min(queue_capacity);
        let workers_target = config.resolved_workers();
        let shared = Arc::new(Shared {
            cell: SwapCell::new(Published {
                generation: 0,
                artifact: Arc::new(artifact),
                serve: config.serve.clone(),
            }),
            cache: Arc::new(PredictionCache::new(config.cache.clone())),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            max_depth: AtomicUsize::new(0),
            batch_size: config.batch_size.max(1),
            breaker: CircuitBreaker::new(config.breaker.clone()),
            submitted: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(0),
            workers_target,
            ever_ready: AtomicBool::new(false),
            model_down: AtomicU64::new(u64::MAX),
            respawns: AtomicU64::new(0),
            reaped: AtomicU64::new(0),
            shed_watermark_n: AtomicU64::new(0),
            shed_capacity_n: AtomicU64::new(0),
            shed_deadline_n: AtomicU64::new(0),
            breaker_open_n: AtomicU64::new(0),
            rung_gnn: AtomicU64::new(0),
            rung_fixed: AtomicU64::new(0),
            rung_fallback: AtomicU64::new(0),
            next_spawn: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
            supervisor_mx: Mutex::new(()),
            supervisor_cv: Condvar::new(),
        });
        for _ in 0..workers_target {
            spawn_worker(&shared);
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&shared))
                .expect("spawn serve supervisor")
        };
        ServeLoop {
            shared,
            supervisor: Some(supervisor),
            queue_capacity,
            shed_watermark,
        }
    }

    /// [`Self::new`] on an artifact loaded (and fully validated) from disk.
    pub fn load<P: AsRef<std::path::Path>>(
        path: P,
        config: LoopConfig,
    ) -> Result<ServeLoop, crate::store::ArtifactError> {
        Ok(ServeLoop::new(RunArtifact::load(path)?, config))
    }

    /// Admits one request and returns its receipt immediately. Exactly one
    /// [`Completed`] will exist for it:
    ///
    /// * queue below the watermark — enqueued for the full ladder;
    /// * watermark ≤ depth < capacity — [`Priority::Normal`] enqueued
    ///   marked to shed, [`Priority::High`] keeps the full ladder;
    /// * depth at capacity — shed *inline* on the caller thread
    ///   ([`Ticket::Ready`]); the queue never grows past its bound;
    /// * `admission` failpoint armed — refused with
    ///   [`RequestError::Admission`] (a contained panic reports the same
    ///   way). Healthy saturation sheds; it never refuses.
    pub fn submit(&self, request: ServeRequest) -> Ticket {
        // Tag the submitting thread with this request's index so a chaos
        // schedule can target admission (and anything else the caller does
        // between submissions, e.g. hot-swaps) by request index.
        let index = self.shared.submitted.fetch_add(1, SeqCst);
        faults::set_request_index(index);
        match catch_unwind(AssertUnwindSafe(|| {
            faults::fire_may_panic(faults::ADMISSION)
        })) {
            Ok(None) => {}
            Ok(Some(_)) => return self.refuse("fault injected: admission"),
            Err(payload) => {
                let msg = crate::serve::panic_message(&payload);
                return self.refuse(&format!("admission panicked (contained): {msg}"));
            }
        }

        // Reserve a slot; if the queue is hard-full, give the slot back and
        // answer from the shed ladder right here on the caller thread —
        // bounded memory and backpressure in one move.
        let depth = self.shared.depth.fetch_add(1, SeqCst);
        if depth >= self.queue_capacity {
            self.shared.depth.fetch_sub(1, SeqCst);
            let published = self.shared.cell.load();
            let response = shed_response(
                &published.serve,
                published.artifact.envelope.as_ref(),
                &request,
                depth,
            );
            self.shared.shed_capacity_n.fetch_add(1, SeqCst);
            self.shared.record(&response);
            return Ticket::Ready(Completed {
                response,
                queued_micros: 0,
                generation: published.generation,
            });
        }
        self.shared.max_depth.fetch_max(depth + 1, SeqCst);
        let shed = (depth >= self.shed_watermark && request.priority == Priority::Normal)
            .then_some(depth);
        if shed.is_some() {
            self.shared.shed_watermark_n.fetch_add(1, SeqCst);
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            index,
            request,
            shed,
            enqueued: Instant::now(),
            reply: tx,
        };
        self.shared.lock_queue().push_back(job);
        self.shared.available.notify_one();
        Ticket::Pending(rx)
    }

    /// [`Self::submit`] + [`Ticket::wait`]: the synchronous convenience
    /// path.
    pub fn handle_wait(&self, request: ServeRequest) -> Completed {
        self.submit(request).wait()
    }

    /// Atomically publishes a retrained artifact to all workers,
    /// mid-traffic, and returns the new generation number.
    ///
    /// The artifact is validated *before* publication (its model must
    /// rebuild — behind the `hot_swap` failpoint), so a broken artifact
    /// never reaches a worker: on any [`SwapError`] the previous
    /// generation keeps serving as if the call never happened. In-flight
    /// requests finish on whichever generation they loaded; there is no
    /// torn state in between (see `qpool::swap` for the proof sketch).
    /// A successful swap also resets the GNN circuit breaker: the fresh
    /// generation starts with a clean failure record.
    pub fn swap_artifact(&self, artifact: RunArtifact) -> Result<u64, SwapError> {
        let validated = catch_unwind(AssertUnwindSafe(|| {
            if faults::fire_may_panic(faults::HOT_SWAP).is_some() {
                return Err(SwapError::Rejected("fault injected: hot_swap".to_string()));
            }
            artifact
                .build_model()
                .map_err(|e| SwapError::Rejected(e.to_string()))?;
            Ok(artifact)
        }));
        let artifact = match validated {
            Ok(Ok(artifact)) => artifact,
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                return Err(SwapError::Panicked(crate::serve::panic_message(&payload)))
            }
        };
        let generation = self.shared.generation.fetch_add(1, SeqCst) + 1;
        self.shared.cell.swap(Published {
            generation,
            artifact: Arc::new(artifact),
            serve: self.shared.cell.load().serve.clone(),
        });
        self.shared.swaps.fetch_add(1, SeqCst);
        self.shared.breaker.reset_for_generation(generation);
        // Eager half of the cache invalidation protocol: the retrained
        // artifact must never serve the old generation's angles. (Lookups
        // also purge stale generations lazily, covering any insert that
        // races this flush.)
        self.shared.cache.invalidate_all();
        Ok(generation)
    }

    /// Current traffic counters.
    pub fn stats(&self) -> LoopStats {
        LoopStats {
            served: self.shared.served.load(SeqCst),
            shed: self.shared.shed.load(SeqCst),
            rejected: self.shared.rejected.load(SeqCst),
            swaps: self.shared.swaps.load(SeqCst),
            max_depth: self.shared.max_depth.load(SeqCst),
            generation: self.shared.generation.load(SeqCst),
        }
    }

    /// Full observability snapshot (sheds by cause, breaker, census,
    /// per-rung counts); serialize with `core::json`'s `ToJson`.
    pub fn metrics(&self) -> LoopMetrics {
        let shared = &self.shared;
        let breaker = shared.breaker.snapshot();
        let cache = shared.cache.stats();
        LoopMetrics {
            served: shared.served.load(SeqCst),
            shed: shared.shed.load(SeqCst),
            rejected: shared.rejected.load(SeqCst),
            shed_watermark: shared.shed_watermark_n.load(SeqCst),
            shed_capacity: shared.shed_capacity_n.load(SeqCst),
            shed_deadline: shared.shed_deadline_n.load(SeqCst),
            reaped_deadline: shared.reaped.load(SeqCst),
            breaker_open_served: shared.breaker_open_n.load(SeqCst),
            breaker_trips: breaker.trips,
            breaker_state: breaker.state,
            swaps: shared.swaps.load(SeqCst),
            generation: shared.generation.load(SeqCst),
            max_depth: shared.max_depth.load(SeqCst),
            queue_depth: shared.depth.load(SeqCst),
            respawns: shared.respawns.load(SeqCst),
            workers_alive: shared.workers_alive.load(SeqCst),
            workers_target: shared.workers_target,
            rung_gnn: shared.rung_gnn.load(SeqCst),
            rung_fixed: shared.rung_fixed.load(SeqCst),
            rung_fallback: shared.rung_fallback.load(SeqCst),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_inserts: cache.inserts,
            cache_evictions: cache.evictions,
            cache_invalidations: cache.invalidations,
            cache_collisions: cache.collisions,
            cache_lookup_faults: cache.lookup_faults,
            health: self.health().state,
        }
    }

    /// Lifetime counters of the canonical-form prediction cache (all zero
    /// when the cache is disabled).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Folds census, breaker, queue, and model availability into the
    /// `Starting → Ready ⇄ Degraded → Draining` state machine (module
    /// docs have the diagram). Every `Degraded` report carries its
    /// reasons.
    pub fn health(&self) -> HealthReport {
        let shared = &self.shared;
        let generation = shared.generation.load(SeqCst);
        let breaker = shared.breaker.state();
        let queue_depth = shared.depth.load(SeqCst);
        let workers_alive = shared.workers_alive.load(SeqCst);
        let workers_target = shared.workers_target;
        let mut reasons = Vec::new();
        let state = if shared.shutdown.load(SeqCst) {
            Health::Draining
        } else if !shared.ever_ready.load(SeqCst) {
            Health::Starting
        } else {
            if workers_alive < workers_target {
                reasons.push(HealthReason::WorkersDown {
                    alive: workers_alive,
                    target: workers_target,
                });
            }
            if breaker != BreakerState::Closed {
                reasons.push(HealthReason::BreakerTripped(breaker));
            }
            if queue_depth >= self.shed_watermark {
                reasons.push(HealthReason::QueueSaturated {
                    depth: queue_depth,
                    watermark: self.shed_watermark,
                });
            }
            if shared.model_down.load(SeqCst) == generation {
                reasons.push(HealthReason::ModelUnavailable);
            }
            if reasons.is_empty() {
                Health::Ready
            } else {
                Health::Degraded
            }
        };
        HealthReport {
            state,
            reasons,
            workers_alive,
            workers_target,
            queue_depth,
            breaker,
            generation,
        }
    }

    /// Reaps queued jobs whose deadline already expired, answering each
    /// shed. The supervisor calls this on every tick; it is public so
    /// tests (and embedders driving their own supervision) can force a
    /// reap deterministically. Returns how many jobs were reaped.
    pub fn reap_expired(&self) -> usize {
        reap_expired(&self.shared)
    }

    /// Current queue depth (queued, not yet claimed by a worker).
    pub fn depth(&self) -> usize {
        self.shared.depth.load(SeqCst)
    }

    /// The currently published artifact generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(SeqCst)
    }

    fn refuse(&self, message: &str) -> Ticket {
        let response = ServeResponse {
            result: Err(RequestError::Admission(message.to_string())),
        };
        self.shared.record(&response);
        Ticket::Ready(Completed {
            response,
            queued_micros: 0,
            generation: self.shared.generation.load(SeqCst),
        })
    }
}

impl Drop for ServeLoop {
    /// Graceful shutdown: workers drain every queued job (answering each
    /// ticket) before exiting; if every worker died right before shutdown,
    /// the caller thread drains the remainder inline. Zero drops, by
    /// construction.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, SeqCst);
        self.shared.available.notify_all();
        self.shared.supervisor_cv.notify_all();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        loop {
            let handles = std::mem::take(
                &mut *self
                    .shared
                    .handles
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()),
            );
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
        // All workers have exited (normally, or by a late kill whose
        // claimed jobs were requeued by the batch guard). Anything still
        // queued is answered here, inline; `worker` faults can still fire
        // but their budgets are finite, so the retry loop terminates. The
        // census pre-increment balances the inline census guard.
        while !self.shared.lock_queue().is_empty() {
            self.shared.workers_alive.fetch_add(1, SeqCst);
            let _ = catch_unwind(AssertUnwindSafe(|| worker_loop(&self.shared)));
        }
    }
}

/// Spawns one worker thread, pre-counting it in the census (so the
/// supervisor never double-spawns while a thread is mid-start). The
/// thread name carries a monotone spawn tag: a respawned worker is
/// distinguishable from the one it replaced.
fn spawn_worker(shared: &Arc<Shared>) {
    shared.workers_alive.fetch_add(1, SeqCst);
    let tag = shared.next_spawn.fetch_add(1, SeqCst);
    let cloned = Arc::clone(shared);
    match std::thread::Builder::new()
        .name(format!("serve-worker-g{tag}"))
        .spawn(move || worker_loop(&cloned))
    {
        Ok(handle) => shared
            .handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(handle),
        Err(_) => {
            // Spawn failure (resource exhaustion): uncount; the next
            // supervisor tick retries.
            shared.workers_alive.fetch_sub(1, SeqCst);
        }
    }
}

/// The supervisor: respawns dead workers up to the census target and
/// reaps expired-deadline jobs no worker has claimed. Runs until
/// shutdown; woken early by any dying worker's census guard.
fn supervisor_loop(shared: &Arc<Shared>) {
    let mut parked = shared
        .supervisor_mx
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    while !shared.shutdown.load(SeqCst) {
        let alive = shared.workers_alive.load(SeqCst);
        if alive < shared.workers_target {
            for _ in alive..shared.workers_target {
                shared.respawns.fetch_add(1, SeqCst);
                spawn_worker(shared);
            }
            // New workers check the queue before parking, but wake any
            // veteran that parked while the pool was short-handed.
            shared.available.notify_all();
        }
        reap_expired(shared);
        let (guard, _timeout) = shared
            .supervisor_cv
            .wait_timeout(parked, SUPERVISOR_TICK)
            .unwrap_or_else(|e| e.into_inner());
        parked = guard;
    }
}

/// Removes queued jobs whose deadline expired and answers each shed —
/// the supervisor's guarantee that a stalled pool cannot strand a
/// deadline-bearing ticket past its deadline for long.
fn reap_expired(shared: &Shared) -> usize {
    let mut expired = Vec::new();
    {
        let mut queue = shared.lock_queue();
        let mut i = 0;
        while i < queue.len() {
            let overdue = {
                let job = &queue[i];
                job.request
                    .deadline_micros
                    .is_some_and(|d| job.enqueued.elapsed().as_micros() as u64 > d)
            };
            if overdue {
                expired.push(queue.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
    }
    if expired.is_empty() {
        return 0;
    }
    let published = shared.cell.load();
    let count = expired.len();
    for job in expired {
        shared.depth.fetch_sub(1, SeqCst);
        let queued_micros = job.enqueued.elapsed().as_micros() as u64;
        let response = shed_response(
            &published.serve,
            published.artifact.envelope.as_ref(),
            &job.request,
            shared.depth.load(SeqCst),
        );
        shared.reaped.fetch_add(1, SeqCst);
        shared.record(&response);
        let _ = job.reply.send(Completed {
            response,
            queued_micros,
            generation: published.generation,
        });
    }
    count
}

/// Census bookkeeping for one worker thread: decrements the live count on
/// *any* exit — normal shutdown or a panic unwinding the worker — and
/// wakes the supervisor so a death is noticed immediately, not at the
/// next tick.
struct CensusGuard<'a> {
    shared: &'a Shared,
}

impl Drop for CensusGuard<'_> {
    fn drop(&mut self) {
        self.shared.workers_alive.fetch_sub(1, SeqCst);
        self.shared.supervisor_cv.notify_all();
    }
}

/// Holds a worker's claimed batch. If the worker dies mid-batch (a panic
/// outside the per-request guard — the `worker` failpoint models this),
/// the unanswered jobs go back to the *front* of the queue in their
/// original order, depth reservations intact, for the next worker to
/// claim. This is what makes worker death lossless.
struct BatchGuard<'a> {
    shared: &'a Shared,
    jobs: VecDeque<Job>,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if self.jobs.is_empty() {
            return;
        }
        let mut queue = self.shared.lock_queue();
        while let Some(job) = self.jobs.pop_back() {
            queue.push_front(job);
        }
        drop(queue);
        self.shared.available.notify_all();
    }
}

/// Classifies a response for the circuit breaker: what did the GNN rung
/// actually do? Envelope refusals, parse rejections, and sheds carry no
/// signal about the model; panics that escaped the ladder entirely
/// ([`RequestError::Internal`]) are failures.
fn gnn_observation(response: &ServeResponse) -> GnnObservation {
    match &response.result {
        Ok(outcome) => {
            if outcome.rung == Rung::Gnn {
                return GnnObservation::Served;
            }
            for skip in &outcome.skips {
                if skip.rung == Rung::Gnn {
                    return match &skip.reason {
                        SkipReason::Panicked
                        | SkipReason::NonFinite { .. }
                        | SkipReason::ModelUnavailable(_)
                        | SkipReason::VerificationFailed => GnnObservation::Failed,
                        _ => GnnObservation::NotAttempted,
                    };
                }
            }
            GnnObservation::NotAttempted
        }
        Err(RequestError::Internal(_)) => GnnObservation::Failed,
        Err(_) => GnnObservation::NotAttempted,
    }
}

/// One worker: claim a batch under the lock, resolve the published
/// generation once, serve the batch lock-free, repeat. Exits only when
/// shut down *and* the queue is empty; a mid-batch death requeues its
/// claims (see [`BatchGuard`]).
fn worker_loop(shared: &Shared) {
    let _census = CensusGuard { shared };
    let mut cached: Option<(u64, GuardedPredictor)> = None;
    loop {
        let mut guard = BatchGuard {
            shared,
            jobs: VecDeque::new(),
        };
        {
            let mut queue = shared.lock_queue();
            loop {
                if !queue.is_empty() {
                    break;
                }
                if shared.shutdown.load(SeqCst) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
            while guard.jobs.len() < shared.batch_size {
                match queue.pop_front() {
                    Some(job) => guard.jobs.push_back(job),
                    None => break,
                }
            }
        }
        shared.ever_ready.store(true, SeqCst);

        let published = shared.cell.load();
        let stale = match &cached {
            Some((generation, _)) => *generation != published.generation,
            None => true,
        };
        // Rebuild this worker's private model from the shared weight
        // image. GuardedPredictor::shared never panics (construction is
        // itself guarded), and a failed rebuild still serves — one rung
        // down, accounted per request. A *broken* rebuild is deliberately
        // not cached: the next batch retries it, so a transient build
        // fault (chaos, OOM) heals instead of pinning the worker
        // model-free until the next swap. Outcomes then depend only on
        // the request index and fault budgets — not on which worker
        // happened to serve — which the chaos determinism test relies on.
        let mut scratch: Option<GuardedPredictor> = None;
        if stale {
            // The shared cache binds to the generation being served, so a
            // worker still on an old generation can neither read nor pin
            // the new generation's entries (and vice versa).
            let predictor = GuardedPredictor::shared(
                Arc::clone(&published.artifact),
                published.serve.clone(),
            )
            .with_cache(Arc::clone(&shared.cache), published.generation);
            if predictor.model_available() {
                let _ = shared.model_down.compare_exchange(
                    published.generation,
                    u64::MAX,
                    SeqCst,
                    SeqCst,
                );
                cached = Some((published.generation, predictor));
            } else {
                shared.model_down.store(published.generation, SeqCst);
                cached = None;
                scratch = Some(predictor);
            }
        }
        let generation = published.generation;
        let predictor = scratch
            .as_ref()
            .or_else(|| cached.as_ref().map(|(_, p)| p))
            .expect("predictor resolved above");

        while let Some(index) = guard.jobs.front().map(|job| job.index) {
            // Tag the thread, then give the `worker` failpoint its shot
            // *before* popping: if it kills this thread, the job is still
            // in the batch guard and gets requeued, unanswered — the
            // exactly-once guarantee survives worker death.
            faults::set_request_index(index);
            faults::fire_may_panic(faults::WORKER);
            let job = guard.jobs.pop_front().expect("front checked above");
            shared.depth.fetch_sub(1, SeqCst);
            let queued_micros = job.enqueued.elapsed().as_micros() as u64;
            // A deadline that expired while queued sheds now: a fast
            // degraded answer beats a late full-quality one.
            let deadline_expired = job.shed.is_none()
                && job
                    .request
                    .deadline_micros
                    .is_some_and(|d| queued_micros > d);
            if deadline_expired {
                shared.shed_deadline_n.fetch_add(1, SeqCst);
            }
            let shed = job
                .shed
                .or_else(|| deadline_expired.then(|| shared.depth.load(SeqCst)));
            let response = match shed {
                Some(at_depth) => catch_unwind(AssertUnwindSafe(|| {
                    predictor.handle_shed(&job.request, at_depth)
                }))
                .unwrap_or_else(|payload| ServeResponse {
                    result: Err(RequestError::Internal(crate::serve::panic_message(
                        &payload,
                    ))),
                }),
                None => {
                    // Full-ladder path: consult the breaker first. Open →
                    // answer model-free at fixed cost; Closed/Probe → run
                    // the ladder and report what the GNN rung did.
                    let decision = shared.breaker.admit(generation);
                    match decision {
                        BreakerDecision::Skip => {
                            shared.breaker_open_n.fetch_add(1, SeqCst);
                            catch_unwind(AssertUnwindSafe(|| {
                                model_free_response(
                                    &published.serve,
                                    published.artifact.envelope.as_ref(),
                                    &job.request,
                                    SkipReason::BreakerOpen,
                                )
                            }))
                            .unwrap_or_else(|payload| ServeResponse {
                                result: Err(RequestError::Internal(
                                    crate::serve::panic_message(&payload),
                                )),
                            })
                        }
                        BreakerDecision::Full | BreakerDecision::Probe => {
                            let response =
                                catch_unwind(AssertUnwindSafe(|| predictor.handle(&job.request)))
                                    .unwrap_or_else(|payload| ServeResponse {
                                        result: Err(RequestError::Internal(
                                            crate::serve::panic_message(&payload),
                                        )),
                                    });
                            shared
                                .breaker
                                .record(generation, decision, gnn_observation(&response));
                            response
                        }
                    }
                }
            };
            shared.record(&response);
            // A dropped receiver (caller gave up on the ticket) is fine;
            // the request was still served and counted.
            let _ = job.reply.send(Completed {
                response,
                queued_micros,
                generation,
            });
        }
    }
}
