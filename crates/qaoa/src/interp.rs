//! Layerwise circuit deepening with the INTERP heuristic.
//!
//! The paper predicts p=1 angles; its future-work section asks about deeper
//! circuits. INTERP (Zhou, Wang, Choi, Pichler & Lukin, Phys. Rev. X 10,
//! 021067, 2020) deepens an optimized depth-p schedule to depth p+1 by
//! linear interpolation, preserving the adiabatic-like shape of good
//! schedules. Combined with a GNN-predicted p=1 start this yields a full
//! warm-start ladder: predict → optimize p=1 → INTERP → optimize p=2 → ...

use qrand::Rng;

use crate::optimize::Maximizer;
use crate::warm_start::{self, InitStrategy, WarmStartOutcome};
use crate::{MaxCutHamiltonian, Params};

/// Extends optimized depth-p parameters to depth p+1 by the INTERP rule:
///
/// ```text
/// θ'_i = (i-1)/p · θ_{i-1} + (p-i+1)/p · θ_i      for i = 1..=p+1
/// ```
///
/// (with out-of-range θ treated as 0), applied to γ and β independently.
pub fn interp_extend(params: &Params) -> Params {
    let p = params.depth();
    let extend = |angles: &[f64]| -> Vec<f64> {
        (1..=p + 1)
            .map(|i| {
                let left = if i >= 2 { angles[i - 2] } else { 0.0 };
                let right = if i <= p { angles[i - 1] } else { 0.0 };
                ((i - 1) as f64 * left + (p + 1 - i) as f64 * right) / p as f64
            })
            .collect()
    };
    Params::new(extend(params.gammas()), extend(params.betas()))
}

/// Optimizes QAOA layer by layer from `initial` (depth 1) up to
/// `max_depth`, INTERP-extending between levels. Returns one outcome per
/// depth, in order.
///
/// # Panics
///
/// Panics if `initial.depth() != 1` or `max_depth == 0`.
pub fn deepen<M, R>(
    hamiltonian: &MaxCutHamiltonian,
    initial: Params,
    max_depth: usize,
    optimizer: &M,
    rng: &mut R,
) -> Vec<WarmStartOutcome>
where
    M: Maximizer,
    R: Rng + ?Sized,
{
    assert_eq!(initial.depth(), 1, "deepening starts from a depth-1 schedule");
    assert!(max_depth >= 1, "max_depth must be at least 1");
    let mut outcomes = Vec::with_capacity(max_depth);
    let mut current = initial;
    for depth in 1..=max_depth {
        let outcome = warm_start::run(
            hamiltonian,
            current.clone(),
            InitStrategy::Predicted,
            optimizer,
            rng,
        );
        current = interp_extend(&outcome.final_params);
        debug_assert_eq!(current.depth(), depth + 1);
        outcomes.push(outcome);
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_angle;
    use crate::optimize::NelderMead;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn interp_extend_depth_one() {
        // p=1: θ'_1 = θ_1, θ'_2 = 0·left + 0·right... by the rule:
        // i=1: (0·θ_0 + 1·θ_1)/1 = θ_1; i=2: (1·θ_1 + 0)/1 = θ_1.
        let p = Params::new(vec![0.8], vec![0.3]);
        let q = interp_extend(&p);
        assert_eq!(q.depth(), 2);
        assert!((q.gammas()[0] - 0.8).abs() < 1e-12);
        assert!((q.gammas()[1] - 0.8).abs() < 1e-12);
        assert!((q.betas()[0] - 0.3).abs() < 1e-12);
        assert!((q.betas()[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn interp_extend_is_linear_interpolation() {
        // A linear ramp stays a linear ramp.
        let p = Params::new(vec![0.2, 0.4, 0.6], vec![0.6, 0.4, 0.2]);
        let q = interp_extend(&p);
        assert_eq!(q.depth(), 4);
        // Endpoints preserved.
        assert!((q.gammas()[0] - 0.2).abs() < 1e-12);
        assert!((q.gammas()[3] - 0.6).abs() < 1e-12);
        // Monotone in between.
        for w in q.gammas().windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        for w in q.betas().windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn deeper_layers_improve_expectation() {
        let mut rng = StdRng::seed_from_u64(71);
        let g = qgraph::generate::random_regular(10, 3, &mut rng).unwrap();
        let ham = MaxCutHamiltonian::new(&g);
        let outcomes = deepen(
            &ham,
            fixed_angle::fixed_angles(3).params,
            3,
            &NelderMead::new(120),
            &mut rng,
        );
        assert_eq!(outcomes.len(), 3);
        for pair in outcomes.windows(2) {
            assert!(
                pair[1].final_ratio >= pair[0].final_ratio - 0.01,
                "depth increase should not hurt: {} -> {}",
                pair[0].final_ratio,
                pair[1].final_ratio
            );
        }
        // p=3 should get close to optimal on a 10-node instance.
        assert!(outcomes[2].final_ratio > 0.85, "{}", outcomes[2].final_ratio);
    }

    #[test]
    #[should_panic(expected = "depth-1")]
    fn deepen_rejects_deep_start() {
        let mut rng = StdRng::seed_from_u64(72);
        let g = qgraph::Graph::cycle(4).unwrap();
        let ham = MaxCutHamiltonian::new(&g);
        let _ = deepen(
            &ham,
            Params::zeros(2),
            3,
            &NelderMead::new(10),
            &mut rng,
        );
    }
}
