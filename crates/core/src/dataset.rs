//! Dataset generation and QAOA labeling (§3.1).
//!
//! "We generate synthetic regular graphs comprising 9598 instances and
//! simulate the parameters γ and β for the QAOA algorithm. ... The
//! algorithm starts with randomly initialized values of γ and β, and then
//! undergoes a process of optimization over 500 iterations. ... It also
//! provides an approximation ratio (AR) for these solutions compared to the
//! optimal solutions derived from a brute-force search approach."

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use qrand::rngs::StdRng;
use qrand::{Rng, SeedableRng};

use qaoa::optimize::NelderMead;
use qaoa::warm_start::{self, InitStrategy};
use qaoa::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::generate::DatasetSpec;
use qgraph::Graph;

/// One labeled instance: a graph plus the QAOA outcome that labels it.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledGraph {
    /// The problem instance.
    pub graph: Graph,
    /// The optimized parameters — the GNN's regression target.
    pub params: Params,
    /// Expectation `⟨C⟩` at [`Self::params`].
    pub expectation: f64,
    /// Brute-force optimal cut value.
    pub optimal: f64,
    /// `expectation / optimal` — the label quality the SDP filter reads.
    pub approx_ratio: f64,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// The labeled instances.
    pub entries: Vec<LabeledGraph>,
}

/// Typed errors from dataset operations that used to assert-panic.
#[derive(Debug)]
pub enum DatasetError {
    /// `split` was asked to hold out at least as many entries as exist.
    SplitTooLarge {
        /// Requested held-out size.
        test_size: usize,
        /// Dataset size it was requested from.
        len: usize,
    },
    /// The generator spec was invalid.
    InvalidSpec(qgraph::GraphError),
    /// A checkpoint/journal filesystem operation failed.
    Io(std::io::Error),
    /// Labeling finished with unrecovered failures under
    /// [`FailurePolicy::Halt`].
    LabelingFailed(LabelReport),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::SplitTooLarge { test_size, len } => write!(
                f,
                "test size {test_size} must be below dataset size {len}"
            ),
            DatasetError::InvalidSpec(e) => write!(f, "invalid dataset spec: {e}"),
            DatasetError::Io(e) => write!(f, "checkpoint io: {e}"),
            DatasetError::LabelingFailed(report) => write!(
                f,
                "labeling failed for {} of {} graphs (indices {:?})",
                report.unrecovered().len(),
                report.total,
                report.unrecovered()
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<std::io::Error> for DatasetError {
    fn from(e: std::io::Error) -> Self {
        DatasetError::Io(e)
    }
}

impl From<qgraph::GraphError> for DatasetError {
    fn from(e: qgraph::GraphError) -> Self {
        DatasetError::InvalidSpec(e)
    }
}

/// Why one graph failed to label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelFailureReason {
    /// The labeler panicked; carries the panic message.
    Panic(String),
    /// The optimized label contained a non-finite value; carries the name
    /// of the offending field.
    NonFinite(String),
}

impl std::fmt::Display for LabelFailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LabelFailureReason::Panic(msg) => write!(f, "panic: {msg}"),
            LabelFailureReason::NonFinite(what) => write!(f, "non-finite {what}"),
        }
    }
}

/// The outcome of labeling one graph inside a checked batch.
#[derive(Debug, Clone, PartialEq)]
pub enum LabelOutcome {
    /// The graph labeled successfully.
    Ok(LabeledGraph),
    /// The graph failed (after the built-in fresh-seed retry).
    Failed {
        /// Index of the graph in the input batch.
        index: usize,
        /// What went wrong on the final attempt.
        reason: LabelFailureReason,
    },
}

/// One recorded labeling failure (first-attempt reason plus retry result).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelFailure {
    /// Index of the graph in the input batch.
    pub index: usize,
    /// Why the first attempt failed.
    pub reason: LabelFailureReason,
    /// `true` when the retry with a fresh RNG substream produced a valid
    /// label (the dataset then contains the retried label).
    pub recovered: bool,
}

/// Summary of a checked labeling run: what succeeded, what failed and why.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LabelReport {
    /// Number of graphs in the batch.
    pub total: usize,
    /// Number of graphs that produced a label (including retries and
    /// journal-restored entries on resume).
    pub labeled: usize,
    /// Simulations skipped by the isomorphism deduper
    /// ([`LabelConfig::dedupe_isomorphic`]): graphs whose label was
    /// replicated from a structurally identical representative instead of
    /// being re-simulated. Always 0 when deduplication is off.
    pub skipped_isomorphic: usize,
    /// Every first-attempt failure, in input order.
    pub failures: Vec<LabelFailure>,
}

impl LabelReport {
    /// A report for a fully successful batch of `total` graphs.
    pub fn clean(total: usize) -> Self {
        LabelReport {
            total,
            labeled: total,
            skipped_isomorphic: 0,
            failures: Vec::new(),
        }
    }

    /// Indices that stayed unlabeled even after the retry.
    pub fn unrecovered(&self) -> Vec<usize> {
        self.failures
            .iter()
            .filter(|f| !f.recovered)
            .map(|f| f.index)
            .collect()
    }

    /// `true` when every graph ended up labeled (possibly via retry).
    pub fn is_complete(&self) -> bool {
        self.labeled == self.total
    }
}

/// What a pipeline does when labeling reports unrecovered failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Drop the failed graphs and continue with the labeled subset (the
    /// report still records every failure).
    #[default]
    Skip,
    /// Abort the run: a paper-quality dataset must be complete.
    Halt,
}

/// Labeling configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelConfig {
    /// QAOA depth `p` (the paper predicts one `(γ, β)` pair: p = 1).
    pub depth: usize,
    /// Optimizer iteration budget per graph (paper: 500).
    pub iterations: usize,
    /// Worker threads for parallel labeling.
    pub threads: usize,
    /// Pooled amplitude-sweep workers *per evaluation* for registers at or
    /// above the simulator crossover; `0` (the default) keeps every
    /// evaluation on the historical bit-identical serial path. Compounds
    /// with `threads`: graph-level parallelism across the dataset,
    /// sweep-level parallelism within each large instance.
    pub sim_threads: usize,
    /// When `true`, detect isomorphic duplicates (via
    /// [`qgraph::canon::wl_hash`] bucketing + the exact matcher) before
    /// labeling, simulate only one representative per isomorphism class,
    /// and replicate its label scalars — `(γ, β)`, expectation, optimum and
    /// approximation ratio are all relabeling-invariant — onto each
    /// duplicate (which keeps its own node labeling). Representatives keep
    /// their usual per-index RNG substream, so their labels stay
    /// bit-identical to an undeduped run; the skipped-simulation count
    /// lands in [`LabelReport::skipped_isomorphic`]. Default `false`: every
    /// graph is simulated, the historical behavior.
    pub dedupe_isomorphic: bool,
}

impl Default for LabelConfig {
    fn default() -> Self {
        LabelConfig {
            depth: 1,
            iterations: 500,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            sim_threads: 0,
            dedupe_isomorphic: false,
        }
    }
}

impl LabelConfig {
    /// A scaled-down configuration for tests and CI-sized benches.
    pub fn quick(iterations: usize) -> Self {
        LabelConfig {
            iterations,
            ..LabelConfig::default()
        }
    }

    /// Builder-style: sets the QAOA depth `p`.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Builder-style: sets the optimizer iteration budget per graph.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Builder-style: sets the worker-thread count for parallel labeling.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style: sets the pooled sweep-worker count per evaluation
    /// (`0` = serial simulation, the default).
    pub fn with_sim_threads(mut self, sim_threads: usize) -> Self {
        self.sim_threads = sim_threads;
        self
    }

    /// Builder-style: enables isomorphism deduplication before labeling
    /// (see the [`LabelConfig::dedupe_isomorphic`] field docs).
    pub fn with_dedupe_isomorphic(mut self, dedupe_isomorphic: bool) -> Self {
        self.dedupe_isomorphic = dedupe_isomorphic;
        self
    }
}

/// Labels one graph: random init, `iterations` of Nelder–Mead, AR against
/// brute force — exactly the paper's §3.1 recipe.
pub fn label_graph<R: Rng + ?Sized>(
    graph: &Graph,
    config: &LabelConfig,
    rng: &mut R,
) -> LabeledGraph {
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
    // One evaluator carries the whole label: the optimization trace, the
    // canonicalization probes, and the final expectation all run in the
    // same scratch state vector — zero state-vector allocations past here.
    // With sim_threads > 0 and a register at or above the simulator
    // crossover, its sweeps run on a worker pool owned by this evaluator,
    // so per-graph labeling threads never share simulation state.
    let mut evaluator = Evaluator::with_sim_threads(&circuit, config.sim_threads);
    let optimizer = NelderMead::new(config.iterations);
    let outcome = warm_start::run_with(
        &mut evaluator,
        Params::random(config.depth, rng),
        InitStrategy::Random,
        &optimizer,
        rng,
    );
    // Fold the optimum into the graph-aware fundamental domain so that
    // equal-quality mirror optima produce one label cluster, not two.
    let params = evaluator.canonical_label(&outcome.final_params);
    let expectation = evaluator.expectation_in_place(&params);
    let hamiltonian = circuit.hamiltonian();
    LabeledGraph {
        graph: graph.clone(),
        params,
        expectation,
        optimal: hamiltonian.optimal_value(),
        approx_ratio: hamiltonian.approximation_ratio(expectation),
    }
}

/// [`label_graph`] with divergence detection: returns a structured failure
/// instead of a NaN-poisoned label when the optimization diverged.
///
/// # Errors
///
/// [`LabelFailureReason::NonFinite`] when any numeric field of the label
/// (parameters, expectation, optimum, approximation ratio) is NaN or ±∞.
pub fn label_graph_checked<R: Rng + ?Sized>(
    graph: &Graph,
    config: &LabelConfig,
    rng: &mut R,
) -> Result<LabeledGraph, LabelFailureReason> {
    let label = label_graph(graph, config, rng);
    validate_label(&label)?;
    Ok(label)
}

/// Checks every numeric field of a label for finiteness.
fn validate_label(label: &LabeledGraph) -> Result<(), LabelFailureReason> {
    let non_finite = |what: &str| Err(LabelFailureReason::NonFinite(what.to_string()));
    if label.params.to_flat().iter().any(|v| !v.is_finite()) {
        return non_finite("params");
    }
    if !label.expectation.is_finite() {
        return non_finite("expectation");
    }
    if !label.optimal.is_finite() {
        return non_finite("optimal");
    }
    if !label.approx_ratio.is_finite() {
        return non_finite("approx_ratio");
    }
    Ok(())
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Seed salt for the automatic fresh-seed retry of a failed graph. The
/// retry stream is deterministic in `(seed, index)`, so retried labels are
/// bit-identical between interrupted-and-resumed and straight-through runs.
const RETRY_SALT: u64 = 0xc2b2_ae3d_27d4_eb4f;

/// The checked labeling engine: labels `todo` indices of `graphs` on the
/// shared-queue worker pool, isolating each graph behind `catch_unwind`,
/// validating finiteness, retrying failures once on a fresh RNG substream,
/// and pushing every completed label through `sink` (the journal hook) from
/// the worker that produced it.
///
/// Completed `(index, label)` pairs (unordered) plus recorded failures.
type LabeledBatch = (Vec<(usize, LabeledGraph)>, Vec<LabelFailure>);

/// Returns completed `(index, label)` pairs (unordered) plus the recorded
/// failures. `sink` errors abort the batch.
pub(crate) fn label_indices_checked(
    labeler: &(dyn Fn(&Graph, &LabelConfig, &mut StdRng) -> LabeledGraph + Sync),
    graphs: &[Graph],
    todo: &[usize],
    config: &LabelConfig,
    seed: u64,
    sink: &(dyn Fn(usize, &LabeledGraph) -> std::io::Result<()> + Sync),
) -> std::io::Result<LabeledBatch> {
    if todo.is_empty() {
        return Ok((Vec::new(), Vec::new()));
    }
    let threads = worker_count(config.threads, todo.len());
    let next = AtomicUsize::new(0);
    let sink_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let mut per_worker: Vec<LabeledBatch> = Vec::new();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let sink_error = &sink_error;
                scope.spawn(move || {
                    let mut labeled = Vec::new();
                    let mut failures = Vec::new();
                    loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= todo.len() {
                            break;
                        }
                        if sink_error.lock().expect("sink error lock").is_some() {
                            break; // journal is broken; stop cleanly
                        }
                        let index = todo[slot];
                        let attempt = |salt: u64| -> Result<LabeledGraph, LabelFailureReason> {
                            let mut rng = StdRng::substream(seed ^ salt, index as u64);
                            match std::panic::catch_unwind(AssertUnwindSafe(|| {
                                labeler(&graphs[index], config, &mut rng)
                            })) {
                                Ok(label) => validate_label(&label).map(|()| label),
                                Err(payload) => {
                                    Err(LabelFailureReason::Panic(panic_message(payload.as_ref())))
                                }
                            }
                        };
                        let label = match attempt(0) {
                            Ok(label) => Some(label),
                            Err(reason) => {
                                let retried = attempt(RETRY_SALT);
                                let recovered = retried.is_ok();
                                failures.push(LabelFailure {
                                    index,
                                    reason,
                                    recovered,
                                });
                                retried.ok()
                            }
                        };
                        if let Some(label) = label {
                            if let Err(e) = sink(index, &label) {
                                *sink_error.lock().expect("sink error lock") = Some(e);
                                break;
                            }
                            labeled.push((index, label));
                        }
                    }
                    (labeled, failures)
                })
            })
            .collect();
        per_worker = workers
            .into_iter()
            .map(|w| w.join().expect("checked labeling worker never panics"))
            .collect();
    });
    if let Some(e) = sink_error.into_inner().expect("sink error lock") {
        return Err(e);
    }
    let mut labeled = Vec::new();
    let mut failures = Vec::new();
    for (l, f) in per_worker {
        labeled.extend(l);
        failures.extend(f);
    }
    failures.sort_by_key(|f| f.index);
    Ok((labeled, failures))
}

/// Effective worker count for `items` work items when the configuration
/// asks for `requested` threads: at least one worker, and never more
/// workers than items (spawning idle threads for tiny datasets costs more
/// than it saves).
pub fn worker_count(requested: usize, items: usize) -> usize {
    requested.max(1).min(items.max(1))
}

impl Dataset {
    /// Labels a batch of graphs in parallel. Each graph gets its own RNG
    /// substream derived from `seed` and its index, so results are
    /// bit-identical for a given seed regardless of the thread count, and
    /// keep input order.
    ///
    /// Workers pull indices from a shared queue rather than owning fixed
    /// chunks: labeling cost grows as `2^n`, so a paper-shaped batch mixes
    /// microsecond 2-node graphs with millisecond 15-node ones, and static
    /// chunking would leave every other worker idle behind whichever chunk
    /// drew the large graphs.
    pub fn label_graphs(graphs: &[Graph], config: &LabelConfig, seed: u64) -> Dataset {
        let (dataset, report) = Self::label_graphs_checked(graphs, config, seed);
        assert!(
            report.is_complete(),
            "labeling failed for graph indices {:?}",
            report.unrecovered()
        );
        dataset
    }

    /// [`Self::label_graphs`] with per-graph fault isolation: a panicking
    /// labeler or a diverged (NaN) optimization yields a recorded
    /// [`LabelFailure`] instead of aborting the batch. Each failed graph is
    /// retried once on a fresh deterministic RNG substream; unrecovered
    /// graphs are simply absent from the returned dataset (their indices
    /// are in [`LabelReport::unrecovered`]).
    ///
    /// Successful labels are bit-identical to [`Self::label_graphs`] with
    /// the same seed and config.
    pub fn label_graphs_checked(
        graphs: &[Graph],
        config: &LabelConfig,
        seed: u64,
    ) -> (Dataset, LabelReport) {
        Self::label_graphs_checked_with(&label_graph, graphs, config, seed)
    }

    /// [`Self::label_graphs_checked`] with a caller-supplied labeler — the
    /// fault-injection seam the robustness tests use (a labeler may panic
    /// or return non-finite labels; both become recorded failures).
    pub fn label_graphs_checked_with(
        labeler: &(dyn Fn(&Graph, &LabelConfig, &mut StdRng) -> LabeledGraph + Sync),
        graphs: &[Graph],
        config: &LabelConfig,
        seed: u64,
    ) -> (Dataset, LabelReport) {
        if config.dedupe_isomorphic {
            return Self::label_graphs_deduped(labeler, graphs, config, seed);
        }
        let todo: Vec<usize> = (0..graphs.len()).collect();
        let (labeled, failures) =
            label_indices_checked(labeler, graphs, &todo, config, seed, &|_, _| Ok(()))
                .expect("no-op sink cannot fail");
        Self::assemble(graphs.len(), labeled, failures)
    }

    /// The isomorphism-deduped labeling path: partition the batch into
    /// isomorphism classes (WL-hash buckets refined by the exact matcher —
    /// a WL collision can never merge distinct structures), simulate only
    /// the first-seen representative of each class on its usual per-index
    /// RNG substream, then replicate its relabeling-invariant label scalars
    /// onto every duplicate. Representatives are therefore bit-identical to
    /// the undeduped run; a batch with no duplicates is bit-identical in
    /// full. A duplicate of an unrecovered representative records the same
    /// failure at its own index.
    fn label_graphs_deduped(
        labeler: &(dyn Fn(&Graph, &LabelConfig, &mut StdRng) -> LabeledGraph + Sync),
        graphs: &[Graph],
        config: &LabelConfig,
        seed: u64,
    ) -> (Dataset, LabelReport) {
        use std::collections::HashMap;

        let mut rep_of: Vec<usize> = (0..graphs.len()).collect();
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (index, graph) in graphs.iter().enumerate() {
            let bucket = buckets.entry(qgraph::canon::wl_hash(graph)).or_default();
            match bucket
                .iter()
                .find(|&&rep| qgraph::canon::are_isomorphic(&graphs[rep], graph))
            {
                Some(&rep) => rep_of[index] = rep,
                None => bucket.push(index),
            }
        }
        let todo: Vec<usize> = (0..graphs.len())
            .filter(|&index| rep_of[index] == index)
            .collect();
        let (mut labeled, mut failures) =
            label_indices_checked(labeler, graphs, &todo, config, seed, &|_, _| Ok(()))
                .expect("no-op sink cannot fail");

        let by_index: HashMap<usize, usize> = labeled
            .iter()
            .enumerate()
            .map(|(slot, &(index, _))| (index, slot))
            .collect();
        let mut skipped = 0usize;
        let mut replicated: Vec<(usize, LabeledGraph)> = Vec::new();
        for (index, graph) in graphs.iter().enumerate() {
            let rep = rep_of[index];
            if rep == index {
                continue;
            }
            match by_index.get(&rep) {
                Some(&slot) => {
                    let label = &labeled[slot].1;
                    replicated.push((
                        index,
                        LabeledGraph {
                            graph: graph.clone(),
                            params: label.params.clone(),
                            expectation: label.expectation,
                            optimal: label.optimal,
                            approx_ratio: label.approx_ratio,
                        },
                    ));
                    skipped += 1;
                }
                None => {
                    // The representative stayed unlabeled even after its
                    // retry; its duplicates share that fate (re-simulating
                    // an identical structure would fail identically).
                    let reason = failures
                        .iter()
                        .find(|f| f.index == rep && !f.recovered)
                        .map(|f| f.reason.clone())
                        .unwrap_or_else(|| {
                            LabelFailureReason::Panic("representative unlabeled".to_string())
                        });
                    failures.push(LabelFailure {
                        index,
                        reason,
                        recovered: false,
                    });
                }
            }
        }
        labeled.extend(replicated);
        failures.sort_by_key(|f| f.index);
        let (dataset, mut report) = Self::assemble(graphs.len(), labeled, failures);
        report.skipped_isomorphic = skipped;
        (dataset, report)
    }

    /// Builds the ordered dataset + report from engine output (shared with
    /// the journaled resume path in [`crate::store`]).
    pub(crate) fn assemble(
        total: usize,
        labeled: Vec<(usize, LabeledGraph)>,
        failures: Vec<LabelFailure>,
    ) -> (Dataset, LabelReport) {
        let mut entries: Vec<Option<LabeledGraph>> = vec![None; total];
        for (index, entry) in labeled {
            entries[index] = Some(entry);
        }
        let dataset = Dataset {
            entries: entries.into_iter().flatten().collect(),
        };
        let report = LabelReport {
            total,
            labeled: dataset.len(),
            skipped_isomorphic: 0,
            failures,
        };
        (dataset, report)
    }

    /// Per-graph outcomes of a checked labeling run, in input order — the
    /// structured view (`Ok` label or `Failed {index, reason}`) of what
    /// [`Self::label_graphs_checked`] folds into a dataset + report.
    pub fn label_outcomes(
        graphs: &[Graph],
        config: &LabelConfig,
        seed: u64,
    ) -> Vec<LabelOutcome> {
        let (dataset, report) = Self::label_graphs_checked(graphs, config, seed);
        let mut failed: std::collections::HashMap<usize, LabelFailureReason> = report
            .failures
            .iter()
            .filter(|f| !f.recovered)
            .map(|f| (f.index, f.reason.clone()))
            .collect();
        let mut entries = dataset.entries.into_iter();
        (0..graphs.len())
            .map(|index| match failed.remove(&index) {
                Some(reason) => LabelOutcome::Failed { index, reason },
                None => LabelOutcome::Ok(entries.next().expect("one entry per success")),
            })
            .collect()
    }

    /// Generates `spec.count` graphs and labels them.
    ///
    /// # Errors
    ///
    /// Propagates generator errors from an invalid `spec`.
    pub fn generate(
        spec: &DatasetSpec,
        config: &LabelConfig,
        seed: u64,
    ) -> Result<Dataset, qgraph::GraphError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let graphs = spec.generate(&mut rng)?;
        Ok(Self::label_graphs(&graphs, config, seed ^ 0x9e37_79b9))
    }

    /// Fault-tolerant [`Self::generate`]: generates `spec.count` graphs and
    /// labels them through the checked engine, optionally journaling every
    /// completed label into `checkpoint` so an interrupted run resumes for
    /// free (see [`crate::store`] and `Dataset::resume_labeling`).
    ///
    /// # Errors
    ///
    /// [`DatasetError::InvalidSpec`] for a bad spec, [`DatasetError::Io`]
    /// for journal filesystem failures.
    pub fn generate_checked(
        spec: &DatasetSpec,
        config: &LabelConfig,
        seed: u64,
        checkpoint: Option<&std::path::Path>,
    ) -> Result<(Dataset, LabelReport), DatasetError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let graphs = spec.generate(&mut rng)?;
        let label_seed = seed ^ 0x9e37_79b9;
        match checkpoint {
            Some(dir) => Ok(Self::resume_labeling(dir, &graphs, config, label_seed)?),
            None => Ok(Self::label_graphs_checked(&graphs, config, label_seed)),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the dataset has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean approximation ratio over the dataset (label quality, Figs. 3–4).
    pub fn mean_approx_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.approx_ratio).sum::<f64>() / self.entries.len() as f64
    }

    /// `(graph size, AR)` observations for Figure 3.
    pub fn ar_by_size(&self) -> Vec<(usize, f64)> {
        self.entries
            .iter()
            .map(|e| (e.graph.n(), e.approx_ratio))
            .collect()
    }

    /// `(degree, AR)` observations for Figure 4 (regular graphs report their
    /// degree; irregular graphs report their maximum degree).
    pub fn ar_by_degree(&self) -> Vec<(usize, f64)> {
        self.entries
            .iter()
            .map(|e| {
                let d = e.graph.regular_degree().unwrap_or(e.graph.max_degree());
                (d, e.approx_ratio)
            })
            .collect()
    }

    /// Splits into `(train, test)` with `test_size` entries held out from the
    /// end after a seeded shuffle.
    ///
    /// # Errors
    ///
    /// [`DatasetError::SplitTooLarge`] if `test_size >= len` (the train
    /// side would be empty).
    pub fn split(&self, test_size: usize, seed: u64) -> Result<(Dataset, Dataset), DatasetError> {
        if test_size >= self.len() {
            return Err(DatasetError::SplitTooLarge {
                test_size,
                len: self.len(),
            });
        }
        use qrand::seq::SliceRandom;
        let mut entries = self.entries.clone();
        entries.shuffle(&mut StdRng::seed_from_u64(seed));
        let train = entries[..entries.len() - test_size].to_vec();
        let test = entries[entries.len() - test_size..].to_vec();
        Ok((Dataset { entries: train }, Dataset { entries: test }))
    }
}

impl FromIterator<LabeledGraph> for Dataset {
    fn from_iter<I: IntoIterator<Item = LabeledGraph>>(iter: I) -> Self {
        Dataset {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LabelConfig {
        LabelConfig::quick(40)
    }

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(worker_count(8, 3), 3); // never more workers than items
        assert_eq!(worker_count(2, 100), 2); // respects the request
        assert_eq!(worker_count(0, 5), 1); // at least one worker
        assert_eq!(worker_count(4, 0), 1); // empty input still well-defined
        assert_eq!(worker_count(4, 4), 4);
    }

    #[test]
    fn label_config_builder_chains() {
        let config = LabelConfig::quick(200).with_depth(2).with_threads(3);
        assert_eq!(config.depth, 2);
        assert_eq!(config.iterations, 200);
        assert_eq!(config.threads, 3);
        let rebudgeted = config.clone().with_iterations(50);
        assert_eq!(rebudgeted.iterations, 50);
        assert_eq!(rebudgeted.depth, 2);
    }

    #[test]
    fn labeling_empty_batch_returns_empty_dataset() {
        let ds = Dataset::label_graphs(&[], &quick_config(), 1);
        assert!(ds.is_empty());
    }

    #[test]
    fn oversubscribed_thread_config_still_labels_everything() {
        let mut rng = StdRng::seed_from_u64(42);
        let graphs: Vec<Graph> = (3..6)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.6, &mut rng).unwrap())
            .collect();
        let config = LabelConfig {
            threads: 64, // far more threads than the 3 work items
            ..quick_config()
        };
        let ds = Dataset::label_graphs(&graphs, &config, 9);
        assert_eq!(ds.len(), graphs.len());
        // Same answer as the serial-ish default config with the same seed.
        let baseline = Dataset::label_graphs(&graphs, &LabelConfig { threads: 1, ..quick_config() }, 9);
        // Chunking differs, so only per-worker streams match when the chunk
        // boundaries do; determinism for a fixed config is what we promise:
        let again = Dataset::label_graphs(&graphs, &config, 9);
        assert_eq!(ds, again);
        assert_eq!(baseline.len(), ds.len());
    }

    #[test]
    fn label_graph_produces_valid_record() {
        let mut rng = StdRng::seed_from_u64(111);
        let g = Graph::cycle(6).unwrap();
        let l = label_graph(&g, &quick_config(), &mut rng);
        assert_eq!(l.optimal, 6.0);
        assert!(l.approx_ratio > 0.5, "optimized AR {} too low", l.approx_ratio);
        assert!(l.approx_ratio <= 1.0 + 1e-9);
        assert!((l.expectation / l.optimal - l.approx_ratio).abs() < 1e-12);
        assert_eq!(l.params.depth(), 1);
    }

    #[test]
    fn parallel_labeling_keeps_order_and_determinism() {
        let mut rng = StdRng::seed_from_u64(112);
        let graphs: Vec<Graph> = (4..10)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap())
            .collect();
        let a = Dataset::label_graphs(&graphs, &quick_config(), 7);
        let b = Dataset::label_graphs(&graphs, &quick_config(), 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), graphs.len());
        for (entry, graph) in a.entries.iter().zip(&graphs) {
            assert_eq!(&entry.graph, graph);
        }
    }

    #[test]
    fn generate_respects_spec() {
        let spec = DatasetSpec::with_count(12);
        let ds = Dataset::generate(&spec, &quick_config(), 3).unwrap();
        assert_eq!(ds.len(), 12);
        assert!(ds.mean_approx_ratio() > 0.5);
        for e in &ds.entries {
            assert!(e.graph.n() >= 2 && e.graph.n() <= 15);
        }
    }

    #[test]
    fn figure_observations_cover_every_entry() {
        let spec = DatasetSpec::with_count(8);
        let ds = Dataset::generate(&spec, &quick_config(), 4).unwrap();
        assert_eq!(ds.ar_by_size().len(), 8);
        assert_eq!(ds.ar_by_degree().len(), 8);
        for &(k, ar) in ds.ar_by_size().iter().chain(ds.ar_by_degree().iter()) {
            assert!((1..=15).contains(&k));
            assert!((0.0..=1.0 + 1e-9).contains(&ar));
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let spec = DatasetSpec::with_count(10);
        let ds = Dataset::generate(&spec, &quick_config(), 5).unwrap();
        let (train, test) = ds.split(3, 99).unwrap();
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Same multiset of optima (cheap proxy for completeness).
        let mut all: Vec<u64> = train
            .entries
            .iter()
            .chain(&test.entries)
            .map(|e| e.optimal.to_bits())
            .collect();
        let mut orig: Vec<u64> = ds.entries.iter().map(|e| e.optimal.to_bits()).collect();
        all.sort_unstable();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    fn split_rejects_oversized_test() {
        let spec = DatasetSpec::with_count(5);
        let ds = Dataset::generate(&spec, &quick_config(), 6).unwrap();
        let err = ds.split(5, 1).unwrap_err();
        assert!(
            matches!(err, DatasetError::SplitTooLarge { test_size: 5, len: 5 }),
            "unexpected error: {err:?}"
        );
        assert!(err.to_string().contains("test size"));
        // The boundary just below is fine.
        assert!(ds.split(4, 1).is_ok());
    }

    #[test]
    fn split_of_empty_dataset_is_typed_error_for_any_test_size() {
        let empty = Dataset {
            entries: Vec::new(),
        };
        for test_size in [0usize, 1, 100] {
            let err = empty.split(test_size, 3).unwrap_err();
            assert!(
                matches!(err, DatasetError::SplitTooLarge { len: 0, .. }),
                "test_size {test_size}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn split_ratio_boundaries() {
        let spec = DatasetSpec::with_count(6);
        let ds = Dataset::generate(&spec, &quick_config(), 7).unwrap();
        // Ratio 0: everything trains, the test side is legitimately empty.
        let (train, test) = ds.split(0, 11).unwrap();
        assert_eq!(train.len(), 6);
        assert_eq!(test.len(), 0);
        // Ratio 1: an empty train side is infeasible, typed error.
        assert!(matches!(
            ds.split(6, 11),
            Err(DatasetError::SplitTooLarge {
                test_size: 6,
                len: 6
            })
        ));
        // Largest feasible holdout: a single training entry remains.
        let (train, test) = ds.split(5, 11).unwrap();
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 5);
    }

    #[test]
    fn split_singleton_dataset_boundaries() {
        let spec = DatasetSpec::with_count(1);
        let ds = Dataset::generate(&spec, &quick_config(), 8).unwrap();
        assert!(ds.split(0, 1).is_ok());
        assert!(matches!(
            ds.split(1, 1),
            Err(DatasetError::SplitTooLarge {
                test_size: 1,
                len: 1
            })
        ));
    }

    #[test]
    fn checked_labeling_matches_unchecked_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(200);
        let graphs: Vec<Graph> = (4..9)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap())
            .collect();
        let plain = Dataset::label_graphs(&graphs, &quick_config(), 11);
        let (checked, report) = Dataset::label_graphs_checked(&graphs, &quick_config(), 11);
        assert_eq!(plain, checked);
        assert_eq!(report, LabelReport::clean(graphs.len()));
        assert!(report.is_complete());
        assert!(report.unrecovered().is_empty());
    }

    #[test]
    fn injected_panic_is_isolated_and_reported() {
        let mut rng = StdRng::seed_from_u64(201);
        let graphs: Vec<Graph> = (4..10)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap())
            .collect();
        // Panic on every 7-node graph (index 3), label the rest normally.
        let labeler = |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
            assert!(g.n() != 7, "injected fault for n=7");
            label_graph(g, c, r)
        };
        let (ds, report) = Dataset::label_graphs_checked_with(&labeler, &graphs, &quick_config(), 5);
        assert_eq!(ds.len(), graphs.len() - 1);
        assert_eq!(report.total, graphs.len());
        assert_eq!(report.labeled, graphs.len() - 1);
        assert_eq!(report.unrecovered(), vec![3]);
        let failure = &report.failures[0];
        assert!(!failure.recovered);
        assert!(
            matches!(&failure.reason, LabelFailureReason::Panic(m) if m.contains("injected fault")),
            "reason: {:?}",
            failure.reason
        );
        // All the surviving labels are bit-identical to a clean run's.
        let clean = Dataset::label_graphs(&graphs, &quick_config(), 5);
        let survivors: Vec<&LabeledGraph> = clean
            .entries
            .iter()
            .filter(|e| e.graph.n() != 7)
            .collect();
        assert_eq!(ds.entries.iter().collect::<Vec<_>>(), survivors);
    }

    #[test]
    fn non_finite_label_is_reported_not_propagated() {
        let mut rng = StdRng::seed_from_u64(202);
        let graphs: Vec<Graph> = (4..8)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap())
            .collect();
        // A labeler whose "optimizer" diverges on index-pattern graphs.
        let labeler = |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
            let mut label = label_graph(g, c, r);
            if g.n() == 5 {
                label.expectation = f64::NAN;
                label.approx_ratio = f64::NAN;
            }
            label
        };
        let (ds, report) = Dataset::label_graphs_checked_with(&labeler, &graphs, &quick_config(), 5);
        assert!(ds.entries.iter().all(|e| e.expectation.is_finite()));
        // n=5 is index 1; the retry re-runs the same injected divergence.
        assert_eq!(report.unrecovered(), vec![1]);
        assert!(matches!(
            &report.failures[0].reason,
            LabelFailureReason::NonFinite(what) if what == "expectation"
        ));
    }

    #[test]
    fn retry_with_fresh_seed_recovers_flaky_failures() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut rng = StdRng::seed_from_u64(203);
        let graphs: Vec<Graph> = (4..8)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap())
            .collect();
        // Fails the first attempt on n=6 only; the retry (fresh substream)
        // succeeds. Single-threaded so the counter is per-attempt ordered.
        let hits = AtomicUsize::new(0);
        let labeler = move |g: &Graph, c: &LabelConfig, r: &mut StdRng| {
            if g.n() == 6 && hits.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("flaky: first attempt only");
            }
            label_graph(g, c, r)
        };
        let config = LabelConfig {
            threads: 1,
            ..quick_config()
        };
        let (ds, report) = Dataset::label_graphs_checked_with(&labeler, &graphs, &config, 5);
        assert_eq!(ds.len(), graphs.len(), "retry must fill the gap");
        assert!(report.is_complete());
        assert_eq!(report.failures.len(), 1);
        assert!(report.failures[0].recovered);
        assert!(report.unrecovered().is_empty());
    }

    #[test]
    fn label_outcomes_align_with_input_order() {
        let mut rng = StdRng::seed_from_u64(204);
        let graphs: Vec<Graph> = (4..8)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap())
            .collect();
        let outcomes = Dataset::label_outcomes(&graphs, &quick_config(), 9);
        assert_eq!(outcomes.len(), graphs.len());
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                LabelOutcome::Ok(l) => assert_eq!(&l.graph, &graphs[i]),
                LabelOutcome::Failed { index, .. } => assert_eq!(*index, i),
            }
        }
    }

    #[test]
    fn from_iterator_collects() {
        let mut rng = StdRng::seed_from_u64(113);
        let g = Graph::complete(3).unwrap();
        let ds: Dataset = (0..3).map(|_| label_graph(&g, &quick_config(), &mut rng)).collect();
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
    }
}
