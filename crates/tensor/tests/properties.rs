//! Property-based tests for the autodiff engine: gradients of randomly
//! composed computation graphs must match central finite differences.

use qcheck::{any_u64, choice, prop_assert, prop_assert_eq, properties, Gen};

use tensor::{Matrix, Tape, Tensor};

/// The pool of unary ops the random graphs draw from.
#[derive(Debug, Clone, Copy)]
enum UnaryOp {
    Relu,
    LeakyRelu,
    Sigmoid,
    Tanh,
    Abs,
    Scale,
    Transpose,
}

fn apply_unary(op: UnaryOp, x: &Tensor) -> Tensor {
    match op {
        UnaryOp::Relu => x.relu(),
        UnaryOp::LeakyRelu => x.leaky_relu(0.1),
        UnaryOp::Sigmoid => x.sigmoid(),
        UnaryOp::Tanh => x.tanh(),
        UnaryOp::Abs => x.abs(),
        UnaryOp::Scale => x.scale(1.7),
        // Double transpose keeps the shape compatible with later binary ops.
        UnaryOp::Transpose => x.transpose().transpose(),
    }
}

fn arb_unary() -> impl Gen<Item = UnaryOp> {
    choice([
        UnaryOp::Relu,
        UnaryOp::LeakyRelu,
        UnaryOp::Sigmoid,
        UnaryOp::Tanh,
        UnaryOp::Abs,
        UnaryOp::Scale,
        UnaryOp::Transpose,
    ])
}

/// Entries away from activation kinks (ReLU/Abs at 0) so finite differences
/// are well-behaved: magnitude in [0.05, 2), either sign.
fn arb_entries(n: usize) -> impl Gen<Item = Vec<f64>> {
    qcheck::vec(
        qcheck::map((0.05f64..2.0, qcheck::choice([1.0f64, -1.0])), |(m, s)| m * s),
        n..=n,
    )
}

fn scalar_loss(tape: &Tape, param: &Tensor, ops: &[UnaryOp], mixer: &Matrix) -> Tensor {
    let mut h = param.clone();
    for &op in ops {
        h = apply_unary(op, &h);
    }
    let m = tape.constant(mixer.clone());
    h.matmul(&m).sum()
}

properties! {
    cases = 64;

    fn random_graphs_gradcheck(
        rows in 1usize..4,
        cols in 1usize..4,
        entries in arb_entries(9),
        mix in arb_entries(9),
        ops in qcheck::vec(arb_unary(), 0usize..4),
    ) {
        let value = Matrix::from_flat(rows, cols, entries[..rows * cols].to_vec());
        let mixer = Matrix::from_flat(cols, 1, mix[..cols].to_vec());

        let tape = Tape::new();
        let param = tape.parameter(value.clone());
        let loss = scalar_loss(&tape, &param, &ops, &mixer);
        tape.backward(&loss);
        let analytic = param.grad();

        let eps = 1e-5;
        for r in 0..rows {
            for c in 0..cols {
                let eval = |delta: f64| {
                    let tape = Tape::new();
                    let mut v = value.clone();
                    v[(r, c)] += delta;
                    let p = tape.parameter(v);
                    scalar_loss(&tape, &p, &ops, &mixer).value()[(0, 0)]
                };
                let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
                prop_assert!(
                    (analytic[(r, c)] - numeric).abs() < 1e-4,
                    "({r},{c}): analytic {} vs numeric {numeric} with ops {ops:?}",
                    analytic[(r, c)]
                );
            }
        }
    }

    fn matmul_grad_matches_transposed_rule(
        a_entries in arb_entries(6),
        b_entries in arb_entries(6),
    ) {
        // loss = sum(A·B) ⇒ dL/dA = 1 · Bᵀ and dL/dB = Aᵀ · 1.
        let a_val = Matrix::from_flat(2, 3, a_entries);
        let b_val = Matrix::from_flat(3, 2, b_entries);
        let tape = Tape::new();
        let a = tape.parameter(a_val.clone());
        let b = tape.constant(b_val.clone());
        tape.backward(&a.matmul(&b).sum());
        let expected = Matrix::ones(2, 2).matmul(&b_val.transpose());
        let got = a.grad();
        for r in 0..2 {
            for c in 0..3 {
                prop_assert!((got[(r, c)] - expected[(r, c)]).abs() < 1e-10);
            }
        }
    }

    fn mse_gradient_is_two_thirds_residual(
        pred in arb_entries(3),
        target in arb_entries(3),
    ) {
        // d/dp mean((p-t)²) = 2(p-t)/n.
        let p_val = Matrix::from_flat(1, 3, pred.clone());
        let t_val = Matrix::from_flat(1, 3, target.clone());
        let tape = Tape::new();
        let p = tape.parameter(p_val);
        tape.backward(&p.mse(&t_val));
        let grad = p.grad();
        for i in 0..3 {
            let expected = 2.0 * (pred[i] - target[i]) / 3.0;
            prop_assert!((grad[(0, i)] - expected).abs() < 1e-10);
        }
    }

    fn softmax_rows_are_probability_vectors(
        entries in qcheck::vec(-5.0f64..5.0, 12usize..=12),
    ) {
        let tape = Tape::new();
        let x = tape.constant(Matrix::from_flat(3, 4, entries));
        let mask = Matrix::from_rows(&[
            &[1.0, 1.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0, 0.0],
            &[1.0, 1.0, 1.0, 1.0],
        ]);
        let y = x.masked_row_softmax(&mask).value();
        for r in 0..3 {
            let mut sum = 0.0;
            for c in 0..4 {
                prop_assert!(y[(r, c)] >= 0.0);
                if mask[(r, c)] == 0.0 {
                    prop_assert_eq!(y[(r, c)], 0.0);
                }
                sum += y[(r, c)];
            }
            prop_assert!((sum - 1.0).abs() < 1e-10);
        }
    }

    fn dropout_expectation_is_identity(
        p in 0.0f64..0.9,
        seed in any_u64(),
    ) {
        use qrand::rngs::StdRng;
        use qrand::SeedableRng;
        // Inverted dropout: E[mask ⊙ x] = x, so the sample mean over many
        // masks approaches the input.
        let tape = Tape::new();
        let x = tape.constant(Matrix::ones(1, 64));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut total = 0.0;
        let reps = 300;
        for _ in 0..reps {
            total += x.dropout(p, &mut rng).value().mean();
        }
        let mean = total / reps as f64;
        prop_assert!((mean - 1.0).abs() < 0.12, "mean {mean} at p {p}");
    }
}
