//! Golden equivalence suite for the fused kernels: on random circuits up
//! to 12 qubits the fused sweeps must reproduce the unfused gate-by-gate
//! path to 1e-12 per amplitude. The fused path reorders floating-point
//! operations, so exact bit equality is not required here — bit-identity
//! is asserted one level up, between `Evaluator` reuse and fresh
//! allocation, which share a single code path.

use qrand::rngs::StdRng;
use qrand::{Rng, SeedableRng};

use qsim::diagonal::DiagonalOperator;
use qsim::{fused, gates, StateVector};

const TOLERANCE: f64 = 1e-12;

/// Builds a deterministic pseudo-random state by scrambling the uniform
/// superposition with a layer of parameterized single-qubit gates.
fn random_state<R: Rng + ?Sized>(num_qubits: usize, rng: &mut R) -> StateVector {
    let mut psi = StateVector::uniform_superposition(num_qubits);
    for i in 0..3 * num_qubits {
        let q = rng.gen_range(0..num_qubits);
        let angle = rng.gen_range(-3.2..3.2);
        match i % 3 {
            0 => gates::rx(&mut psi, q, angle),
            1 => gates::rz(&mut psi, q, angle),
            _ => gates::ry(&mut psi, q, angle),
        }
    }
    psi
}

fn random_diagonal<R: Rng + ?Sized>(num_qubits: usize, rng: &mut R) -> DiagonalOperator {
    let values: Vec<f64> = (0..1usize << num_qubits)
        .map(|_| rng.gen_range(-4.0..4.0))
        .collect();
    DiagonalOperator::new(values)
}

fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.to_amplitudes()
        .iter()
        .zip(b.to_amplitudes())
        .map(|(x, y)| (*x - y).norm())
        .fold(0.0, f64::max)
}

#[test]
fn fused_rx_layer_matches_gate_by_gate_up_to_12_qubits() {
    let mut rng = StdRng::seed_from_u64(0xf0_5ed);
    for n in 1..=12 {
        for trial in 0..4 {
            let theta = rng.gen_range(-6.3..6.3);
            let reference = random_state(n, &mut rng);
            let mut unfused = reference.clone();
            let mut fused_psi = reference;
            gates::rx_all(&mut unfused, theta);
            fused::rx_all(&mut fused_psi, theta);
            let diff = max_amp_diff(&unfused, &fused_psi);
            assert!(
                diff < TOLERANCE,
                "n={n} trial={trial}: fused RX layer diverges by {diff:e}"
            );
            assert!((fused_psi.norm() - 1.0).abs() < 1e-10);
        }
    }
}

#[test]
fn fused_phase_mixer_layer_matches_unfused_up_to_12_qubits() {
    let mut rng = StdRng::seed_from_u64(0xfa5e_d1a6);
    for n in 1..=12 {
        for trial in 0..4 {
            let gamma = rng.gen_range(-3.2..3.2);
            let theta = rng.gen_range(-6.3..6.3);
            let op = random_diagonal(n, &mut rng);
            let reference = random_state(n, &mut rng);
            let mut unfused = reference.clone();
            let mut fused_psi = reference;
            op.apply_phase(&mut unfused, gamma);
            gates::rx_all(&mut unfused, theta);
            op.apply_phase_rx_all(&mut fused_psi, gamma, theta);
            let diff = max_amp_diff(&unfused, &fused_psi);
            assert!(
                diff < TOLERANCE,
                "n={n} trial={trial}: fused phase+mixer diverges by {diff:e}"
            );
            assert!((fused_psi.norm() - 1.0).abs() < 1e-10);
        }
    }
}

#[test]
fn deep_fused_circuits_stay_within_tolerance() {
    // Tolerances compound over layers; a p=8 trace must stay golden too.
    let mut rng = StdRng::seed_from_u64(0xdeeb);
    for n in [5usize, 9, 12] {
        let op = random_diagonal(n, &mut rng);
        let angles: Vec<(f64, f64)> = (0..8)
            .map(|_| (rng.gen_range(-3.2..3.2), rng.gen_range(-6.3..6.3)))
            .collect();
        let mut unfused = StateVector::uniform_superposition(n);
        let mut fused_psi = StateVector::uniform_superposition(n);
        for &(gamma, theta) in &angles {
            op.apply_phase(&mut unfused, gamma);
            gates::rx_all(&mut unfused, theta);
            op.apply_phase_rx_all(&mut fused_psi, gamma, theta);
        }
        let diff = max_amp_diff(&unfused, &fused_psi);
        assert!(diff < TOLERANCE, "n={n}: p=8 trace diverges by {diff:e}");
    }
}

#[test]
fn fused_layer_handles_degenerate_angles() {
    // γ = 0 reduces to the plain mixer; θ = 0 reduces to the plain phase.
    let mut rng = StdRng::seed_from_u64(0xd09e);
    for n in [1usize, 2, 3, 6, 11] {
        let op = random_diagonal(n, &mut rng);
        let reference = random_state(n, &mut rng);

        let mut only_mixer = reference.clone();
        let mut via_fused = reference.clone();
        gates::rx_all(&mut only_mixer, 0.9);
        op.apply_phase_rx_all(&mut via_fused, 0.0, 0.9);
        assert!(max_amp_diff(&only_mixer, &via_fused) < TOLERANCE);

        let mut only_phase = reference.clone();
        let mut via_fused = reference;
        op.apply_phase(&mut only_phase, 0.7);
        op.apply_phase_rx_all(&mut via_fused, 0.7, 0.0);
        assert!(max_amp_diff(&only_phase, &via_fused) < TOLERANCE);
    }
}
