//! # qpool — a persistent scoped worker pool for amplitude sweeps
//!
//! The state-vector kernels in `qsim` split each `2^n`-amplitude sweep
//! into disjoint slice tasks. A QAOA layer at the sizes this repo labels
//! (n ≤ 15) costs tens of microseconds to low milliseconds, so spawning
//! OS threads per sweep (as `std::thread::scope` does) would eat the
//! entire parallel win; this crate keeps a small pool of workers alive
//! across sweeps and hands them borrowed tasks with ~µs dispatch cost.
//!
//! The only `unsafe` on the parallel path lives here (`qsim` itself stays
//! `#![forbid(unsafe_code)]`), confined to one lifetime-erasure seam with
//! a blocking-scope soundness argument:
//!
//! * [`ThreadPool::run_mut`] publishes a job holding raw pointers to the
//!   caller's `&mut [T]` and closure, then **blocks until every item has
//!   finished executing**, so the borrows outlive every dereference.
//! * Items are claimed by a per-job atomic counter that lives in an
//!   `Arc` owned by each participating thread. A worker that wakes up
//!   late with a stale job handle can only observe an exhausted counter —
//!   it never touches the (possibly dead) item pointers, because per-job
//!   counters are never reset.
//! * Each claimed index is handed out exactly once, so tasks get disjoint
//!   `&mut T` references.
//!
//! Worker panics are caught per item, the first payload is re-raised on
//! the caller via [`std::panic::resume_unwind`], and the pool remains
//! usable afterwards — a panic in one sweep poisons neither the pool nor
//! unrelated evaluations (the per-graph isolation the labeling and
//! serving layers rely on).

#![warn(missing_docs)]

pub mod swap;

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased per-job state, shared by every thread working on one
/// [`ThreadPool::run_mut`] call.
///
/// The raw pointers alias the caller's stack-borrowed slice and closure.
/// They are only dereferenced for claimed indices `i < len`, and the
/// caller blocks until `completed == len`, which happens only after every
/// such dereference has finished — so the pointers are always live when
/// used. `next` is monotonically increasing and never reset, so any
/// thread holding this state after completion claims `i >= len` and
/// touches nothing else.
struct JobState {
    items: *mut (),
    len: usize,
    f: *const (),
    call: unsafe fn(*mut (), usize, *const ()),
    next: AtomicUsize,
    completed: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

// SAFETY: the pointers are only dereferenced under the claim protocol
// described on the struct; `T: Send` and `F: Sync` are enforced by
// `run_mut`'s bounds before erasure.
unsafe impl Send for JobState {}
unsafe impl Sync for JobState {}

/// Pool-wide shared state: the published job and the condition variables
/// workers and callers sleep on.
struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new job epoch.
    work_cv: Condvar,
    /// The submitting caller waits here for `completed == len`.
    done_cv: Condvar,
}

struct PoolState {
    job: Option<Arc<JobState>>,
    epoch: u64,
    shutdown: bool,
}

/// A fixed-size pool of persistent worker threads executing borrowed,
/// disjoint-slice jobs.
///
/// `ThreadPool::new(t)` provides `t`-way parallelism: `t - 1` spawned
/// workers plus the calling thread, which participates in every job. A
/// pool of one thread spawns nothing and simply runs jobs inline, so the
/// thread-count knob can be exercised (and its results compared) all the
/// way down to 1 without a separate code path.
///
/// # Example
///
/// ```
/// let pool = qpool::ThreadPool::new(4);
/// let mut parts: Vec<Vec<u64>> = (0..8).map(|i| vec![i; 100]).collect();
/// pool.run_mut(&mut parts, |index, part| {
///     for v in part.iter_mut() {
///         *v += index as u64;
///     }
/// });
/// assert!(parts.iter().enumerate().all(|(i, p)| p.iter().all(|&v| v == 2 * i as u64)));
/// ```
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes submitters so one job is in flight at a time.
    submit: Mutex<()>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool providing `threads`-way parallelism (clamped to at
    /// least 1). Spawns `threads - 1` OS threads; the caller of
    /// [`Self::run_mut`] is always the remaining worker.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            submit: Mutex::new(()),
            threads,
        }
    }

    /// The parallelism this pool provides (spawned workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(index, &mut items[index])` for every item, spread across
    /// the pool plus the calling thread, and blocks until all items have
    /// finished. Each item is visited exactly once; distinct items may run
    /// concurrently, so `f` must not assume any ordering between them.
    ///
    /// # Panics
    ///
    /// If `f` panics on any item, the remaining items still run, and the
    /// first caught payload is re-raised on the caller once the job
    /// drains. The pool itself survives and can run further jobs.
    pub fn run_mut<T, F>(&self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        if items.is_empty() {
            return;
        }
        /// Monomorphized shim reconstituting the erased types.
        ///
        /// SAFETY (caller contract): `items` points to a live `[T]` of at
        /// least `index + 1` elements, `f` to a live `F`, and `index` is
        /// claimed by exactly one thread.
        unsafe fn call_item<T, F: Fn(usize, &mut T) + Sync>(
            items: *mut (),
            index: usize,
            f: *const (),
        ) {
            let f = unsafe { &*f.cast::<F>() };
            f(index, unsafe { &mut *items.cast::<T>().add(index) });
        }

        let _submission = self.submit.lock().expect("pool submit lock");
        let job = Arc::new(JobState {
            items: items.as_mut_ptr().cast(),
            len: items.len(),
            f: std::ptr::from_ref(&f).cast(),
            call: call_item::<T, F>,
            next: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.job = Some(Arc::clone(&job));
            state.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        // The caller is a full participant; with zero spawned workers this
        // is simply the serial loop.
        claim_loop(&self.shared, &job);
        let mut state = self.shared.state.lock().expect("pool state lock");
        while job.completed.load(Ordering::Acquire) < job.len {
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("pool done condvar");
        }
        drop(state);
        // All dereferences of `items`/`f` are complete; the borrows are
        // released when this frame returns.
        let payload = job.panic.lock().expect("pool panic slot").take();
        if let Some(payload) = payload {
            // Release the submission slot cleanly (an unwinding drop would
            // poison it and wedge every later job) before re-raising.
            drop(_submission);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state lock");
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Claims and executes items from `job` until the claim counter is
/// exhausted, recording the first panic payload and waking the caller
/// when the last item completes.
fn claim_loop(shared: &Shared, job: &Arc<JobState>) {
    loop {
        let index = job.next.fetch_add(1, Ordering::AcqRel);
        if index >= job.len {
            return;
        }
        // SAFETY: `index < len` was claimed exactly once, and the
        // submitting caller keeps `items`/`f` alive until `completed`
        // reaches `len`, which cannot happen before this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe {
            (job.call)(job.items, index, job.f)
        }));
        if let Err(payload) = result {
            let mut slot = job.panic.lock().expect("pool panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let done = job.completed.fetch_add(1, Ordering::AcqRel) + 1;
        if done == job.len {
            // Lock the pool mutex before notifying so the caller cannot
            // check the counter and then sleep between our increment and
            // this wakeup.
            let _state = shared.state.lock().expect("pool state lock");
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break Arc::clone(state.job.as_ref().expect("epoch implies job"));
                }
                state = shared.work_cv.wait(state).expect("pool work condvar");
            }
        };
        claim_loop(shared, &job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_item_exactly_once() {
        let pool = ThreadPool::new(4);
        let mut hits = vec![0u32; 1000];
        pool.run_mut(&mut hits, |_, h| *h += 1);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn passes_matching_index_and_item() {
        let pool = ThreadPool::new(3);
        let mut items: Vec<usize> = (0..257).collect();
        pool.run_mut(&mut items, |index, item| {
            assert_eq!(index, *item);
            *item = index * 2;
        });
        assert!(items.iter().enumerate().all(|(i, &v)| v == 2 * i));
    }

    #[test]
    fn single_thread_pool_spawns_no_workers_and_still_runs() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut items = vec![0u8; 17];
        pool.run_mut(&mut items, |_, v| *v = 7);
        assert!(items.iter().all(|&v| v == 7));
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
    }

    #[test]
    fn empty_item_list_is_a_no_op() {
        let pool = ThreadPool::new(2);
        let mut items: Vec<u64> = Vec::new();
        pool.run_mut(&mut items, |_, _| unreachable!("no items"));
    }

    #[test]
    fn reuse_across_many_jobs_is_deterministic() {
        let pool = ThreadPool::new(4);
        let mut acc = vec![0u64; 64];
        for round in 1..=100u64 {
            pool.run_mut(&mut acc, |_, v| *v += round);
        }
        let expected: u64 = (1..=100).sum();
        assert!(acc.iter().all(|&v| v == expected));
    }

    #[test]
    fn borrows_caller_locals_without_moving_them() {
        let pool = ThreadPool::new(3);
        let offsets: Vec<u64> = (0..8).map(|i| i * 10).collect();
        let mut out = vec![0u64; 8];
        pool.run_mut(&mut out, |index, v| *v = offsets[index] + 1);
        assert_eq!(out, vec![1, 11, 21, 31, 41, 51, 61, 71]);
    }

    #[test]
    fn panic_propagates_to_caller_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let mut items = vec![0u32; 32];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_mut(&mut items, |index, _| {
                if index == 13 {
                    panic!("injected task panic");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(message.contains("injected task panic"), "got {message}");
        // Every non-panicking item still ran, and the pool is reusable.
        let mut again = vec![0u32; 32];
        pool.run_mut(&mut again, |_, v| *v = 5);
        assert!(again.iter().all(|&v| v == 5));
    }

    #[test]
    fn all_threads_participate_under_blocking_load() {
        // With tasks that block until every thread has arrived, the job
        // can only finish if the pool really provides `threads`-way
        // parallelism (caller + spawned workers).
        let threads = 3;
        let pool = ThreadPool::new(threads);
        let arrived = AtomicU64::new(0);
        let mut items = vec![(); threads];
        pool.run_mut(&mut items, |_, ()| {
            arrived.fetch_add(1, Ordering::SeqCst);
            while arrived.load(Ordering::SeqCst) < threads as u64 {
                std::thread::yield_now();
            }
        });
        assert_eq!(arrived.load(Ordering::SeqCst), threads as u64);
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        let pool = Arc::new(ThreadPool::new(2));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    let mut items = vec![1u64; 100];
                    for _ in 0..50 {
                        pool.run_mut(&mut items, |_, v| *v += 1);
                    }
                    assert!(items.iter().all(|&v| v == 51));
                });
            }
        });
    }
}
