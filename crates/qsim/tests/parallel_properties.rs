//! Property-based tests for the pooled execution path and the split
//! re/im (struct-of-arrays) state layout.

use qcheck::{prop_assert, prop_assert_eq, properties, vec};

use qsim::diagonal::DiagonalOperator;
use qsim::exec::Executor;
use qsim::{fused, gates, Complex, StateVector};

/// Builds a pseudo-random (but deterministic) non-trivial state by applying
/// a short layer of parameterized gates to the uniform superposition.
fn scrambled_state(num_qubits: usize, angles: &[f64]) -> StateVector {
    let mut psi = StateVector::uniform_superposition(num_qubits);
    for (i, &a) in angles.iter().enumerate() {
        let q = i % num_qubits;
        match i % 3 {
            0 => gates::rx(&mut psi, q, a),
            1 => gates::rz(&mut psi, q, a),
            _ => gates::ry(&mut psi, q, a),
        }
    }
    psi
}

fn diagonal_for(n: usize, scale: f64) -> DiagonalOperator {
    DiagonalOperator::from_fn(n, |z| z.count_ones() as f64 + scale * z as f64)
}

properties! {
    /// 1, 2, 4, and 8 pooled workers produce bit-identical expectations:
    /// the pool width never enters the arithmetic (elementwise sweep
    /// chunking + fixed-size reduction chunks folded in index order).
    fn thread_count_invariance(
        n in 2usize..10,
        angles in vec(-3.0f64..3.0, 1usize..8),
        gamma in -2.0f64..2.0,
        beta in -1.5f64..1.5,
        scale in 0.01f64..0.2,
    ) {
        let op = diagonal_for(n, scale);
        let source = scrambled_state(n, &angles);
        let mut bits = Vec::new();
        for threads in [1usize, 2, 4, 8] {
            let exec = Executor::threaded_with_crossover(threads, 1);
            let mut psi = source.clone();
            op.apply_phase_rx_all_exec(&mut psi, gamma, 2.0 * beta, &exec);
            bits.push(op.expectation_exec(&psi, &exec).to_bits());
        }
        prop_assert_eq!(bits[0], bits[1]);
        prop_assert_eq!(bits[0], bits[2]);
        prop_assert_eq!(bits[0], bits[3]);
    }

    /// Pooled sweeps (any width) are bit-identical to the serial sweep —
    /// chunk boundaries never change per-element arithmetic.
    fn pooled_sweeps_bit_identical_to_serial(
        n in 2usize..9,
        angles in vec(-3.0f64..3.0, 1usize..8),
        gamma in -2.0f64..2.0,
        theta in -3.0f64..3.0,
        threads in 1usize..9,
    ) {
        let op = diagonal_for(n, 0.05);
        let mut serial = scrambled_state(n, &angles);
        let mut pooled = serial.clone();
        fused::phase_rx_all(&mut serial, op.values(), gamma, theta);
        let exec = Executor::threaded_with_crossover(threads, 1);
        fused::phase_rx_all_exec(&mut pooled, op.values(), gamma, theta, &exec);
        prop_assert_eq!(&pooled, &serial);
    }

    /// Split re/im storage round-trips exactly through the interleaved
    /// view: every amplitude survives gather + rebuild bit-for-bit.
    fn split_interleaved_round_trip_is_exact(
        n in 1usize..9,
        angles in vec(-3.0f64..3.0, 1usize..10),
    ) {
        let psi = scrambled_state(n, &angles);
        let rebuilt = StateVector::from_amplitudes(psi.to_amplitudes());
        prop_assert_eq!(&rebuilt, &psi);
        for i in 0..psi.dim() {
            let a = psi.amplitude(i);
            prop_assert_eq!(a, Complex::new(psi.re()[i], psi.im()[i]));
            prop_assert_eq!(a.re.to_bits(), rebuilt.re()[i].to_bits());
            prop_assert_eq!(a.im.to_bits(), rebuilt.im()[i].to_bits());
        }
    }

    /// Random fused sweeps are unitary on the pooled path: norm stays 1.
    fn norm_preserved_under_random_pooled_fused_sweeps(
        n in 2usize..9,
        angles in vec(-3.0f64..3.0, 1usize..6),
        layers in vec(-2.0f64..2.0, 2usize..8),
        threads in 1usize..6,
    ) {
        let op = diagonal_for(n, 0.1);
        let exec = Executor::threaded_with_crossover(threads, 1);
        let mut psi = scrambled_state(n, &angles);
        for pair in layers.chunks(2) {
            let gamma = pair[0];
            let theta = *pair.get(1).unwrap_or(&0.7);
            fused::phase_rx_all_exec(&mut psi, op.values(), gamma, theta, &exec);
        }
        prop_assert!((psi.norm() - 1.0).abs() < 1e-10);
    }

    /// The pooled expectation reduction agrees with the serial fold to
    /// 1e-12 (the only place pooled and serial may differ at all).
    fn pooled_reduction_close_to_serial(
        n in 2usize..10,
        angles in vec(-3.0f64..3.0, 1usize..8),
        threads in 1usize..9,
        scale in 0.01f64..0.3,
    ) {
        let op = diagonal_for(n, scale);
        let psi = scrambled_state(n, &angles);
        let serial = op.expectation(&psi);
        let exec = Executor::threaded_with_crossover(threads, 1);
        let pooled = op.expectation_exec(&psi, &exec);
        prop_assert!((pooled - serial).abs() <= 1e-12);
    }
}
