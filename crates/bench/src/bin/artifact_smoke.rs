//! CI smoke test for run artifacts: train a tiny model for each
//! architecture, save it, reload it **in a fresh process**, and diff the
//! predictions bit for bit against the in-memory model. Exits non-zero on
//! any mismatch or load failure.
//!
//! ```text
//! cargo run --release -p qaoa-gnn-bench --bin artifact_smoke
//! ```
//!
//! The fresh process matters: it proves inference parity holds from the
//! file alone — no shared memory, no leftover state — which is the
//! deployment scenario for a trained warm-starter.

use std::fs;
use std::process::{Command, ExitCode};

use gnn::train::TrainConfig;
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::LabelConfig;
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::store::artifact_path_for_kind;
use qaoa_gnn::RunArtifact;
use qgraph::generate::DatasetSpec;
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

fn probe_graphs() -> Vec<Graph> {
    let mut rng = StdRng::seed_from_u64(13);
    let mut graphs = vec![
        Graph::cycle(9).expect("cycle"),
        Graph::complete(6).expect("complete"),
        Graph::star(8).expect("star"),
    ];
    for i in 0..4 {
        graphs.push(qgraph::generate::erdos_renyi(6 + i, 0.5, &mut rng).expect("generate"));
    }
    graphs
}

/// Formats predictions as raw f64 bits — any drift, down to the last ulp,
/// changes this string.
fn prediction_bits(model: &GnnModel) -> String {
    probe_graphs()
        .iter()
        .map(|g| {
            let (gamma, beta) = model.predict(g);
            format!("n={} {:016x} {:016x}\n", g.n(), gamma.to_bits(), beta.to_bits())
        })
        .collect()
}

/// Child mode: load the artifact at `path`, rebuild the model, print the
/// prediction bits. All failures are typed errors on stderr, never panics.
fn child(path: &str) -> ExitCode {
    let artifact = match RunArtifact::load(path) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("FAIL: child could not load artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match artifact.build_model() {
        Ok(m) => m,
        Err(e) => {
            eprintln!("FAIL: child could not rebuild model: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", prediction_bits(&model));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--load" {
        return child(&args[2]);
    }

    let dir = std::env::temp_dir().join("qaoa_gnn_artifact_smoke");
    let _ = fs::remove_dir_all(&dir);
    let exe = std::env::current_exe().expect("current_exe");

    for (i, kind) in GnnKind::ALL.into_iter().enumerate() {
        let path = artifact_path_for_kind(&dir.join("run.json"), kind);
        let config = PipelineConfig {
            dataset: DatasetSpec::with_count(20),
            labeling: LabelConfig::quick(30),
            training: TrainConfig::quick(5),
            test_size: 5,
            ..PipelineConfig::paper_scale()
        }
        .with_seed(500 + i as u64)
        .with_artifact_path(Some(path.clone()));

        println!("{kind}: training tiny model and saving {}...", path.display());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pipeline = Pipeline::run(kind, &config, &mut rng);
        let expected = prediction_bits(&pipeline.model);

        let output = match Command::new(&exe).arg("--load").arg(&path).output() {
            Ok(out) => out,
            Err(e) => {
                eprintln!("FAIL: {kind}: could not spawn fresh process: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !output.status.success() {
            eprintln!(
                "FAIL: {kind}: fresh process exited with {:?}: {}",
                output.status.code(),
                String::from_utf8_lossy(&output.stderr)
            );
            return ExitCode::FAILURE;
        }
        let got = String::from_utf8_lossy(&output.stdout);
        if got != expected {
            eprintln!(
                "FAIL: {kind}: fresh-process predictions differ\n-- in-memory --\n{expected}\n-- fresh process --\n{got}"
            );
            return ExitCode::FAILURE;
        }
        println!("{kind}: fresh-process predictions bit-identical ({} probes)", probe_graphs().len());
    }

    let _ = fs::remove_dir_all(&dir);
    println!("artifact smoke OK: all four architectures round-trip bit-exactly across processes");
    ExitCode::SUCCESS
}
