//! Learning-rate schedulers.
//!
//! The paper uses "ReduceLROnPlateau as scheduler to monitor the training
//! loss and reduces the learning rate when there is no improvements for a
//! defined number of epochs. In particular, we set scheduler mode to min,
//! factor to 5, patience to 5 and minimum learning rate to 1e-5" (§4.1).
//! [`ReduceLrOnPlateau`] reproduces that behavior (interpreting "factor 5"
//! as dividing the rate by 5, the multiplicative factor 0.2). [`StepLr`] and
//! [`CosineAnnealing`] support the ablations.


use crate::optim::Optimizer;

/// Whether a monitored metric should decrease or increase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlateauMode {
    /// Improvement means the metric got smaller (loss — the paper's mode).
    Min,
    /// Improvement means the metric got larger (accuracy-style).
    Max,
}

/// Reduce-on-plateau scheduler: cuts the learning rate by `factor` when the
/// monitored metric has not improved for `patience` consecutive epochs.
///
/// # Example
///
/// ```
/// use tensor::optim::{Adam, Optimizer};
/// use tensor::sched::{PlateauMode, ReduceLrOnPlateau};
///
/// let mut opt = Adam::new(0.01);
/// let mut sched = ReduceLrOnPlateau::paper_default();
/// // Stagnant loss for many epochs drives the rate down.
/// for _ in 0..12 {
///     sched.step(1.0, &mut opt);
/// }
/// assert!(opt.learning_rate() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceLrOnPlateau {
    /// Improvement direction.
    pub mode: PlateauMode,
    /// Multiplicative factor applied on plateau (e.g. `0.2` = divide by 5).
    pub factor: f64,
    /// Epochs without improvement before reducing.
    pub patience: usize,
    /// Lower bound on the learning rate.
    pub min_lr: f64,
    best: Option<f64>,
    bad_epochs: usize,
}

impl ReduceLrOnPlateau {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor < 1` and `min_lr >= 0`.
    pub fn new(mode: PlateauMode, factor: f64, patience: usize, min_lr: f64) -> Self {
        assert!(factor > 0.0 && factor < 1.0, "factor must be in (0, 1)");
        assert!(min_lr >= 0.0, "min_lr must be non-negative");
        ReduceLrOnPlateau {
            mode,
            factor,
            patience,
            min_lr,
            best: None,
            bad_epochs: 0,
        }
    }

    /// The paper's §4.1 configuration: mode `min`, factor 5 (i.e. ×0.2),
    /// patience 5, minimum learning rate `1e-5`.
    pub fn paper_default() -> Self {
        Self::new(PlateauMode::Min, 0.2, 5, 1e-5)
    }

    /// Snapshots the mutable scheduler state (best metric seen and the
    /// current bad-epoch streak) for checkpointing. Hyperparameters are not
    /// included — the restoring side reconstructs the scheduler from config
    /// and grafts this state on via [`Self::import_state`].
    pub fn export_state(&self) -> PlateauState {
        PlateauState {
            best: self.best,
            bad_epochs: self.bad_epochs,
        }
    }

    /// Restores state captured by [`Self::export_state`]. After import the
    /// scheduler steps bit-identically to the one the state came from
    /// (given identical hyperparameters).
    pub fn import_state(&mut self, state: &PlateauState) {
        self.best = state.best;
        self.bad_epochs = state.bad_epochs;
    }

    /// Reports one epoch's metric; reduces the optimizer's learning rate if
    /// the plateau condition fires. Returns `true` when a reduction
    /// happened.
    pub fn step<O: Optimizer + ?Sized>(&mut self, metric: f64, optimizer: &mut O) -> bool {
        let improved = match (self.best, self.mode) {
            (None, _) => true,
            (Some(best), PlateauMode::Min) => metric < best,
            (Some(best), PlateauMode::Max) => metric > best,
        };
        if improved {
            self.best = Some(metric);
            self.bad_epochs = 0;
            return false;
        }
        self.bad_epochs += 1;
        if self.bad_epochs > self.patience {
            let new_lr = (optimizer.learning_rate() * self.factor).max(self.min_lr);
            let reduced = new_lr < optimizer.learning_rate();
            optimizer.set_learning_rate(new_lr);
            self.bad_epochs = 0;
            return reduced;
        }
        false
    }
}

/// The mutable state of a [`ReduceLrOnPlateau`] scheduler, detached from its
/// hyperparameters for checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct PlateauState {
    /// Best metric observed so far (`None` before the first step).
    pub best: Option<f64>,
    /// Consecutive epochs without improvement.
    pub bad_epochs: usize,
}

/// Step decay: multiply the learning rate by `gamma` every `step_size`
/// epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct StepLr {
    /// Epochs between decays.
    pub step_size: usize,
    /// Multiplicative decay factor.
    pub gamma: f64,
    epoch: usize,
    base_lr: Option<f64>,
}

impl StepLr {
    /// Creates a step scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `step_size >= 1` and `0 < gamma <= 1`.
    pub fn new(step_size: usize, gamma: f64) -> Self {
        assert!(step_size >= 1, "step size must be at least 1");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        StepLr {
            step_size,
            gamma,
            epoch: 0,
            base_lr: None,
        }
    }

    /// Advances one epoch and updates the optimizer's learning rate.
    pub fn step<O: Optimizer + ?Sized>(&mut self, optimizer: &mut O) {
        let base = *self.base_lr.get_or_insert_with(|| optimizer.learning_rate());
        self.epoch += 1;
        let decays = (self.epoch / self.step_size) as i32;
        optimizer.set_learning_rate(base * self.gamma.powi(decays));
    }
}

/// Cosine annealing from the optimizer's initial rate down to `eta_min`
/// over `t_max` epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct CosineAnnealing {
    /// Annealing horizon in epochs.
    pub t_max: usize,
    /// Final learning rate.
    pub eta_min: f64,
    epoch: usize,
    base_lr: Option<f64>,
}

impl CosineAnnealing {
    /// Creates a cosine-annealing scheduler.
    ///
    /// # Panics
    ///
    /// Panics unless `t_max >= 1` and `eta_min >= 0`.
    pub fn new(t_max: usize, eta_min: f64) -> Self {
        assert!(t_max >= 1, "t_max must be at least 1");
        assert!(eta_min >= 0.0, "eta_min must be non-negative");
        CosineAnnealing {
            t_max,
            eta_min,
            epoch: 0,
            base_lr: None,
        }
    }

    /// Advances one epoch and updates the optimizer's learning rate.
    pub fn step<O: Optimizer + ?Sized>(&mut self, optimizer: &mut O) {
        let base = *self.base_lr.get_or_insert_with(|| optimizer.learning_rate());
        self.epoch = (self.epoch + 1).min(self.t_max);
        let progress = self.epoch as f64 / self.t_max as f64;
        let lr = self.eta_min
            + 0.5 * (base - self.eta_min) * (1.0 + (std::f64::consts::PI * progress).cos());
        optimizer.set_learning_rate(lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;

    #[test]
    fn plateau_reduces_after_patience() {
        let mut opt = Sgd::new(1.0);
        let mut sched = ReduceLrOnPlateau::new(PlateauMode::Min, 0.2, 2, 1e-5);
        assert!(!sched.step(1.0, &mut opt)); // sets best
        assert!(!sched.step(1.0, &mut opt)); // bad 1
        assert!(!sched.step(1.0, &mut opt)); // bad 2 == patience
        assert!(sched.step(1.0, &mut opt)); // bad 3 > patience → reduce
        assert!((opt.learning_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn plateau_resets_on_improvement() {
        let mut opt = Sgd::new(1.0);
        let mut sched = ReduceLrOnPlateau::new(PlateauMode::Min, 0.5, 1, 1e-5);
        sched.step(1.0, &mut opt);
        sched.step(1.0, &mut opt); // bad 1
        sched.step(0.5, &mut opt); // improvement resets
        sched.step(0.6, &mut opt); // bad 1
        assert_eq!(opt.learning_rate(), 1.0); // not yet reduced
        assert!(sched.step(0.6, &mut opt)); // bad 2 > patience 1 → reduce
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    fn plateau_respects_min_lr() {
        let mut opt = Sgd::new(1e-4);
        let mut sched = ReduceLrOnPlateau::paper_default();
        for _ in 0..100 {
            sched.step(1.0, &mut opt);
        }
        assert!((opt.learning_rate() - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn plateau_max_mode() {
        let mut opt = Sgd::new(1.0);
        let mut sched = ReduceLrOnPlateau::new(PlateauMode::Max, 0.5, 0, 0.0);
        sched.step(0.5, &mut opt);
        assert!(sched.step(0.4, &mut opt)); // worse in max mode → reduce
        assert_eq!(opt.learning_rate(), 0.5);
        assert!(!sched.step(0.9, &mut opt)); // improvement
    }

    #[test]
    fn paper_default_matches_section_4_1() {
        let s = ReduceLrOnPlateau::paper_default();
        assert_eq!(s.mode, PlateauMode::Min);
        assert!((s.factor - 0.2).abs() < 1e-12);
        assert_eq!(s.patience, 5);
        assert!((s.min_lr - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn step_lr_decays_on_schedule() {
        let mut opt = Sgd::new(1.0);
        let mut sched = StepLr::new(2, 0.1);
        sched.step(&mut opt); // epoch 1
        assert_eq!(opt.learning_rate(), 1.0);
        sched.step(&mut opt); // epoch 2 → decay once
        assert!((opt.learning_rate() - 0.1).abs() < 1e-12);
        sched.step(&mut opt); // epoch 3
        assert!((opt.learning_rate() - 0.1).abs() < 1e-12);
        sched.step(&mut opt); // epoch 4 → decay twice
        assert!((opt.learning_rate() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn cosine_hits_eta_min_at_horizon() {
        let mut opt = Sgd::new(1.0);
        let mut sched = CosineAnnealing::new(10, 0.001);
        let mut last = opt.learning_rate();
        for _ in 0..10 {
            sched.step(&mut opt);
            assert!(opt.learning_rate() <= last + 1e-12, "monotone decay");
            last = opt.learning_rate();
        }
        assert!((opt.learning_rate() - 0.001).abs() < 1e-9);
        // Stays clamped past the horizon.
        sched.step(&mut opt);
        assert!((opt.learning_rate() - 0.001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn bad_factor_rejected() {
        let _ = ReduceLrOnPlateau::new(PlateauMode::Min, 1.5, 5, 0.0);
    }

    /// Export mid-sequence, import into a fresh scheduler, and drive both
    /// through the same metric tail: decisions must match exactly.
    #[test]
    fn plateau_state_round_trip_preserves_decisions() {
        let metrics = [1.0, 0.9, 0.9, 0.9, 0.95, 0.9, 0.9, 0.9, 0.9, 0.85];
        let mut opt_a = Sgd::new(1.0);
        let mut sched_a = ReduceLrOnPlateau::new(PlateauMode::Min, 0.5, 2, 1e-5);
        for &m in &metrics[..4] {
            sched_a.step(m, &mut opt_a);
        }
        let state = sched_a.export_state();

        let mut opt_b = Sgd::new(opt_a.learning_rate());
        let mut sched_b = ReduceLrOnPlateau::new(PlateauMode::Min, 0.5, 2, 1e-5);
        sched_b.import_state(&state);
        assert_eq!(sched_b.export_state(), state);

        for &m in &metrics[4..] {
            let ra = sched_a.step(m, &mut opt_a);
            let rb = sched_b.step(m, &mut opt_b);
            assert_eq!(ra, rb, "reduction decision diverged at metric {m}");
            assert_eq!(opt_a.learning_rate().to_bits(), opt_b.learning_rate().to_bits());
        }
    }

    #[test]
    fn plateau_fresh_state_is_empty() {
        let sched = ReduceLrOnPlateau::paper_default();
        let state = sched.export_state();
        assert_eq!(state.best, None);
        assert_eq!(state.bad_epochs, 0);
    }
}
