//! # `SwapCell` — a lock-free hot-swap slot for shared immutable state
//!
//! The serving loop must roll a retrained artifact out mid-traffic with
//! zero dropped and zero torn requests. The workspace is dependency-free,
//! so this is a hand-rolled `arc-swap`: a two-slot cell where **readers
//! are lock-free** (a reader retries only when a concurrent swap has
//! completed, i.e. when the system as a whole made progress) and
//! **swappers serialize** on a mutex and briefly spin while the retired
//! slot's last readers drain. Swaps are rare (one per retrain); loads are
//! per-request, so the asymmetry is the right one.
//!
//! ## Protocol
//!
//! Each slot holds a raw `Arc<T>` pointer and a reader count. `current`
//! names the live slot. A **reader**:
//!
//! 1. loads `current` → `idx`,
//! 2. increments `slots[idx].readers` (SeqCst),
//! 3. re-checks `current == idx` (SeqCst) — on mismatch it decrements and
//!    retries without ever touching the pointer,
//! 4. clones the `Arc` out of the slot, decrements, and returns the clone
//!    (which keeps the value alive for as long as the caller needs,
//!    independent of any later swaps).
//!
//! A **swapper** (holding the writer mutex):
//!
//! 1. picks the *inactive* slot `idx = 1 - current`,
//! 2. spins until `slots[idx].readers == 0` (SeqCst load),
//! 3. installs the new pointer into `slots[idx]` (the old pointer it
//!    evicts has been reader-free since step 2),
//! 4. flips `current = idx` (SeqCst store), publishing the new value.
//!
//! ## Why no reader ever observes a freed or torn value
//!
//! The pointer itself is a single atomic word, so tearing is structurally
//! impossible; the hazard is use-after-free: a swapper reclaiming the
//! `Arc` evicted in step 3 while a reader still intends to clone it.
//! The SeqCst total order rules this out. Let `S2` be the flip that moved
//! `current` *away* from slot `idx` (the previous swap) and `D` the
//! drain load in step 2 that observed `readers == 0`; the writer mutex
//! orders `S2 < D`. Take any reader of slot `idx` with increment `A`
//! (step 2) and re-check load `R` (step 3), `A < R` in SeqCst order:
//!
//! * If `A < D` in the total order, the drain saw the reader and spun
//!   until its decrement — the evicted pointer is not reclaimed while
//!   this reader can reach it.
//! * If `D < A`, then `S2 < D < A < R`, so `R` observes `current ≠ idx`
//!   (no store returns `current` to `idx` until step 4, which the same
//!   swapper performs *after* replacing the pointer). The reader fails
//!   the re-check and retries without dereferencing. If `R` instead
//!   observes the *new* flip (step 4 already done), the pointer it then
//!   reads (SeqCst, after `R`) is the freshly installed one — the evicted
//!   value is unreachable either way.
//!
//! So `readers[idx] == 0` observed after `S2` really means no present or
//! future reader of the old pointer exists: reclamation is sound. This
//! argument is restated (and cross-referenced) in DESIGN.md §"Serving at
//! throughput"; the interleaving-stress tests below hammer it with
//! double-drop canaries.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One publication slot: a raw `Arc<T>` pointer plus the count of readers
/// currently inside steps 2–4 of the read protocol.
struct Slot {
    ptr: AtomicPtr<()>,
    readers: AtomicUsize,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            readers: AtomicUsize::new(0),
        }
    }
}

/// A lock-free publication cell: [`load`](SwapCell::load) hands out
/// `Arc<T>` clones of the current value; [`swap`](SwapCell::swap)
/// atomically publishes a replacement while readers keep going.
///
/// # Example
///
/// ```
/// use qpool::swap::SwapCell;
/// let cell = SwapCell::new("v1".to_string());
/// let before = cell.load();
/// let retired = cell.swap("v2".to_string());
/// assert_eq!(*cell.load(), "v2");
/// assert_eq!(*before, "v1"); // clones outlive the swap
/// assert!(retired.is_none()); // nothing evicted until the *second* swap
/// ```
pub struct SwapCell<T> {
    slots: [Slot; 2],
    /// Index of the live slot (0 or 1). Only ever flipped by a swapper
    /// holding `writer`, and only *after* the target slot is populated.
    current: AtomicUsize,
    /// Serializes swappers; never touched by readers.
    writer: Mutex<()>,
    _marker: PhantomData<Arc<T>>,
}

// SAFETY: the cell hands out `Arc<T>` clones across threads, which is
// exactly `Arc<T>: Send + Sync`, i.e. `T: Send + Sync`. The raw pointers
// are only dereferenced under the protocol proven in the module docs.
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// Creates a cell publishing `value`.
    pub fn new(value: T) -> SwapCell<T> {
        let cell = SwapCell {
            slots: [Slot::empty(), Slot::empty()],
            current: AtomicUsize::new(0),
            writer: Mutex::new(()),
            _marker: PhantomData,
        };
        cell.slots[0]
            .ptr
            .store(Arc::into_raw(Arc::new(value)).cast_mut().cast(), SeqCst);
        cell
    }

    /// Returns an `Arc` clone of the currently published value.
    ///
    /// Lock-free: never blocks, and retries only when a concurrent
    /// [`swap`](SwapCell::swap) completed between steps — each retry
    /// witnesses system-wide progress. The returned clone pins the value
    /// regardless of how many swaps happen afterwards.
    pub fn load(&self) -> Arc<T> {
        loop {
            let idx = self.current.load(SeqCst);
            let slot = &self.slots[idx];
            slot.readers.fetch_add(1, SeqCst);
            if self.current.load(SeqCst) == idx {
                let ptr = slot.ptr.load(SeqCst).cast_const().cast::<T>();
                // SAFETY: the re-check passed, so per the module-docs
                // ordering argument `ptr` is the live published `Arc`,
                // and our reader count blocks its reclamation until the
                // decrement below. Incrementing the strong count while
                // counted, then materializing, yields an owned clone.
                let arc = unsafe {
                    Arc::increment_strong_count(ptr);
                    Arc::from_raw(ptr)
                };
                slot.readers.fetch_sub(1, SeqCst);
                return arc;
            }
            // A swap flipped `current` under us; back out and retry.
            slot.readers.fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publishes `value`, returning the `Arc` *evicted* from the slot
    /// being reused — the value published two swaps ago, now proven
    /// reader-free (clones handed out by [`load`](SwapCell::load) may of
    /// course still be alive; dropping the returned `Arc` only releases
    /// the cell's own reference). Returns `None` on the first swap, when
    /// the reused slot is still empty.
    ///
    /// In-flight readers are never blocked, dropped, or redirected
    /// mid-read: each sees either the old value or the new one, intact.
    pub fn swap(&self, value: T) -> Option<Arc<T>> {
        let new_ptr: *mut () = Arc::into_raw(Arc::new(value)).cast_mut().cast();
        let _writer = self.writer.lock().expect("swap writer lock");
        let idx = 1 - self.current.load(SeqCst);
        let slot = &self.slots[idx];
        // Step 2: wait out stragglers still counted on the retired slot.
        // `current` has pointed away from `idx` since the previous swap,
        // so this count can only shrink (late arrivals fail the re-check
        // and back out; see the module docs).
        while slot.readers.load(SeqCst) != 0 {
            std::thread::yield_now();
        }
        let old = slot.ptr.swap(new_ptr, SeqCst);
        // Step 4: publish. From here every new reader lands on `value`.
        self.current.store(idx, SeqCst);
        if old.is_null() {
            return None;
        }
        // SAFETY: `old` was evicted after the drain observed zero readers
        // on a slot `current` had already left — per the module-docs
        // argument no reader can still reach it, so reclaiming the cell's
        // reference is sound.
        Some(unsafe { Arc::from_raw(old.cast_const().cast::<T>()) })
    }
}

impl<T> Drop for SwapCell<T> {
    fn drop(&mut self) {
        for slot in &self.slots {
            let ptr = slot.ptr.load(SeqCst);
            if !ptr.is_null() {
                // SAFETY: `&mut self` means no readers or swappers exist;
                // each non-null slot owns exactly one strong reference.
                drop(unsafe { Arc::from_raw(ptr.cast_const().cast::<T>()) });
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SwapCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapCell").field("value", &self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    #[test]
    fn load_returns_initial_value() {
        let cell = SwapCell::new(41u64);
        assert_eq!(*cell.load(), 41);
        assert_eq!(*cell.load(), 41);
    }

    #[test]
    fn swap_publishes_and_evicts_two_generations_behind() {
        let cell = SwapCell::new(0u64);
        assert!(cell.swap(1).is_none(), "first swap reuses the empty slot");
        assert_eq!(*cell.load(), 1);
        let evicted = cell.swap(2).expect("second swap evicts generation 0");
        assert_eq!(*evicted, 0);
        assert_eq!(*cell.load(), 2);
        assert_eq!(*cell.swap(3).unwrap(), 1);
        assert_eq!(*cell.load(), 3);
    }

    #[test]
    fn clones_pin_old_values_across_swaps() {
        let cell = SwapCell::new(String::from("old"));
        let pinned = cell.load();
        for round in 0..10 {
            cell.swap(format!("gen{round}"));
        }
        assert_eq!(*pinned, "old");
        assert_eq!(*cell.load(), "gen9");
    }

    /// A value whose invariant (`check == !gen`) would be visibly broken
    /// by a torn read, and whose drop is counted and double-drop-fatal —
    /// a stale-free or double-free under the stress tests below trips it.
    struct Canary {
        gen: u64,
        check: u64,
        dropped: AtomicBool,
        drops: Arc<AtomicU64>,
    }

    impl Canary {
        fn new(gen: u64, drops: &Arc<AtomicU64>) -> Canary {
            Canary {
                gen,
                check: !gen,
                dropped: AtomicBool::new(false),
                drops: Arc::clone(drops),
            }
        }
    }

    impl Drop for Canary {
        fn drop(&mut self) {
            assert!(
                !self.dropped.swap(true, Ordering::SeqCst),
                "canary gen {} dropped twice",
                self.gen
            );
            self.drops.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Loom-style interleaving stress (scaled for a 1-core CI container):
    /// swappers churn generations while readers assert, on every load,
    /// that the value is internally consistent and that the generation
    /// sequence each thread observes never goes backwards. Afterwards,
    /// every canary ever created was dropped exactly once.
    #[test]
    fn concurrent_swaps_never_tear_or_stale_free() {
        const READERS: usize = 4;
        const LOADS: usize = 20_000;
        const SWAPPERS: usize = 2;
        const SWAPS: u64 = 400;

        let drops = Arc::new(AtomicU64::new(0));
        let created = Arc::new(AtomicU64::new(1));
        let next_gen = Arc::new(AtomicU64::new(1));
        let cell = Arc::new(SwapCell::new(Canary::new(0, &drops)));

        std::thread::scope(|scope| {
            for _ in 0..SWAPPERS {
                let cell = Arc::clone(&cell);
                let drops = Arc::clone(&drops);
                let created = Arc::clone(&created);
                let next_gen = Arc::clone(&next_gen);
                scope.spawn(move || {
                    for _ in 0..SWAPS {
                        let gen = next_gen.fetch_add(1, Ordering::SeqCst);
                        created.fetch_add(1, Ordering::SeqCst);
                        // The returned eviction is reader-free; dropping
                        // it here is exactly the reclamation under test.
                        drop(cell.swap(Canary::new(gen, &drops)));
                        std::thread::yield_now();
                    }
                });
            }
            for _ in 0..READERS {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last_gen = 0u64;
                    for i in 0..LOADS {
                        let canary = cell.load();
                        assert_eq!(
                            canary.check, !canary.gen,
                            "torn or reused canary observed"
                        );
                        assert!(
                            canary.gen >= last_gen,
                            "generation went backwards: {} after {}",
                            canary.gen,
                            last_gen
                        );
                        last_gen = canary.gen;
                        if i % 1024 == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });

        let total = created.load(Ordering::SeqCst);
        assert_eq!(total, 1 + SWAPPERS as u64 * SWAPS);
        drop(cell); // reclaim the final two generations still in the slots
        assert_eq!(
            drops.load(Ordering::SeqCst),
            total,
            "every canary must be dropped exactly once"
        );
    }

    /// Readers that pin a clone mid-churn keep it valid arbitrarily long
    /// after many further swaps reclaimed everything else.
    #[test]
    fn pinned_clones_survive_heavy_churn() {
        let drops = Arc::new(AtomicU64::new(0));
        let cell = Arc::new(SwapCell::new(Canary::new(0, &drops)));
        let pinned: Vec<Arc<Canary>> = (0..8).map(|_| cell.load()).collect();
        std::thread::scope(|scope| {
            let cell = Arc::clone(&cell);
            let drops = Arc::clone(&drops);
            scope.spawn(move || {
                for gen in 1..=200 {
                    cell.swap(Canary::new(gen, &drops));
                }
            });
        });
        for canary in &pinned {
            assert_eq!(canary.gen, 0);
            assert_eq!(canary.check, !0);
        }
        drop(pinned);
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 201);
    }
}
