//! CI smoke test for the guarded serving layer: save an artifact, arm the
//! `forward` failpoint through the environment (the operational arming
//! path), and check that the first request degrades to fixed angles with
//! the hop recorded, the next request is clean and bit-identical to the
//! raw prediction path, hostile text is rejected with a typed line-number
//! error, and an out-of-envelope request degrades instead of serving a
//! model prediction it cannot trust. Exits non-zero on any violation.
//!
//! ```text
//! cargo run --release -p qaoa-gnn-bench --bin serve_smoke
//! ```

use std::process::ExitCode;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::LabelReport;
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::serve::ServeRequest;
use qaoa_gnn::{
    GuardedPredictor, RequestError, RunArtifact, Rung, ServeConfig, SkipReason, TrainingEnvelope,
};
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

fn fail(msg: &str) -> ExitCode {
    eprintln!("FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    // Arm one NaN injection on the GNN forward pass through the same
    // environment channel an operator would use. Set before any failpoint
    // is consulted, so the lazily-loaded spec is picked up.
    std::env::set_var("QAOA_GNN_FAULTS", "forward=nan:1");

    let mut rng = StdRng::seed_from_u64(6001);
    let model = GnnModel::new(
        GnnKind::Gcn,
        gnn::ModelConfig {
            hidden_dim: 4,
            ..gnn::ModelConfig::default()
        },
        &mut rng,
    );
    let artifact = RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: 0,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    };
    let path = std::env::temp_dir().join("qaoa_gnn_serve_smoke.json");
    if let Err(e) = artifact.save(&path) {
        return fail(&format!("saving artifact: {e}"));
    }
    let served = match GuardedPredictor::load(&path, ServeConfig::default()) {
        Ok(p) => p,
        Err(e) => return fail(&format!("loading artifact: {e}")),
    };

    let g = Graph::cycle(8).expect("cycle");

    // Request 1 hits the env-armed NaN injection and must degrade.
    let degraded = match served.handle(&ServeRequest::from_graph(g.clone())).result {
        Ok(o) => o,
        Err(e) => return fail(&format!("degraded request rejected: {e}")),
    };
    println!("request 1 (fault armed): {}", degraded.summary());
    if degraded.rung != Rung::FixedAngle {
        return fail(&format!("expected fixed-angle rung, got {}", degraded.rung));
    }
    if !matches!(degraded.skips[0].reason, SkipReason::NonFinite { .. }) {
        return fail("expected a recorded NonFinite skip on the gnn rung");
    }

    // Request 2: the injection budget is spent; clean and bit-identical.
    let clean = match served.handle(&ServeRequest::from_graph(g.clone())).result {
        Ok(o) => o,
        Err(e) => return fail(&format!("clean request rejected: {e}")),
    };
    println!("request 2 (disarmed):    {}", clean.summary());
    if !clean.is_clean() {
        return fail(&format!("expected a clean gnn outcome, got {}", clean.summary()));
    }
    let raw = match artifact.build_model() {
        Ok(m) => m,
        Err(e) => return fail(&format!("building raw model: {e}")),
    };
    let (rg, rb) = raw.predict(&g);
    let (sg, sb) = clean.angles();
    if rg.to_bits() != sg.to_bits() || rb.to_bits() != sb.to_bits() {
        return fail("guarded prediction is not bit-identical to the raw path");
    }

    // Hostile text: typed rejection with the offending line.
    match served.handle(&ServeRequest::from_text("n 3\ne 0 1 nan\n")).result {
        Err(RequestError::Parse(e)) if e.line == 2 => {
            println!("hostile text rejected:   {e}");
        }
        other => return fail(&format!("expected line-2 parse rejection, got {other:?}")),
    }

    // Out-of-envelope: degrade, never a silent model prediction.
    let big = Graph::cycle(20).expect("cycle");
    match served.handle(&ServeRequest::from_graph(big)).result {
        Ok(o) if o.rung != Rung::Gnn => {
            println!("out-of-envelope:         {}", o.summary());
        }
        Ok(o) => return fail(&format!("out-of-envelope served on gnn: {}", o.summary())),
        Err(e) => return fail(&format!("out-of-envelope rejected outright: {e}")),
    }

    let _ = std::fs::remove_file(&path);
    println!("serving smoke OK: degradation recorded, clean path bit-identical");
    ExitCode::SUCCESS
}
