//! NISQ-noise study: how the warm-start advantage survives depolarizing
//! noise.
//!
//! §1–2 motivate warm starts with the limits of noisy hardware. This
//! experiment runs p=1 QAOA under a per-layer depolarizing channel
//! (trajectory method) and compares fixed-angle initialization against the
//! average random initialization across noise rates.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::{fixed_angle, MaxCutHamiltonian, Params};
use qaoa_gnn_bench::{f4, print_table, write_csv};
use qsim::gates;
use qsim::noise::{trajectory_expectation, Depolarizing};

/// Noisy p=1 QAOA expectation with a depolarizing step after each layer.
fn noisy_expectation(
    hamiltonian: &MaxCutHamiltonian,
    params: &Params,
    channel: Depolarizing,
    trajectories: usize,
    rng: &mut StdRng,
) -> f64 {
    let operator = hamiltonian.operator().clone();
    trajectory_expectation(
        hamiltonian.num_qubits(),
        hamiltonian.operator().values(),
        channel,
        trajectories,
        rng,
        |psi, ch, rng| {
            for (&gamma, &beta) in params.gammas().iter().zip(params.betas()) {
                operator.apply_phase(psi, gamma);
                ch.apply_all(psi, rng);
                gates::rx_all(psi, 2.0 * beta);
                ch.apply_all(psi, rng);
            }
        },
    )
}

fn main() {
    let mut rng = StdRng::seed_from_u64(404);
    let graph = qgraph::generate::random_regular(10, 3, &mut rng).expect("feasible shape");
    let hamiltonian = MaxCutHamiltonian::new(&graph);
    let fixed = fixed_angle::fixed_angles(3).params;
    let trajectories = 200;
    let random_starts = 20;

    let mut rows = Vec::new();
    for &rate in &[0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let channel = Depolarizing::new(rate);
        let warm = noisy_expectation(&hamiltonian, &fixed, channel, trajectories, &mut rng);
        let mut random_total = 0.0;
        for _ in 0..random_starts {
            let p = Params::random(1, &mut rng);
            random_total +=
                noisy_expectation(&hamiltonian, &p, channel, trajectories / 4, &mut rng);
        }
        let random_mean = random_total / random_starts as f64;
        rows.push(vec![
            f4(rate),
            f4(hamiltonian.approximation_ratio(warm)),
            f4(hamiltonian.approximation_ratio(random_mean)),
            f4((warm - random_mean) / hamiltonian.optimal_value() * 100.0),
        ]);
        println!("noise {rate}: warm AR {:.4}", hamiltonian.approximation_ratio(warm));
    }
    let header = ["noise_rate", "ar_fixed_angles", "ar_random_mean", "advantage_pts"];
    print_table("Depolarizing-noise study (10-node 3-regular, p=1)", &header, &rows);
    let path = write_csv("ablation_noise.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
