//! # tensor — matrices and reverse-mode autodiff
//!
//! The approved offline dependency set contains no ML framework, so this
//! crate provides the minimal engine the paper's GNNs need:
//!
//! * [`Matrix`] — dense row-major `f64` matrices with the usual linear
//!   algebra and Xavier initialization.
//! * [`Tape`] / [`Tensor`] — define-by-run reverse-mode automatic
//!   differentiation with the operations graph networks use: matmul,
//!   activations, dropout, masked row softmax (GAT attention), neighbor max
//!   pooling (GraphSAGE), mean-pooling readout, and MSE/MAE/Huber losses.
//! * [`optim`] — SGD and Adam (the paper's optimizer, §4.1).
//! * [`sched`] — learning-rate schedulers including the paper's
//!   ReduceLROnPlateau configuration.
//!
//! ## Example: one gradient step
//!
//! ```
//! use tensor::optim::{Adam, Optimizer};
//! use tensor::{Matrix, Tape};
//!
//! let tape = Tape::new();
//! let w = tape.parameter(Matrix::from_rows(&[&[0.0, 0.0]]));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..5 {
//!     tape.reset();
//!     let loss = w.mse(&Matrix::from_rows(&[&[1.0, -1.0]]));
//!     tape.backward(&loss);
//!     opt.step(&[w.clone()]);
//! }
//! // Loss decreased from 1.0.
//! tape.reset();
//! assert!(w.mse(&Matrix::from_rows(&[&[1.0, -1.0]])).value()[(0, 0)] < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matrix;
mod tape;

pub mod io;
pub mod optim;
pub mod sched;

pub use matrix::Matrix;
pub use tape::{Tape, Tensor};
