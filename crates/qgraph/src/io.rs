//! Graph text format.
//!
//! §3.1: "Each graph is stored in a text file, which is then inputted into
//! the QAOA algorithm." The format used here is a minimal edge-list file:
//!
//! ```text
//! # optional comments
//! n <node-count>
//! e <u> <v> [weight]
//! e <u> <v> [weight]
//! ```
//!
//! Weights default to `1.0` when omitted, so unweighted dataset files stay
//! terse. [`write_graph`]/[`read_graph`] round-trip exactly.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::{Graph, GraphError, ParseError, ParseErrorKind};

/// Resource caps enforced while parsing untrusted graph text.
///
/// The parser is total — it never panics — but without caps a hostile
/// input can still declare a billion-node graph and make the caller
/// allocate it. `ParseLimits` bounds the input size, the declared node
/// count, and the edge count *before* any allocation proportional to them
/// happens. [`ParseLimits::default`] is sized for offline dataset files;
/// [`ParseLimits::serving`] is the strict profile a request path should
/// use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum raw input length in bytes.
    pub max_bytes: usize,
    /// Maximum declared node count.
    pub max_nodes: usize,
    /// Maximum edge-record count.
    pub max_edges: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_bytes: 64 << 20,
            max_nodes: 1 << 20,
            max_edges: 1 << 24,
        }
    }
}

impl ParseLimits {
    /// Strict limits for parsing request payloads on a serving path:
    /// 1 MiB of text, 4096 nodes, 1M edges.
    pub fn serving() -> Self {
        ParseLimits {
            max_bytes: 1 << 20,
            max_nodes: 4096,
            max_edges: 1 << 20,
        }
    }
}

/// Serializes a graph to the text format.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), qgraph::GraphError> {
/// let g = qgraph::Graph::from_edges(3, &[(0, 1), (1, 2)])?;
/// let text = qgraph::io::graph_to_string(&g);
/// let back = qgraph::io::graph_from_str(&text)?;
/// assert_eq!(g, back);
/// # Ok(())
/// # }
/// ```
pub fn graph_to_string(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "n {}", graph.n());
    for e in graph.edges() {
        if e.weight == 1.0 {
            let _ = writeln!(out, "e {} {}", e.u, e.v);
        } else {
            let _ = writeln!(out, "e {} {} {}", e.u, e.v, e.weight);
        }
    }
    out
}

/// Parses a graph from the text format with [`ParseLimits::default`] caps.
///
/// # Errors
///
/// Returns a typed [`ParseError`] anchored to a 1-based line number.
/// Structural problems — self-loops, duplicate edges, non-finite weights,
/// out-of-range endpoints — are reported against the line that introduced
/// them, not as bare construction errors.
pub fn graph_from_str(text: &str) -> Result<Graph, ParseError> {
    graph_from_str_limited(text, &ParseLimits::default())
}

/// [`graph_from_str`] with caller-chosen resource caps — the entry point
/// for untrusted request payloads.
///
/// # Errors
///
/// Typed [`ParseError`]s; cap violations surface as
/// [`ParseErrorKind::InputTooLarge`], [`ParseErrorKind::TooManyNodes`] or
/// [`ParseErrorKind::TooManyEdges`] before any proportional allocation.
pub fn graph_from_str_limited(text: &str, limits: &ParseLimits) -> Result<Graph, ParseError> {
    if text.len() > limits.max_bytes {
        return Err(ParseError::new(
            0,
            ParseErrorKind::InputTooLarge {
                bytes: text.len(),
                cap: limits.max_bytes,
            },
        ));
    }
    let mut graph: Option<Graph> = None;
    let mut edges = 0usize;
    let mut pending: Vec<(usize, usize, f64, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("n") => {
                let n: usize = parse_field(parts.next(), lineno, "node count")?;
                if graph.is_some() {
                    return Err(ParseError::new(lineno, ParseErrorKind::DuplicateHeader));
                }
                if n > limits.max_nodes {
                    return Err(ParseError::new(
                        lineno,
                        ParseErrorKind::TooManyNodes {
                            n,
                            cap: limits.max_nodes,
                        },
                    ));
                }
                if n == 0 {
                    return Err(ParseError::new(
                        lineno,
                        ParseErrorKind::Syntax("node count must be positive".into()),
                    ));
                }
                graph = Some(Graph::empty(n).expect("positive node count"));
            }
            Some("e") => {
                let u: usize = parse_field(parts.next(), lineno, "edge endpoint u")?;
                let v: usize = parse_field(parts.next(), lineno, "edge endpoint v")?;
                let w: f64 = match parts.next() {
                    Some(tok) => tok.parse().map_err(|_| {
                        ParseError::new(
                            lineno,
                            ParseErrorKind::Syntax(format!("invalid weight '{tok}'")),
                        )
                    })?,
                    None => 1.0,
                };
                if !w.is_finite() {
                    return Err(ParseError::new(
                        lineno,
                        ParseErrorKind::NonFiniteWeight(w),
                    ));
                }
                edges += 1;
                if edges > limits.max_edges {
                    return Err(ParseError::new(
                        lineno,
                        ParseErrorKind::TooManyEdges {
                            m: edges,
                            cap: limits.max_edges,
                        },
                    ));
                }
                pending.push((u, v, w, lineno));
            }
            Some(other) => {
                return Err(ParseError::new(
                    lineno,
                    ParseErrorKind::UnknownRecord(other.to_string()),
                ));
            }
            None => unreachable!("blank lines are skipped"),
        }
    }
    let mut graph = graph.ok_or(ParseError::new(0, ParseErrorKind::MissingHeader))?;
    for (u, v, w, lineno) in pending {
        graph.add_edge(u, v, w).map_err(|e| {
            let kind = match e {
                GraphError::SelfLoop(v) => ParseErrorKind::SelfLoop(v),
                GraphError::DuplicateEdge(u, v) => ParseErrorKind::DuplicateEdge(u, v),
                GraphError::NodeOutOfRange { node, n } => {
                    ParseErrorKind::NodeOutOfRange { node, n }
                }
                GraphError::InvalidWeight(w) => ParseErrorKind::NonFiniteWeight(w),
                other => ParseErrorKind::Syntax(other.to_string()),
            };
            ParseError::new(lineno, kind)
        })?;
    }
    Ok(graph)
}

fn parse_field<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    let tok = tok.ok_or_else(|| {
        ParseError::new(line, ParseErrorKind::Syntax(format!("missing {what}")))
    })?;
    tok.parse().map_err(|_| {
        ParseError::new(
            line,
            ParseErrorKind::Syntax(format!("invalid {what} '{tok}'")),
        )
    })
}

/// Writes a graph to `path` in the text format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_graph<P: AsRef<Path>>(graph: &Graph, path: P) -> io::Result<()> {
    fs::write(path, graph_to_string(graph))
}

/// Reads a graph from a text-format file.
///
/// # Errors
///
/// Returns an I/O error for filesystem failures; parse failures are wrapped
/// into [`io::ErrorKind::InvalidData`].
pub fn read_graph<P: AsRef<Path>>(path: P) -> io::Result<Graph> {
    let text = fs::read_to_string(path)?;
    graph_from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_unweighted() {
        let g = Graph::cycle(5).unwrap();
        let s = graph_to_string(&g);
        assert!(s.starts_with("n 5\n"));
        assert!(s.contains("e 0 1\n"));
        assert_eq!(graph_from_str(&s).unwrap(), g);
    }

    #[test]
    fn round_trip_weighted() {
        let g = Graph::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 1.0)]).unwrap();
        let s = graph_to_string(&g);
        assert!(s.contains("e 0 1 2.5"));
        assert!(s.contains("e 1 2\n")); // weight-1 edges stay terse
        assert_eq!(graph_from_str(&s).unwrap(), g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a graph\n\nn 2\n# edge below\ne 0 1\n";
        let g = graph_from_str(text).unwrap();
        assert_eq!(g.n(), 2);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = graph_from_str("n 2\ne 0\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Syntax(_)));
        assert_eq!(err.line, 2);
        let err = graph_from_str("x 1\n").unwrap_err();
        assert_eq!(err, ParseError::new(1, ParseErrorKind::UnknownRecord("x".into())));
        let err = graph_from_str("e 0 1\n").unwrap_err();
        assert_eq!(err, ParseError::new(0, ParseErrorKind::MissingHeader));
        let err = graph_from_str("n 2\nn 3\n").unwrap_err();
        assert_eq!(err, ParseError::new(2, ParseErrorKind::DuplicateHeader));
        let err = graph_from_str("n 2\ne 0 1 abc\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Syntax(_)));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn structural_errors_are_typed_with_line_numbers() {
        let err = graph_from_str("n 2\ne 0 5\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::new(2, ParseErrorKind::NodeOutOfRange { node: 5, n: 2 })
        );
        let err = graph_from_str("n 2\ne 0 0\n").unwrap_err();
        assert_eq!(err, ParseError::new(2, ParseErrorKind::SelfLoop(0)));
        let err = graph_from_str("n 3\ne 0 1\n# comment\ne 1 0 2.0\n").unwrap_err();
        assert_eq!(err, ParseError::new(4, ParseErrorKind::DuplicateEdge(0, 1)));
        // Legacy conversion keeps the line number.
        let legacy: GraphError = err.into();
        assert!(matches!(legacy, GraphError::Parse { line: 4, .. }));
    }

    #[test]
    fn non_finite_weights_rejected_at_parse_time() {
        for tok in ["nan", "NaN", "inf", "-inf", "infinity"] {
            let text = format!("n 2\ne 0 1 {tok}\n");
            let err = graph_from_str(&text).unwrap_err();
            assert!(
                matches!(err.kind, ParseErrorKind::NonFiniteWeight(_)),
                "token {tok} gave {err:?}"
            );
            assert_eq!(err.line, 2, "token {tok}");
        }
    }

    #[test]
    fn zero_node_header_rejected() {
        let err = graph_from_str("n 0\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Syntax(_)));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn limits_are_enforced_before_allocation() {
        let limits = ParseLimits {
            max_bytes: 64,
            max_nodes: 10,
            max_edges: 2,
        };
        let big = "#".repeat(100);
        assert!(matches!(
            graph_from_str_limited(&big, &limits).unwrap_err().kind,
            ParseErrorKind::InputTooLarge { bytes: 100, cap: 64 }
        ));
        // A huge declared node count is refused without building the graph.
        assert!(matches!(
            graph_from_str_limited("n 99999999\n", &limits).unwrap_err().kind,
            ParseErrorKind::TooManyNodes { n: 99999999, cap: 10 }
        ));
        let err = graph_from_str_limited("n 4\ne 0 1\ne 1 2\ne 2 3\n", &limits).unwrap_err();
        assert_eq!(
            err,
            ParseError::new(4, ParseErrorKind::TooManyEdges { m: 3, cap: 2 })
        );
        // Within limits parses as usual.
        let g = graph_from_str_limited("n 3\ne 0 1\ne 1 2\n", &limits).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn serving_limits_are_stricter_than_default() {
        let d = ParseLimits::default();
        let s = ParseLimits::serving();
        assert!(s.max_bytes < d.max_bytes);
        assert!(s.max_nodes < d.max_nodes);
        assert!(s.max_edges < d.max_edges);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("qgraph_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = Graph::complete(4).unwrap();
        write_graph(&g, &path).unwrap();
        let back = read_graph(&path).unwrap();
        assert_eq!(g, back);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        assert!(read_graph("/nonexistent/definitely/missing.txt").is_err());
    }
}
