//! Property-based tests for the QAOA stack.

use qcheck::{any_u64, prop_assert, prop_assert_eq, prop_assume, properties, vec};
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::optimize::{Maximizer, NelderMead, Spsa};
use qaoa::{analytic, Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::generate;

/// The suite's "arbitrary graph": a seeded Erdős–Rényi draw, built from
/// primitive case coordinates so qcheck can shrink toward small graphs.
fn build_graph(n: usize, p: f64, seed: u64) -> qgraph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::erdos_renyi(n, p, &mut rng).expect("valid parameters")
}

properties! {
    cases = 48;

    fn expectation_bounded_by_spectrum(
        n in 3usize..9,
        p in 0.2f64..0.9,
        seed in any_u64(),
        gamma in -7.0f64..7.0,
        beta in -4.0f64..4.0,
    ) {
        let g = build_graph(n, p, seed);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let e = circuit.expectation(&Params::new(vec![gamma], vec![beta]));
        prop_assert!(e >= -1e-9);
        prop_assert!(e <= circuit.hamiltonian().optimal_value() + 1e-9);
    }

    fn simulator_equals_analytic_p1(
        n in 3usize..9,
        p in 0.2f64..0.9,
        seed in any_u64(),
        gamma in -3.0f64..3.0,
        beta in -2.0f64..2.0,
    ) {
        let g = build_graph(n, p, seed);
        prop_assume!(g.m() > 0);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let sim = circuit.expectation(&Params::new(vec![gamma], vec![beta]));
        let formula = analytic::graph_expectation(&g, gamma, beta);
        prop_assert!((sim - formula).abs() < 1e-8, "sim {sim} vs analytic {formula}");
    }

    fn canonicalization_is_idempotent_and_invariant(
        n in 3usize..9,
        p in 0.2f64..0.9,
        seed in any_u64(),
        gamma in -9.0f64..9.0,
        beta in -5.0f64..5.0,
    ) {
        let g = build_graph(n, p, seed);
        let params = Params::new(vec![gamma], vec![beta]);
        let canonical = params.canonical();
        // Idempotent.
        prop_assert!(canonical.canonical().distance(&canonical) < 1e-9);
        // In-domain.
        prop_assert!(canonical.gammas()[0] >= 0.0 && canonical.gammas()[0] <= std::f64::consts::PI);
        prop_assert!(canonical.betas()[0] >= 0.0 && canonical.betas()[0] < std::f64::consts::FRAC_PI_2);
        // Physically equivalent (unit weights).
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let e1 = circuit.expectation(&params);
        let e2 = circuit.expectation(&canonical);
        prop_assert!((e1 - e2).abs() < 1e-8, "{e1} vs {e2}");
    }

    fn state_norm_preserved_at_any_depth(
        n in 3usize..9,
        p in 0.2f64..0.9,
        seed in any_u64(),
        angles in vec(-3.0f64..3.0, 2usize..8),
    ) {
        let g = build_graph(n, p, seed);
        let depth = angles.len() / 2;
        prop_assume!(depth >= 1);
        let params = Params::new(
            angles[..depth].to_vec(),
            angles[depth..2 * depth].to_vec(),
        );
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let psi = circuit.run(&params);
        prop_assert!((psi.norm() - 1.0).abs() < 1e-9);
    }

    fn optimizers_never_regress_from_start(
        n in 3usize..9,
        p in 0.2f64..0.9,
        seed in any_u64(),
        start_gamma in 0.0f64..6.2,
        start_beta in 0.0f64..3.1,
        opt_seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let objective = |flat: &[f64]| {
            circuit.expectation(&Params::from_flat(flat).expect("p=1 layout"))
        };
        let start = [start_gamma, start_beta];
        let start_value = objective(&start);
        let mut rng = StdRng::seed_from_u64(opt_seed);
        let nm = NelderMead::new(30).maximize(objective, &start, &mut rng);
        prop_assert!(nm.best_value >= start_value - 1e-9);
        let spsa = Spsa::new(30).maximize(objective, &start, &mut rng);
        prop_assert!(spsa.best_value >= start_value - 1e-9);
    }

    fn approximation_ratio_of_best_params_leq_one(
        n in 3usize..9,
        p in 0.2f64..0.9,
        seed in any_u64(),
        opt_seed in any_u64(),
    ) {
        let g = build_graph(n, p, seed);
        let mut rng = StdRng::seed_from_u64(opt_seed);
        let ham = MaxCutHamiltonian::new(&g);
        let outcome = qaoa::warm_start::run_random_init(
            &ham,
            1,
            &NelderMead::new(60),
            &mut rng,
        );
        prop_assert!(outcome.final_ratio <= 1.0 + 1e-9);
        prop_assert!(outcome.final_ratio >= outcome.initial_ratio - 1e-9);
        // History is monotone best-so-far.
        for w in outcome.history.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    fn evaluator_reuse_is_bit_identical_to_fresh_runs(
        n in 3usize..9,
        p in 0.2f64..0.9,
        seed in any_u64(),
        angles in vec(-3.0f64..3.0, 2usize..10),
    ) {
        let g = build_graph(n, p, seed);
        let depth = angles.len() / 2;
        prop_assume!(depth >= 1);
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&g));
        let mut evaluator = Evaluator::new(&circuit);
        // Reuse one scratch buffer across several parameter sets; every
        // run must equal a fresh one-shot evaluation bit for bit.
        for shift in 0..3 {
            let offset = 0.1 * shift as f64;
            let params = Params::new(
                angles[..depth].iter().map(|a| a + offset).collect(),
                angles[depth..2 * depth].iter().map(|a| a - offset).collect(),
            );
            let reused = evaluator.expectation_in_place(&params);
            let fresh = circuit.expectation(&params);
            prop_assert_eq!(reused.to_bits(), fresh.to_bits());
            prop_assert_eq!(evaluator.run_into(&params), &circuit.run(&params));
        }
    }

    fn interp_preserves_endpoint_schedule(
        angles in vec(0.05f64..1.5, 2usize..10),
    ) {
        let depth = angles.len() / 2;
        prop_assume!(depth >= 1);
        let params = Params::new(
            angles[..depth].to_vec(),
            angles[depth..2 * depth].to_vec(),
        );
        let extended = qaoa::interp::interp_extend(&params);
        prop_assert_eq!(extended.depth(), depth + 1);
        // First and last angles are preserved by the INTERP rule.
        prop_assert!((extended.gammas()[0] - params.gammas()[0]).abs() < 1e-12);
        prop_assert!(
            (extended.gammas()[depth] - params.gammas()[depth - 1]).abs() < 1e-12
        );
    }
}
