//! Figure 3: possible approximation ratio by graph size.
//!
//! Labels the dataset with random-initialization QAOA (§3.1) and summarizes
//! the achieved AR per graph size — the data-quality picture motivating
//! Selective Data Pruning.

use qaoa_gnn::dataset::Dataset;
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn_bench::{f4, print_table, write_csv};
use qgraph::stats::grouped_summary;

fn main() {
    let config = PipelineConfig::from_env();
    println!(
        "labeling {} graphs with {} optimizer iterations each...",
        config.dataset.count, config.labeling.iterations
    );
    let dataset = Dataset::generate(&config.dataset, &config.labeling, config.seed)
        .expect("default dataset spec is valid");

    let summary = grouped_summary(&dataset.ar_by_size());
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|s| {
            vec![
                s.key.to_string(),
                s.count.to_string(),
                f4(s.min),
                f4(s.mean),
                f4(s.max),
                f4(s.std),
            ]
        })
        .collect();
    let header = ["nodes", "count", "ar_min", "ar_mean", "ar_max", "ar_std"];
    print_table("Figure 3: possible AR by graph size", &header, &rows);
    let path = write_csv("fig3_ar_by_size.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
    println!(
        "overall mean AR: {:.4} (the paper observes many groups near 0.5)",
        dataset.mean_approx_ratio()
    );
}
