//! Deterministic chaos soak for the self-healing serving loop.
//!
//! Arms a [`qaoa_gnn::FaultSchedule`] generated from one seed and drives a
//! numbered request stream through a live [`qaoa_gnn::ServeLoop`] — twice.
//! While the schedule is live, worker threads are killed (exercising
//! supervision and respawn), the GNN rung is poisoned until the circuit
//! breaker trips, hot-swaps are refused, and admissions error. The soak
//! then verifies the self-healing contract end to end:
//!
//! - every submission is answered exactly once (zero drops),
//! - the worker census is restored after every kill,
//! - the breaker re-closes in the schedule's clean tail,
//! - the loop ends `Ready`,
//! - and both runs of the same seed produce **bit-identical** outcome
//!   streams (compared as a fold over every reply's rung, skips, angle
//!   bits, and generation).
//!
//! ```text
//! cargo run --release -p qaoa-gnn-bench --bin chaos_soak            # 50k × 2 requests
//! cargo run --release -p qaoa-gnn-bench --bin chaos_soak -- --smoke # CI-sized (2k × 2)
//! QAOA_GNN_CHAOS_SEED=7 cargo run --release -p qaoa-gnn-bench --bin chaos_soak
//! ```
//!
//! Flags: `--requests N` (per run, default 50_000), `--seed N` (overrides
//! `QAOA_GNN_CHAOS_SEED`, default 42), `--workers N` (default 2),
//! `--smoke` (2_000 requests, everything else identical). The breaker
//! policy honors the `QAOA_GNN_BREAKER_*` env knobs (see
//! [`qaoa_gnn::BreakerConfig`]). Appends a CSV row per run to
//! `target/experiments/chaos_soak_<cores>core.csv`.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::LabelReport;
use qaoa_gnn::faults::{self, FaultSchedule};
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::serve::ServeRequest;
use qaoa_gnn::serve_loop::{LoopConfig, ServeLoop};
use qaoa_gnn::{BreakerState, Health, RunArtifact, TrainingEnvelope};
use qgraph::Graph;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

const DEFAULT_SEED: u64 = 42;

fn fail(msg: &str) -> ExitCode {
    eprintln!("FAIL: {msg}");
    ExitCode::FAILURE
}

/// A valid artifact whose weights depend on `seed` (same fixture as the
/// `serve_load` bench).
fn artifact_with_seed(seed: u64) -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = GnnModel::new(
        GnnKind::Gcn,
        gnn::ModelConfig {
            hidden_dim: 4,
            ..gnn::ModelConfig::default()
        },
        &mut rng,
    );
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: seed,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}

fn parse_flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// FNV-1a fold of one reply's replayable content into the run digest.
fn fold(digest: u64, bytes: &[u8]) -> u64 {
    let mut h = digest;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct RunReport {
    digest: u64,
    elapsed_secs: f64,
    answered: u64,
    served: u64,
    shed: u64,
    rejected: u64,
    fired: u64,
    respawns: u64,
    trips: u64,
    breaker_open: u64,
    end_state: BreakerState,
    end_health: Health,
    census_ok: bool,
}

/// One soak: arm the seeded schedule, drive `requests` requests
/// sequentially (submit → wait keeps the request clock total, which is
/// what makes the digest replayable), swap once mid-stream, wait for the
/// census, snapshot.
fn run_once(seed: u64, requests: u64, workers: usize) -> RunReport {
    let guard = faults::arm_schedule(FaultSchedule::from_seed(seed, requests));
    let serve = ServeLoop::new(
        artifact_with_seed(seed),
        LoopConfig::default()
            .with_workers(workers)
            .with_queue_capacity(256)
            .with_shed_watermark(256)
            .with_batch_size(8),
    );
    let start = Instant::now();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..requests {
        let n = 3 + (i % 10) as usize;
        let done = serve
            .submit(ServeRequest::from_graph(Graph::cycle(n).expect("cycle")))
            .wait();
        digest = fold(digest, &done.generation.to_le_bytes());
        match &done.response.result {
            Ok(outcome) => {
                let (gamma, beta) = outcome.angles();
                digest = fold(digest, &[1, outcome.rung.quality(), outcome.clamped as u8]);
                digest = fold(digest, &gamma.to_bits().to_le_bytes());
                digest = fold(digest, &beta.to_bits().to_le_bytes());
                digest = fold(digest, &(outcome.skips.len() as u64).to_le_bytes());
                for skip in &outcome.skips {
                    digest = fold(digest, format!("{:?}", skip.reason).as_bytes());
                }
            }
            Err(error) => digest = fold(digest, format!("0{error:?}").as_bytes()),
        }
        if i == requests / 2 {
            let swap = serve.swap_artifact(artifact_with_seed(seed ^ 1));
            digest = fold(digest, format!("swap {swap:?}").as_bytes());
        }
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    // The schedule's tail is clean; give the supervisor a bounded window
    // to finish restoring the census.
    let deadline = Instant::now() + Duration::from_secs(5);
    let census_ok = loop {
        let m = serve.metrics();
        if m.workers_alive == m.workers_target {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::yield_now();
    };
    let metrics = serve.metrics();
    let stats = serve.stats();
    RunReport {
        digest,
        elapsed_secs,
        answered: stats.total(),
        served: metrics.served,
        shed: metrics.shed,
        rejected: metrics.rejected,
        fired: guard.fired(),
        respawns: metrics.respawns,
        trips: metrics.breaker_trips,
        breaker_open: metrics.breaker_open_served,
        end_state: metrics.breaker_state,
        end_health: serve.health().state,
        census_ok,
    }
}

/// The soak *injects* panics by design (worker kills, rung poison); keep
/// the console readable by muting those while letting real panics print.
fn mute_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.starts_with("fault injected"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.starts_with("fault injected"))
            })
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let requests = parse_flag(&args, "--requests").unwrap_or(if smoke { 2_000 } else { 50_000 }) as u64;
    let workers = parse_flag(&args, "--workers").unwrap_or(2);
    let seed = parse_flag(&args, "--seed")
        .map(|s| s as u64)
        .or_else(|| {
            std::env::var("QAOA_GNN_CHAOS_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(DEFAULT_SEED);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    mute_injected_panics();

    let schedule = FaultSchedule::from_seed(seed, requests);
    println!(
        "chaos_soak: seed {seed}, {requests} requests × 2 runs, {workers} workers, \
         {} scheduled fault windows (budget {}), {cores} core(s)",
        schedule.entries.len(),
        schedule.total_budget(),
    );

    let first = run_once(seed, requests, workers);
    let second = run_once(seed, requests, workers);

    for (name, run) in [("run1", &first), ("run2", &second)] {
        println!(
            "{name}: {} answered in {:6.2}s ({:>7.0} req/s)  served {} shed {} rejected {}  \
             faults fired {}  respawns {}  breaker trips {} open-served {} end {}  health {}",
            run.answered,
            run.elapsed_secs,
            run.answered as f64 / run.elapsed_secs,
            run.served,
            run.shed,
            run.rejected,
            run.fired,
            run.respawns,
            run.trips,
            run.breaker_open,
            run.end_state,
            run.end_health,
        );
    }

    // ---- Invariants --------------------------------------------------
    for (name, run) in [("run1", &first), ("run2", &second)] {
        if run.answered != requests {
            return fail(&format!(
                "{name}: exactly-once violated — {} answers for {requests} submissions",
                run.answered
            ));
        }
        if !run.census_ok {
            return fail(&format!("{name}: worker census not restored after kills"));
        }
        if run.end_state != BreakerState::Closed {
            return fail(&format!(
                "{name}: breaker did not re-close in the clean tail (ended {})",
                run.end_state
            ));
        }
        if run.end_health != Health::Ready {
            return fail(&format!("{name}: loop ended {} not ready", run.end_health));
        }
        if run.fired == 0 {
            return fail(&format!("{name}: the fault schedule never fired"));
        }
    }
    if first.digest != second.digest {
        return fail(&format!(
            "replay diverged: digest {:016x} vs {:016x} for the same seed",
            first.digest, second.digest
        ));
    }
    if first.fired != second.fired || first.respawns != second.respawns {
        return fail("replay diverged: fault firings or respawn counts differ between runs");
    }
    // The default seed is a known-violent script; a chosen seed may be
    // gentler, so supervision/breaker coverage is only enforced for it.
    if seed == DEFAULT_SEED {
        if first.respawns == 0 {
            return fail("default seed must kill workers and force respawns");
        }
        if first.trips == 0 {
            return fail("default seed must trip the circuit breaker");
        }
        if first.breaker_open == 0 {
            return fail("default seed must answer open-state requests model-free");
        }
    }

    // ---- CSV ---------------------------------------------------------
    let dir = std::path::Path::new("target/experiments");
    let _ = std::fs::create_dir_all(dir);
    let csv = dir.join(format!("chaos_soak_{cores}core.csv"));
    let mut out = String::from(
        "run,seed,requests,elapsed_s,throughput_rps,served,shed,rejected,fired,respawns,trips,breaker_open_served,digest\n",
    );
    for (name, run) in [("run1", &first), ("run2", &second)] {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.0},{},{},{},{},{},{},{},{:016x}\n",
            name,
            seed,
            requests,
            run.elapsed_secs,
            run.answered as f64 / run.elapsed_secs,
            run.served,
            run.shed,
            run.rejected,
            run.fired,
            run.respawns,
            run.trips,
            run.breaker_open,
            run.digest,
        ));
    }
    if let Err(e) = std::fs::write(&csv, out) {
        return fail(&format!("writing {}: {e}", csv.display()));
    }
    println!("wrote {}", csv.display());
    println!(
        "chaos_soak OK: zero drops, census restored, breaker re-closed, \
         bit-identical replay (digest {:016x})",
        first.digest
    );
    ExitCode::SUCCESS
}
