//! Dataset generation and QAOA labeling (§3.1).
//!
//! "We generate synthetic regular graphs comprising 9598 instances and
//! simulate the parameters γ and β for the QAOA algorithm. ... The
//! algorithm starts with randomly initialized values of γ and β, and then
//! undergoes a process of optimization over 500 iterations. ... It also
//! provides an approximation ratio (AR) for these solutions compared to the
//! optimal solutions derived from a brute-force search approach."

use std::sync::atomic::{AtomicUsize, Ordering};

use qrand::rngs::StdRng;
use qrand::{Rng, SeedableRng};

use qaoa::optimize::NelderMead;
use qaoa::warm_start::{self, InitStrategy};
use qaoa::{Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::generate::DatasetSpec;
use qgraph::Graph;

/// One labeled instance: a graph plus the QAOA outcome that labels it.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledGraph {
    /// The problem instance.
    pub graph: Graph,
    /// The optimized parameters — the GNN's regression target.
    pub params: Params,
    /// Expectation `⟨C⟩` at [`Self::params`].
    pub expectation: f64,
    /// Brute-force optimal cut value.
    pub optimal: f64,
    /// `expectation / optimal` — the label quality the SDP filter reads.
    pub approx_ratio: f64,
}

/// A labeled dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// The labeled instances.
    pub entries: Vec<LabeledGraph>,
}

/// Labeling configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelConfig {
    /// QAOA depth `p` (the paper predicts one `(γ, β)` pair: p = 1).
    pub depth: usize,
    /// Optimizer iteration budget per graph (paper: 500).
    pub iterations: usize,
    /// Worker threads for parallel labeling.
    pub threads: usize,
}

impl Default for LabelConfig {
    fn default() -> Self {
        LabelConfig {
            depth: 1,
            iterations: 500,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

impl LabelConfig {
    /// A scaled-down configuration for tests and CI-sized benches.
    pub fn quick(iterations: usize) -> Self {
        LabelConfig {
            iterations,
            ..LabelConfig::default()
        }
    }

    /// Builder-style: sets the QAOA depth `p`.
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth;
        self
    }

    /// Builder-style: sets the optimizer iteration budget per graph.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Builder-style: sets the worker-thread count for parallel labeling.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Labels one graph: random init, `iterations` of Nelder–Mead, AR against
/// brute force — exactly the paper's §3.1 recipe.
pub fn label_graph<R: Rng + ?Sized>(
    graph: &Graph,
    config: &LabelConfig,
    rng: &mut R,
) -> LabeledGraph {
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
    // One evaluator carries the whole label: the optimization trace, the
    // canonicalization probes, and the final expectation all run in the
    // same scratch state vector — zero state-vector allocations past here.
    let mut evaluator = Evaluator::new(&circuit);
    let optimizer = NelderMead::new(config.iterations);
    let outcome = warm_start::run_with(
        &mut evaluator,
        Params::random(config.depth, rng),
        InitStrategy::Random,
        &optimizer,
        rng,
    );
    // Fold the optimum into the graph-aware fundamental domain so that
    // equal-quality mirror optima produce one label cluster, not two.
    let params = evaluator.canonical_label(&outcome.final_params);
    let expectation = evaluator.expectation_in_place(&params);
    let hamiltonian = circuit.hamiltonian();
    LabeledGraph {
        graph: graph.clone(),
        params,
        expectation,
        optimal: hamiltonian.optimal_value(),
        approx_ratio: hamiltonian.approximation_ratio(expectation),
    }
}

/// Effective worker count for `items` work items when the configuration
/// asks for `requested` threads: at least one worker, and never more
/// workers than items (spawning idle threads for tiny datasets costs more
/// than it saves).
pub fn worker_count(requested: usize, items: usize) -> usize {
    requested.max(1).min(items.max(1))
}

impl Dataset {
    /// Labels a batch of graphs in parallel. Each graph gets its own RNG
    /// substream derived from `seed` and its index, so results are
    /// bit-identical for a given seed regardless of the thread count, and
    /// keep input order.
    ///
    /// Workers pull indices from a shared queue rather than owning fixed
    /// chunks: labeling cost grows as `2^n`, so a paper-shaped batch mixes
    /// microsecond 2-node graphs with millisecond 15-node ones, and static
    /// chunking would leave every other worker idle behind whichever chunk
    /// drew the large graphs.
    pub fn label_graphs(graphs: &[Graph], config: &LabelConfig, seed: u64) -> Dataset {
        if graphs.is_empty() {
            return Dataset::default();
        }
        let threads = worker_count(config.threads, graphs.len());
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, LabeledGraph)>> = Vec::new();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut labeled = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= graphs.len() {
                                break;
                            }
                            let mut rng = StdRng::substream(seed, index as u64);
                            labeled.push((index, label_graph(&graphs[index], config, &mut rng)));
                        }
                        labeled
                    })
                })
                .collect();
            per_worker = workers
                .into_iter()
                .map(|w| w.join().expect("labeling worker panicked"))
                .collect();
        });
        let mut entries: Vec<Option<LabeledGraph>> = vec![None; graphs.len()];
        for (index, entry) in per_worker.into_iter().flatten() {
            entries[index] = Some(entry);
        }
        Dataset {
            entries: entries
                .into_iter()
                .map(|e| e.expect("every slot labeled"))
                .collect(),
        }
    }

    /// Generates `spec.count` graphs and labels them.
    ///
    /// # Errors
    ///
    /// Propagates generator errors from an invalid `spec`.
    pub fn generate(
        spec: &DatasetSpec,
        config: &LabelConfig,
        seed: u64,
    ) -> Result<Dataset, qgraph::GraphError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let graphs = spec.generate(&mut rng)?;
        Ok(Self::label_graphs(&graphs, config, seed ^ 0x9e37_79b9))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the dataset has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mean approximation ratio over the dataset (label quality, Figs. 3–4).
    pub fn mean_approx_ratio(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.approx_ratio).sum::<f64>() / self.entries.len() as f64
    }

    /// `(graph size, AR)` observations for Figure 3.
    pub fn ar_by_size(&self) -> Vec<(usize, f64)> {
        self.entries
            .iter()
            .map(|e| (e.graph.n(), e.approx_ratio))
            .collect()
    }

    /// `(degree, AR)` observations for Figure 4 (regular graphs report their
    /// degree; irregular graphs report their maximum degree).
    pub fn ar_by_degree(&self) -> Vec<(usize, f64)> {
        self.entries
            .iter()
            .map(|e| {
                let d = e.graph.regular_degree().unwrap_or(e.graph.max_degree());
                (d, e.approx_ratio)
            })
            .collect()
    }

    /// Splits into `(train, test)` with `test_size` entries held out from the
    /// end after a seeded shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `test_size >= len`.
    pub fn split(&self, test_size: usize, seed: u64) -> (Dataset, Dataset) {
        assert!(
            test_size < self.len(),
            "test size {test_size} must be below dataset size {}",
            self.len()
        );
        use qrand::seq::SliceRandom;
        let mut entries = self.entries.clone();
        entries.shuffle(&mut StdRng::seed_from_u64(seed));
        let train = entries[..entries.len() - test_size].to_vec();
        let test = entries[entries.len() - test_size..].to_vec();
        (Dataset { entries: train }, Dataset { entries: test })
    }
}

impl FromIterator<LabeledGraph> for Dataset {
    fn from_iter<I: IntoIterator<Item = LabeledGraph>>(iter: I) -> Self {
        Dataset {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LabelConfig {
        LabelConfig::quick(40)
    }

    #[test]
    fn worker_count_clamps_to_items() {
        assert_eq!(worker_count(8, 3), 3); // never more workers than items
        assert_eq!(worker_count(2, 100), 2); // respects the request
        assert_eq!(worker_count(0, 5), 1); // at least one worker
        assert_eq!(worker_count(4, 0), 1); // empty input still well-defined
        assert_eq!(worker_count(4, 4), 4);
    }

    #[test]
    fn label_config_builder_chains() {
        let config = LabelConfig::quick(200).with_depth(2).with_threads(3);
        assert_eq!(config.depth, 2);
        assert_eq!(config.iterations, 200);
        assert_eq!(config.threads, 3);
        let rebudgeted = config.clone().with_iterations(50);
        assert_eq!(rebudgeted.iterations, 50);
        assert_eq!(rebudgeted.depth, 2);
    }

    #[test]
    fn labeling_empty_batch_returns_empty_dataset() {
        let ds = Dataset::label_graphs(&[], &quick_config(), 1);
        assert!(ds.is_empty());
    }

    #[test]
    fn oversubscribed_thread_config_still_labels_everything() {
        let mut rng = StdRng::seed_from_u64(42);
        let graphs: Vec<Graph> = (3..6)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.6, &mut rng).unwrap())
            .collect();
        let config = LabelConfig {
            threads: 64, // far more threads than the 3 work items
            ..quick_config()
        };
        let ds = Dataset::label_graphs(&graphs, &config, 9);
        assert_eq!(ds.len(), graphs.len());
        // Same answer as the serial-ish default config with the same seed.
        let baseline = Dataset::label_graphs(&graphs, &LabelConfig { threads: 1, ..quick_config() }, 9);
        // Chunking differs, so only per-worker streams match when the chunk
        // boundaries do; determinism for a fixed config is what we promise:
        let again = Dataset::label_graphs(&graphs, &config, 9);
        assert_eq!(ds, again);
        assert_eq!(baseline.len(), ds.len());
    }

    #[test]
    fn label_graph_produces_valid_record() {
        let mut rng = StdRng::seed_from_u64(111);
        let g = Graph::cycle(6).unwrap();
        let l = label_graph(&g, &quick_config(), &mut rng);
        assert_eq!(l.optimal, 6.0);
        assert!(l.approx_ratio > 0.5, "optimized AR {} too low", l.approx_ratio);
        assert!(l.approx_ratio <= 1.0 + 1e-9);
        assert!((l.expectation / l.optimal - l.approx_ratio).abs() < 1e-12);
        assert_eq!(l.params.depth(), 1);
    }

    #[test]
    fn parallel_labeling_keeps_order_and_determinism() {
        let mut rng = StdRng::seed_from_u64(112);
        let graphs: Vec<Graph> = (4..10)
            .map(|n| qgraph::generate::erdos_renyi(n, 0.5, &mut rng).unwrap())
            .collect();
        let a = Dataset::label_graphs(&graphs, &quick_config(), 7);
        let b = Dataset::label_graphs(&graphs, &quick_config(), 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), graphs.len());
        for (entry, graph) in a.entries.iter().zip(&graphs) {
            assert_eq!(&entry.graph, graph);
        }
    }

    #[test]
    fn generate_respects_spec() {
        let spec = DatasetSpec::with_count(12);
        let ds = Dataset::generate(&spec, &quick_config(), 3).unwrap();
        assert_eq!(ds.len(), 12);
        assert!(ds.mean_approx_ratio() > 0.5);
        for e in &ds.entries {
            assert!(e.graph.n() >= 2 && e.graph.n() <= 15);
        }
    }

    #[test]
    fn figure_observations_cover_every_entry() {
        let spec = DatasetSpec::with_count(8);
        let ds = Dataset::generate(&spec, &quick_config(), 4).unwrap();
        assert_eq!(ds.ar_by_size().len(), 8);
        assert_eq!(ds.ar_by_degree().len(), 8);
        for &(k, ar) in ds.ar_by_size().iter().chain(ds.ar_by_degree().iter()) {
            assert!((1..=15).contains(&k));
            assert!((0.0..=1.0 + 1e-9).contains(&ar));
        }
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let spec = DatasetSpec::with_count(10);
        let ds = Dataset::generate(&spec, &quick_config(), 5).unwrap();
        let (train, test) = ds.split(3, 99);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Same multiset of optima (cheap proxy for completeness).
        let mut all: Vec<u64> = train
            .entries
            .iter()
            .chain(&test.entries)
            .map(|e| e.optimal.to_bits())
            .collect();
        let mut orig: Vec<u64> = ds.entries.iter().map(|e| e.optimal.to_bits()).collect();
        all.sort_unstable();
        orig.sort_unstable();
        assert_eq!(all, orig);
    }

    #[test]
    #[should_panic(expected = "test size")]
    fn split_rejects_oversized_test() {
        let spec = DatasetSpec::with_count(5);
        let ds = Dataset::generate(&spec, &quick_config(), 6).unwrap();
        let _ = ds.split(5, 1);
    }

    #[test]
    fn from_iterator_collects() {
        let mut rng = StdRng::seed_from_u64(113);
        let g = Graph::complete(3).unwrap();
        let ds: Dataset = (0..3).map(|_| label_graph(&g, &quick_config(), &mut rng)).collect();
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
    }
}
