//! Guarded serving: hostile-input-safe inference with a degradation ladder.
//!
//! [`RunArtifact`] answers "how do I persist a trained predictor";
//! this module answers "how do I put one in front of untrusted requests".
//! A [`GuardedPredictor`] wraps a loaded artifact and runs every request
//! through four defenses:
//!
//! 1. **Strict input validation** — text requests parse under
//!    [`ParseLimits`] (size/node/edge caps checked *before* allocation,
//!    non-finite weights, self-loops and duplicate edges rejected with
//!    typed, line-numbered [`qgraph::ParseError`]s); pre-built graphs are
//!    checked against the same caps.
//! 2. **Envelope checks** — the request is compared against the
//!    [`TrainingEnvelope`] recorded in the artifact (§3.1 trains on
//!    2–15-node graphs; Jain et al., arXiv:2111.03016, show GNN
//!    warm-starts degrade out-of-distribution). Out-of-envelope requests
//!    skip the GNN rung — or are rejected outright under
//!    [`ServeConfig::strict_envelope`].
//! 3. **Prediction guardrails** — non-finite model outputs are never
//!    served; finite outputs are clamped to the principal domain
//!    `γ ∈ [0, 2π]`, `β ∈ [0, π/2]` (a no-op for a healthy model, whose
//!    sigmoid head already lands inside it, so guarded predictions are
//!    bit-identical to the raw `predict` path). Small requests are
//!    optionally re-checked on the simulator.
//! 4. **A degradation ladder** — when a rung cannot serve, the request
//!    falls to the next one, and every hop is recorded in the returned
//!    [`PredictionOutcome`]:
//!
//! ```text
//! GNN prediction  →  nearest fixed angles  →  envelope-mean / default init
//! (rung Gnn)         (rung FixedAngle)        (rung Fallback, total)
//! ```
//!
//! The ladder never panics and never falls silently: a caller always gets
//! either a typed [`RequestError`] (the *request* was bad) or a
//! [`PredictionOutcome`] naming the rung that answered and the reason for
//! every rung that did not. [`GuardedPredictor::serve_batch`] additionally
//! isolates requests from each other with `catch_unwind`, so one poisoned
//! graph cannot take down a batch.
//!
//! Every defense is exercised by deterministic fault injection
//! ([`crate::faults`]) rather than trusted on inspection — see
//! `tests/serve_degradation.rs` for the failpoint × rung matrix.

use std::panic::{catch_unwind, AssertUnwindSafe};

use gnn::GnnModel;
use qaoa::{fixed_angle, Evaluator, MaxCutHamiltonian, Params, QaoaCircuit};
use qgraph::io::ParseLimits;
use qgraph::{Graph, ParseError};

use crate::faults::{self, FaultAction};
use crate::store::{ArtifactError, EnvelopeViolation, RunArtifact, TrainingEnvelope};

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Caps applied to incoming requests (text requests at parse time,
    /// pre-built graphs before any other work).
    pub limits: ParseLimits,
    /// Reject out-of-envelope requests with [`RequestError::OutOfEnvelope`]
    /// instead of degrading past the GNN rung.
    pub strict_envelope: bool,
    /// Verify served GNN / fixed-angle parameters on the statevector
    /// simulator when the request has at most this many nodes (`0`
    /// disables verification). A non-finite score degrades the rung.
    pub verify_max_nodes: usize,
    /// Pooled amplitude-sweep workers per verification for registers at
    /// or above the simulator crossover; `0` (the default) keeps
    /// `verified_score` on the historical bit-identical serial path.
    pub sim_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            limits: ParseLimits::serving(),
            strict_envelope: false,
            verify_max_nodes: 16,
            sim_threads: 0,
        }
    }
}

/// A rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// The trained GNN's prediction (the paper's path).
    Gnn,
    /// Nearest fixed angles ([`fixed_angle::nearest_for_graph`]).
    FixedAngle,
    /// Envelope-mean label when the artifact records one, otherwise the
    /// deterministic default init. Total: this rung always answers.
    Fallback,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rung::Gnn => write!(f, "gnn"),
            Rung::FixedAngle => write!(f, "fixed-angle"),
            Rung::Fallback => write!(f, "fallback"),
        }
    }
}

/// Why a rung declined (or failed) to serve a request.
#[derive(Debug, Clone, PartialEq)]
pub enum SkipReason {
    /// The model could not be reconstructed from the artifact's weights.
    ModelUnavailable(String),
    /// The request falls outside the recorded training envelope.
    OutOfEnvelope(EnvelopeViolation),
    /// The rung panicked; the panic was contained.
    Panicked,
    /// The rung produced a non-finite angle.
    NonFinite {
        /// The γ it produced.
        gamma: f64,
        /// The β it produced.
        beta: f64,
    },
    /// Simulator verification produced a non-finite score.
    VerificationFailed,
    /// The rung does not apply to this graph (e.g. fixed angles on an
    /// edgeless graph).
    NotApplicable,
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::ModelUnavailable(e) => write!(f, "model unavailable: {e}"),
            SkipReason::OutOfEnvelope(v) => write!(f, "out of training envelope: {v}"),
            SkipReason::Panicked => write!(f, "panicked (contained)"),
            SkipReason::NonFinite { gamma, beta } => {
                write!(f, "non-finite prediction (γ={gamma}, β={beta})")
            }
            SkipReason::VerificationFailed => write!(f, "simulator verification failed"),
            SkipReason::NotApplicable => write!(f, "not applicable to this graph"),
        }
    }
}

/// One recorded hop down the ladder: which rung was skipped and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Skip {
    /// The rung that declined.
    pub rung: Rung,
    /// Why it declined.
    pub reason: SkipReason,
}

/// How the request relates to the artifact's training envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EnvelopeStatus {
    /// Inside the recorded envelope.
    InEnvelope,
    /// The artifact predates envelopes; the GNN served unchecked and this
    /// outcome says so.
    Unknown,
    /// Outside the envelope (the GNN rung was skipped).
    Violated(EnvelopeViolation),
}

/// The fully-accounted result of one guarded prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionOutcome {
    /// The served parameters — always depth 1, always finite, always in
    /// the principal domain.
    pub params: Params,
    /// The rung that produced them.
    pub rung: Rung,
    /// Every rung skipped on the way down, in ladder order. Empty when the
    /// GNN served directly.
    pub skips: Vec<Skip>,
    /// Envelope standing of the request.
    pub envelope: EnvelopeStatus,
    /// Whether the guardrails had to clamp the serving rung's output into
    /// the principal domain (`false` for a healthy model).
    pub clamped: bool,
    /// Simulator expectation of the served parameters, when verification
    /// ran on the serving rung.
    pub verified_score: Option<f64>,
}

impl PredictionOutcome {
    /// The served `(γ, β)` pair.
    pub fn angles(&self) -> (f64, f64) {
        (self.params.gammas()[0], self.params.betas()[0])
    }

    /// `true` when the GNN itself answered with no degradation and no
    /// clamping — the outcome a healthy deployment sees.
    pub fn is_clean(&self) -> bool {
        self.rung == Rung::Gnn && self.skips.is_empty() && !self.clamped
    }

    /// One-line human-readable account, e.g.
    /// `fixed-angle (γ=0.6155, β=0.3927) after gnn: out of training envelope: …`.
    pub fn summary(&self) -> String {
        let (gamma, beta) = self.angles();
        let mut s = format!("{} (γ={gamma:.4}, β={beta:.4})", self.rung);
        if let Some(score) = self.verified_score {
            s.push_str(&format!(", verified E[cut]={score:.4}"));
        }
        if self.clamped {
            s.push_str(", clamped");
        }
        for skip in &self.skips {
            s.push_str(&format!("; {} skipped: {}", skip.rung, skip.reason));
        }
        if self.envelope == EnvelopeStatus::Unknown {
            s.push_str("; envelope unknown (pre-envelope artifact)");
        }
        s
    }
}

/// Why a request was rejected outright (as opposed to served degraded).
#[derive(Debug)]
pub enum RequestError {
    /// A text request failed validation; carries the line-numbered cause.
    Parse(ParseError),
    /// A pre-built graph exceeds the serving node cap.
    TooManyNodes {
        /// Request graph's node count.
        n: usize,
        /// Configured cap.
        cap: usize,
    },
    /// A pre-built graph exceeds the serving edge cap.
    TooManyEdges {
        /// Request graph's edge count.
        m: usize,
        /// Configured cap.
        cap: usize,
    },
    /// Out-of-envelope request under [`ServeConfig::strict_envelope`].
    OutOfEnvelope(EnvelopeViolation),
    /// The guarded pipeline itself panicked through every rung-level
    /// defense (only reachable from [`GuardedPredictor::serve_batch`],
    /// which contains it to the offending item).
    Internal(String),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::Parse(e) => write!(f, "invalid request: {e}"),
            RequestError::TooManyNodes { n, cap } => {
                write!(f, "request has {n} nodes, serving cap is {cap}")
            }
            RequestError::TooManyEdges { m, cap } => {
                write!(f, "request has {m} edges, serving cap is {cap}")
            }
            RequestError::OutOfEnvelope(v) => {
                write!(f, "request rejected (strict envelope): {v}")
            }
            RequestError::Internal(e) => write!(f, "internal serving failure: {e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<ParseError> for RequestError {
    fn from(e: ParseError) -> Self {
        RequestError::Parse(e)
    }
}

/// Deterministic last-resort initialization when the artifact records no
/// envelope mean: the degree-2 closed-form fixed angles `(π/4, π/8)` — a
/// sane interior point of the principal domain for any instance.
fn default_init() -> (f64, f64) {
    (
        std::f64::consts::FRAC_PI_4,
        std::f64::consts::PI / 8.0,
    )
}

/// A serving wrapper around a loaded [`RunArtifact`]: validation, envelope
/// checks, guardrails and the degradation ladder, per the module docs.
///
/// Construction is infallible given an artifact: if the model cannot be
/// rebuilt from the weights, the predictor still serves — every request
/// simply starts one rung down, with the build failure recorded in each
/// outcome's skip list.
pub struct GuardedPredictor {
    artifact: RunArtifact,
    model: Result<GnnModel, String>,
    config: ServeConfig,
}

impl GuardedPredictor {
    /// Wraps an already-loaded artifact. Model reconstruction happens once,
    /// here, behind the `weight_build` failpoint; failure (or a contained
    /// panic) disables the GNN rung but not the predictor.
    pub fn new(artifact: RunArtifact, config: ServeConfig) -> GuardedPredictor {
        let model = catch_unwind(AssertUnwindSafe(|| {
            if faults::fire_may_panic(faults::WEIGHT_BUILD).is_some() {
                return Err("fault injected: weight_build".to_string());
            }
            artifact.build_model().map_err(|e| e.to_string())
        }))
        .unwrap_or_else(|_| Err("model construction panicked (contained)".to_string()));
        GuardedPredictor {
            artifact,
            model,
            config,
        }
    }

    /// Loads an artifact from disk (full [`RunArtifact::load`] validation:
    /// format, version, checksums, weight shapes) and wraps it.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] — a predictor is never built on a file that
    /// failed validation.
    pub fn load<P: AsRef<std::path::Path>>(
        path: P,
        config: ServeConfig,
    ) -> Result<GuardedPredictor, ArtifactError> {
        Ok(GuardedPredictor::new(RunArtifact::load(path)?, config))
    }

    /// The wrapped artifact.
    pub fn artifact(&self) -> &RunArtifact {
        &self.artifact
    }

    /// `true` when the GNN rung is available (weights rebuilt cleanly).
    pub fn model_available(&self) -> bool {
        self.model.is_ok()
    }

    /// The training envelope the artifact records, if any.
    pub fn envelope(&self) -> Option<&TrainingEnvelope> {
        self.artifact.envelope.as_ref()
    }

    /// Serves a request arriving as graph text: strict limited parsing,
    /// then [`Self::predict`].
    ///
    /// # Errors
    ///
    /// [`RequestError::Parse`] with the typed, line-numbered cause; then
    /// anything [`Self::predict`] rejects.
    pub fn predict_text(&self, text: &str) -> Result<PredictionOutcome, RequestError> {
        let graph = qgraph::io::graph_from_str_limited(text, &self.config.limits)?;
        self.predict(&graph)
    }

    /// Serves a request arriving as a pre-built graph: cap checks, envelope
    /// check, then the ladder. Never panics; the fallback rung is total, so
    /// an accepted request always yields finite in-domain parameters.
    ///
    /// # Errors
    ///
    /// [`RequestError::TooManyNodes`] / [`RequestError::TooManyEdges`] when
    /// the request exceeds the serving caps, and
    /// [`RequestError::OutOfEnvelope`] under strict envelope policy.
    pub fn predict(&self, graph: &Graph) -> Result<PredictionOutcome, RequestError> {
        if graph.n() > self.config.limits.max_nodes {
            return Err(RequestError::TooManyNodes {
                n: graph.n(),
                cap: self.config.limits.max_nodes,
            });
        }
        if graph.m() > self.config.limits.max_edges {
            return Err(RequestError::TooManyEdges {
                m: graph.m(),
                cap: self.config.limits.max_edges,
            });
        }

        let envelope = match self.envelope() {
            None => EnvelopeStatus::Unknown,
            Some(env) => match env.check(graph) {
                Ok(()) => EnvelopeStatus::InEnvelope,
                Err(v) if self.config.strict_envelope => {
                    return Err(RequestError::OutOfEnvelope(v));
                }
                Err(v) => EnvelopeStatus::Violated(v),
            },
        };

        let mut skips = Vec::new();

        // Rung 1: the GNN.
        match self.try_gnn(graph, envelope) {
            Ok((params, clamped, score)) => {
                return Ok(PredictionOutcome {
                    params,
                    rung: Rung::Gnn,
                    skips,
                    envelope,
                    clamped,
                    verified_score: score,
                });
            }
            Err(reason) => skips.push(Skip {
                rung: Rung::Gnn,
                reason,
            }),
        }

        // Rung 2: nearest fixed angles.
        match self.try_fixed(graph) {
            Ok((params, score)) => {
                return Ok(PredictionOutcome {
                    params,
                    rung: Rung::FixedAngle,
                    skips,
                    envelope,
                    clamped: false,
                    verified_score: score,
                });
            }
            Err(reason) => skips.push(Skip {
                rung: Rung::FixedAngle,
                reason,
            }),
        }

        // Rung 3: total fallback — envelope mean when recorded, else the
        // deterministic default. Never verified, never refused.
        let (gamma, beta) = self
            .envelope()
            .map(TrainingEnvelope::mean_label)
            .unwrap_or_else(default_init);
        let (gamma, beta, clamped) = clamp_principal(gamma, beta);
        Ok(PredictionOutcome {
            params: Params::new(vec![gamma], vec![beta]),
            rung: Rung::Fallback,
            skips,
            envelope,
            clamped,
            verified_score: None,
        })
    }

    /// Serves a batch, isolating requests from each other: a request that
    /// somehow panics through every rung-level defense is contained by an
    /// outer `catch_unwind` and reported as [`RequestError::Internal`] for
    /// that item alone — the rest of the batch is served normally.
    pub fn serve_batch(&self, graphs: &[Graph]) -> Vec<Result<PredictionOutcome, RequestError>> {
        graphs
            .iter()
            .map(|g| {
                catch_unwind(AssertUnwindSafe(|| self.predict(g))).unwrap_or_else(|payload| {
                    Err(RequestError::Internal(panic_message(&payload)))
                })
            })
            .collect()
    }

    /// The GNN rung: forward pass behind the `forward` failpoint and a
    /// panic guard, then finiteness + principal-domain guardrails, then
    /// optional simulator verification behind the `sim_eval` failpoint.
    fn try_gnn(
        &self,
        graph: &Graph,
        envelope: EnvelopeStatus,
    ) -> Result<(Params, bool, Option<f64>), SkipReason> {
        let model = match &self.model {
            Ok(m) => m,
            Err(e) => return Err(SkipReason::ModelUnavailable(e.clone())),
        };
        if let EnvelopeStatus::Violated(v) = envelope {
            return Err(SkipReason::OutOfEnvelope(v));
        }
        let (gamma, beta) = catch_unwind(AssertUnwindSafe(|| {
            match faults::fire_may_panic(faults::FORWARD) {
                // Any non-panic injection poisons the output, exercising
                // the finiteness guardrail below.
                Some(_) => (f64::NAN, f64::NAN),
                None => model.predict(graph),
            }
        }))
        .map_err(|_| SkipReason::Panicked)?;
        if !gamma.is_finite() || !beta.is_finite() {
            return Err(SkipReason::NonFinite { gamma, beta });
        }
        let (gamma, beta, clamped) = clamp_principal(gamma, beta);
        let params = Params::new(vec![gamma], vec![beta]);
        let score = self.verify(graph, &params)?;
        Ok((params, clamped, score))
    }

    /// The fixed-angle rung: nearest tree-subgraph angles, verified like a
    /// GNN prediction.
    fn try_fixed(&self, graph: &Graph) -> Result<(Params, Option<f64>), SkipReason> {
        let fa = fixed_angle::nearest_for_graph(graph).ok_or(SkipReason::NotApplicable)?;
        let score = self.verify(graph, &fa.params)?;
        Ok((fa.params, score))
    }

    /// Simulator verification of a candidate: `Ok(None)` when disabled or
    /// the graph is too large to simulate, `Ok(Some(score))` on a finite
    /// expectation, and a [`SkipReason`] (degrading the rung) on a
    /// non-finite score or a contained panic.
    fn verify(&self, graph: &Graph, params: &Params) -> Result<Option<f64>, SkipReason> {
        if self.config.verify_max_nodes == 0 || graph.n() > self.config.verify_max_nodes {
            return Ok(None);
        }
        let score = catch_unwind(AssertUnwindSafe(|| {
            match faults::fire_may_panic(faults::SIM_EVAL) {
                Some(FaultAction::Nan) => f64::NAN,
                Some(_) => f64::NAN,
                None => {
                    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(graph));
                    // sim_threads = 0 resolves to the serial executor, so
                    // this is bit-identical to the one-shot
                    // `QaoaCircuit::expectation` it replaces.
                    Evaluator::with_sim_threads(&circuit, self.config.sim_threads)
                        .expectation_in_place(params)
                }
            }
        }))
        .map_err(|_| SkipReason::Panicked)?;
        if !score.is_finite() {
            return Err(SkipReason::VerificationFailed);
        }
        Ok(Some(score))
    }
}

/// Clamps `(γ, β)` into the principal domain `γ ∈ [0, 2π]`, `β ∈ [0, π/2]`,
/// reporting whether anything moved. Exact no-op (same bits) for in-domain
/// inputs, which is what keeps guarded serving bit-identical to the raw
/// prediction path.
fn clamp_principal(gamma: f64, beta: f64) -> (f64, f64, bool) {
    let g = gamma.clamp(0.0, std::f64::consts::TAU);
    let b = beta.clamp(0.0, std::f64::consts::FRAC_PI_2);
    (g, b, g != gamma || b != beta)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gnn::train::TrainHistory;
    use gnn::{GnnKind, GnnModel};
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    use crate::dataset::LabelReport;
    use crate::pipeline::PipelineConfig;

    fn tiny_artifact(envelope: Option<TrainingEnvelope>) -> RunArtifact {
        let mut rng = StdRng::seed_from_u64(4001);
        let config = gnn::ModelConfig {
            hidden_dim: 4,
            ..gnn::ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
        RunArtifact {
            config: PipelineConfig::quick(),
            weights: model.export_weights(),
            history: TrainHistory::default(),
            label_report: LabelReport::clean(1),
            dataset_fingerprint: 0,
            envelope,
        }
    }

    fn wide_envelope() -> TrainingEnvelope {
        TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }
    }

    #[test]
    fn clean_request_is_bit_identical_to_raw_predict() {
        let artifact = tiny_artifact(Some(wide_envelope()));
        let raw = artifact.build_model().unwrap();
        let served = GuardedPredictor::new(artifact, ServeConfig::default());
        let g = Graph::cycle(8).unwrap();
        let (rg, rb) = raw.predict(&g);
        let outcome = served.predict(&g).unwrap();
        assert!(outcome.is_clean());
        assert_eq!(outcome.envelope, EnvelopeStatus::InEnvelope);
        let (sg, sb) = outcome.angles();
        assert_eq!(rg.to_bits(), sg.to_bits());
        assert_eq!(rb.to_bits(), sb.to_bits());
        assert!(outcome.verified_score.is_some());
    }

    #[test]
    fn text_request_round_trips_through_strict_parser() {
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let g = Graph::cycle(6).unwrap();
        let text = qgraph::io::graph_to_string(&g);
        let from_text = served.predict_text(&text).unwrap();
        let from_graph = served.predict(&g).unwrap();
        assert_eq!(from_text, from_graph);
        // Malformed text is a typed rejection, not a panic or a fallback.
        match served.predict_text("n 3\ne 0 1 nan\n") {
            Err(RequestError::Parse(e)) => assert_eq!(e.line, 2),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn out_of_envelope_degrades_and_strict_rejects() {
        let narrow = TrainingEnvelope {
            max_nodes: 6,
            ..wide_envelope()
        };
        let big = Graph::cycle(10).unwrap();
        let served = GuardedPredictor::new(tiny_artifact(Some(narrow.clone())), ServeConfig::default());
        let outcome = served.predict(&big).unwrap();
        assert_ne!(outcome.rung, Rung::Gnn);
        assert!(matches!(outcome.envelope, EnvelopeStatus::Violated(_)));
        assert!(outcome
            .skips
            .iter()
            .any(|s| s.rung == Rung::Gnn && matches!(s.reason, SkipReason::OutOfEnvelope(_))));

        let strict = GuardedPredictor::new(
            tiny_artifact(Some(narrow)),
            ServeConfig {
                strict_envelope: true,
                ..ServeConfig::default()
            },
        );
        match strict.predict(&big) {
            Err(RequestError::OutOfEnvelope(EnvelopeViolation::NodeCount { n: 10, .. })) => {}
            other => panic!("expected strict rejection, got {other:?}"),
        }
    }

    #[test]
    fn pre_envelope_artifact_serves_with_unknown_status() {
        let served = GuardedPredictor::new(tiny_artifact(None), ServeConfig::default());
        let outcome = served.predict(&Graph::cycle(5).unwrap()).unwrap();
        assert_eq!(outcome.rung, Rung::Gnn);
        assert_eq!(outcome.envelope, EnvelopeStatus::Unknown);
        assert!(outcome.summary().contains("envelope unknown"));
    }

    #[test]
    fn oversized_graph_request_is_rejected_before_any_work() {
        let served = GuardedPredictor::new(
            tiny_artifact(None),
            ServeConfig {
                limits: ParseLimits {
                    max_nodes: 8,
                    ..ParseLimits::serving()
                },
                ..ServeConfig::default()
            },
        );
        match served.predict(&Graph::cycle(9).unwrap()) {
            Err(RequestError::TooManyNodes { n: 9, cap: 8 }) => {}
            other => panic!("expected TooManyNodes, got {other:?}"),
        }
    }

    #[test]
    fn fallback_uses_envelope_mean_then_default() {
        // Edgeless graph: fixed angles do not apply, so a non-finite GNN
        // output lands on the fallback rung.
        let g = Graph::empty(4).unwrap();
        let served =
            GuardedPredictor::new(tiny_artifact(Some(wide_envelope())), ServeConfig::default());
        let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
        let outcome = served.predict(&g).unwrap();
        assert_eq!(outcome.rung, Rung::Fallback);
        assert_eq!(outcome.angles(), (1.0, 0.5)); // the envelope mean
        assert_eq!(outcome.skips.len(), 2);
        drop(_fault);

        let bare = GuardedPredictor::new(tiny_artifact(None), ServeConfig::default());
        let _fault = faults::armed(faults::FORWARD, FaultAction::Nan, 1);
        let outcome = bare.predict(&g).unwrap();
        assert_eq!(outcome.rung, Rung::Fallback);
        assert_eq!(outcome.angles(), default_init());
    }

    #[test]
    fn clamp_is_a_bitwise_no_op_in_domain() {
        let (g, b, moved) = clamp_principal(1.25, 0.5);
        assert!(!moved);
        assert_eq!(g.to_bits(), 1.25f64.to_bits());
        assert_eq!(b.to_bits(), 0.5f64.to_bits());
        let (g, b, moved) = clamp_principal(-0.1, 2.0);
        assert!(moved);
        assert_eq!(g, 0.0);
        assert_eq!(b, std::f64::consts::FRAC_PI_2);
    }
}
