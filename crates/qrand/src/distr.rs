//! Distribution values: use these when a distribution is configured once
//! and sampled many times (or passed around as data).

use crate::{Rng, RngCore, SampleUniform};

/// A distribution that can be sampled with any generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Bernoulli trial with fixed success probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// A Bernoulli distribution with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Bernoulli: p={p} outside [0,1]");
        Bernoulli { p }
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.p)
    }
}

/// Normal (Gaussian) distribution, sampled by Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "Normal: invalid std_dev {std_dev}"
        );
        Normal { mean, std_dev }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_normal(self.mean, self.std_dev)
    }
}

/// Uniform distribution over a half-open interval `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: SampleUniform> Uniform<T> {
    /// A uniform distribution over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform: empty range");
        Uniform { lo, hi }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_half_open(self.lo, self.hi, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(1);
        let never = Bernoulli::new(0.0);
        let always = Bernoulli::new(1.0);
        for _ in 0..100 {
            assert!(!never.sample(&mut rng));
            assert!(always.sample(&mut rng));
        }
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = Normal::new(3.5, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
    }

    #[test]
    fn uniform_int_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(10u64, 20);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bernoulli_rejects_bad_p() {
        let _ = Bernoulli::new(1.5);
    }
}
