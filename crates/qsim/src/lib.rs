//! # qsim — a small dense state-vector quantum simulator
//!
//! This crate is the quantum substrate of the QAOA-GNN reproduction: the
//! paper labels its dataset by *classically simulating* QAOA circuits
//! (§2, Fig. 1), so an exact state-vector simulator is required.
//!
//! * [`Complex`] — minimal complex arithmetic (the approved offline crate
//!   set has no complex-number crate, so we provide one).
//! * [`StateVector`] — an `n`-qubit state with gate application, inner
//!   products, probabilities and measurement sampling.
//! * [`gates`] — single-qubit rotations (`H`, `RX`, `RY`, `RZ`), `CNOT`, the
//!   two-qubit `RZZ` interaction that implements the Max-Cut phase
//!   separator, and whole-register layers.
//! * [`diagonal`] — diagonal cost operators: precomputed per-basis-state
//!   values, phase application `e^{-iγ C}`, and expectation values. This is
//!   the fast path QAOA uses.
//! * [`fused`] — whole-register kernels that pair qubits and fold the
//!   diagonal phase into the mixer sweep; the labeling hot path runs on
//!   these.
//! * [`exec`] — the execution policy ([`exec::Executor`]): strictly
//!   serial, or a worker pool that splits sweeps into contiguous chunks
//!   above a qubit-count crossover. The serial path is bit-identical to
//!   every prior release; pooled results are bit-identical across thread
//!   counts and within 1e-12 of serial (reduction grouping only).
//!
//! Amplitudes are stored as split re/im `f64` arrays (struct-of-arrays)
//! so the fused sweeps auto-vectorize and parallel chunks are plain
//! disjoint `&mut [f64]` ranges; see [`StateVector`]. This crate still
//! forbids `unsafe` — all thread plumbing lives in the `qpool` crate.
//!
//! Qubit `q` corresponds to bit `q` of the basis-state index (little
//! endian): basis state `|z⟩` has qubit 0 in the least significant bit.
//!
//! ## Example
//!
//! ```
//! use qsim::{gates, StateVector};
//!
//! // Build a Bell pair and check its probabilities.
//! let mut psi = StateVector::zero_state(2);
//! gates::h(&mut psi, 0);
//! gates::cnot(&mut psi, 0, 1);
//! let p = psi.probabilities();
//! assert!((p[0b00] - 0.5).abs() < 1e-12);
//! assert!((p[0b11] - 0.5).abs() < 1e-12);
//! assert!(p[0b01].abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
mod state;

pub mod circuit;
pub mod diagonal;
pub mod exec;
pub mod fused;
pub mod gates;
pub mod noise;
pub mod pauli;

pub use complex::Complex;
pub use state::StateVector;

/// Maximum number of qubits the simulator will allocate (2^24 amplitudes,
/// 256 MiB). The paper's instances need at most 15.
pub const MAX_QUBITS: usize = 24;
