//! Landscape analysis for the p=1 QAOA objective.
//!
//! §3.3 attributes the dataset's low-quality labels to "the inherently
//! complex optimization landscape of the QAOA algorithm. Random
//! initialization may lead the optimizer into regions where not even local
//! optima exist." This module makes that claim measurable: scan the
//! `(γ, β)` plane, count local maxima, and estimate the basin of attraction
//! of the global optimum — the quantities behind the warm-start motivation.


use crate::{Evaluator, MaxCutHamiltonian, QaoaCircuit};

/// A dense scan of the p=1 objective over the canonical domain
/// `γ ∈ [0, π] × β ∈ [0, π/2]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Landscape {
    /// Grid resolution per axis.
    pub resolution: usize,
    /// Row-major expectations: `values[i * resolution + j]` is the value at
    /// `γ_i = i·π/(R−1)`, `β_j = j·(π/2)/(R−1)`.
    pub values: Vec<f64>,
    /// The classical optimum (for converting to approximation ratios).
    pub optimal: f64,
}

impl Landscape {
    /// Scans the objective on an `resolution × resolution` grid.
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 3` (local-maximum detection needs interior
    /// points).
    pub fn scan(hamiltonian: &MaxCutHamiltonian, resolution: usize) -> Self {
        assert!(resolution >= 3, "resolution must be at least 3");
        let circuit = QaoaCircuit::new(hamiltonian.clone());
        // One evaluator for the whole scan: resolution² circuit runs on a
        // single scratch buffer.
        let mut evaluator = Evaluator::new(&circuit);
        let mut values = Vec::with_capacity(resolution * resolution);
        for i in 0..resolution {
            let gamma = std::f64::consts::PI * i as f64 / (resolution - 1) as f64;
            for j in 0..resolution {
                let beta = std::f64::consts::FRAC_PI_2 * j as f64 / (resolution - 1) as f64;
                values.push(evaluator.expectation_flat(&[gamma, beta]));
            }
        }
        Landscape {
            resolution,
            values,
            optimal: hamiltonian.optimal_value(),
        }
    }

    /// The grid point coordinates `(γ, β)` of cell `(i, j)`.
    pub fn point(&self, i: usize, j: usize) -> (f64, f64) {
        (
            std::f64::consts::PI * i as f64 / (self.resolution - 1) as f64,
            std::f64::consts::FRAC_PI_2 * j as f64 / (self.resolution - 1) as f64,
        )
    }

    /// Value at cell `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn value(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.resolution && j < self.resolution, "index out of range");
        self.values[i * self.resolution + j]
    }

    /// The best grid value.
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The best grid point's `(γ, β)`.
    pub fn argmax(&self) -> (f64, f64) {
        let mut best = 0;
        for (k, &v) in self.values.iter().enumerate() {
            if v > self.values[best] {
                best = k;
            }
        }
        self.point(best / self.resolution, best % self.resolution)
    }

    /// Counts strict local maxima over the 4-neighborhood (interior cells
    /// only) — a ruggedness measure of the landscape.
    pub fn local_maxima(&self) -> Vec<(f64, f64, f64)> {
        let r = self.resolution;
        let mut maxima = Vec::new();
        for i in 1..r - 1 {
            for j in 1..r - 1 {
                let v = self.value(i, j);
                if v > self.value(i - 1, j)
                    && v > self.value(i + 1, j)
                    && v > self.value(i, j - 1)
                    && v > self.value(i, j + 1)
                {
                    let (gamma, beta) = self.point(i, j);
                    maxima.push((gamma, beta, v));
                }
            }
        }
        maxima
    }

    /// Fraction of grid cells from which steepest-ascent hill climbing on
    /// the grid reaches a cell within `tolerance` of the grid maximum —
    /// the "basin of attraction" a random initialization must hit.
    pub fn global_basin_fraction(&self, tolerance: f64) -> f64 {
        let r = self.resolution;
        let target = self.max_value() - tolerance;
        let mut hits = 0usize;
        for start_i in 0..r {
            for start_j in 0..r {
                let (mut i, mut j) = (start_i, start_j);
                loop {
                    let mut best = (i, j);
                    let mut best_v = self.value(i, j);
                    let neighbors = [
                        (i.wrapping_sub(1), j),
                        (i + 1, j),
                        (i, j.wrapping_sub(1)),
                        (i, j + 1),
                    ];
                    for (ni, nj) in neighbors {
                        if ni < r && nj < r && self.value(ni, nj) > best_v {
                            best_v = self.value(ni, nj);
                            best = (ni, nj);
                        }
                    }
                    if best == (i, j) {
                        break;
                    }
                    (i, j) = best;
                }
                if self.value(i, j) >= target {
                    hits += 1;
                }
            }
        }
        hits as f64 / (r * r) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgraph::Graph;

    fn landscape(g: &Graph, resolution: usize) -> Landscape {
        Landscape::scan(&MaxCutHamiltonian::new(g), resolution)
    }

    #[test]
    fn scan_shape_and_bounds() {
        let g = Graph::cycle(6).unwrap();
        let ls = landscape(&g, 17);
        assert_eq!(ls.values.len(), 17 * 17);
        assert!(ls.max_value() <= ls.optimal + 1e-9);
        // Zero angles live at cell (0, 0): uniform-superposition value W/2.
        assert!((ls.value(0, 0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn argmax_is_near_ring_optimum() {
        let g = Graph::cycle(8).unwrap();
        let ls = landscape(&g, 33);
        let (gamma, beta) = ls.argmax();
        // The ring optimum (π/4, π/8) — or, because even rings are
        // bipartite, its mirror (3π/4, 3π/8) — lies in the canonical
        // domain.
        let near = |x: f64, t: f64| (x - t).abs() < 0.15;
        assert!(
            (near(gamma, std::f64::consts::FRAC_PI_4) && near(beta, std::f64::consts::PI / 8.0))
                || (near(gamma, 3.0 * std::f64::consts::FRAC_PI_4)
                    && near(beta, 3.0 * std::f64::consts::PI / 8.0)),
            "unexpected argmax ({gamma}, {beta})"
        );
        assert!((ls.max_value() / ls.optimal - 0.75).abs() < 0.02);
    }

    #[test]
    fn local_maxima_exist_and_include_global() {
        let g = Graph::complete(5).unwrap();
        let ls = landscape(&g, 25);
        let maxima = ls.local_maxima();
        assert!(!maxima.is_empty());
        let best_local = maxima
            .iter()
            .map(|&(_, _, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        // The global grid max is either a local max or on the boundary.
        assert!(best_local <= ls.max_value() + 1e-12);
    }

    #[test]
    fn basin_fraction_in_unit_interval_and_monotone_in_tolerance() {
        let g = Graph::cycle(5).unwrap();
        let ls = landscape(&g, 21);
        let tight = ls.global_basin_fraction(1e-6);
        let loose = ls.global_basin_fraction(0.5);
        assert!((0.0..=1.0).contains(&tight));
        assert!((0.0..=1.0).contains(&loose));
        assert!(loose >= tight, "looser tolerance cannot shrink the basin");
        assert!(loose > 0.0, "some cell must reach the maximum");
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn tiny_resolution_rejected() {
        let g = Graph::cycle(4).unwrap();
        let _ = landscape(&g, 2);
    }
}
