use qrand::Rng;

use crate::exec::Executor;
use crate::{Complex, MAX_QUBITS};

/// A dense `n`-qubit quantum state: `2^n` complex amplitudes.
///
/// Basis states are indexed little-endian: bit `q` of the index is the value
/// of qubit `q`.
///
/// # Storage layout
///
/// Amplitudes are stored **struct-of-arrays**: one `Vec<f64>` of real parts
/// and one of imaginary parts, rather than an interleaved `Vec<Complex>`.
/// The fused butterfly sweeps in [`crate::fused`] then reduce to flat
/// same-stride `f64` loops that the compiler auto-vectorizes, and the
/// multi-threaded execution path hands workers plain disjoint `&mut [f64]`
/// chunks. [`Self::amplitude`] and [`Self::to_amplitudes`] provide the
/// interleaved view where convenience beats throughput.
///
/// # Example
///
/// ```
/// use qsim::StateVector;
///
/// let psi = StateVector::uniform_superposition(3);
/// assert_eq!(psi.num_qubits(), 3);
/// assert!((psi.norm() - 1.0).abs() < 1e-12);
/// assert!((psi.probability(0b101) - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    re: Vec<f64>,
    im: Vec<f64>,
}

impl StateVector {
    /// The computational basis state `|0...0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or exceeds [`MAX_QUBITS`].
    pub fn zero_state(num_qubits: usize) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0, exceeds [`MAX_QUBITS`], or
    /// `index >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, index: u64) -> Self {
        assert!(
            (1..=MAX_QUBITS).contains(&num_qubits),
            "num_qubits must be in 1..={MAX_QUBITS}, got {num_qubits}"
        );
        let dim = 1usize << num_qubits;
        assert!((index as usize) < dim, "basis index {index} out of range");
        let mut re = vec![0.0; dim];
        re[index as usize] = 1.0;
        StateVector {
            num_qubits,
            re,
            im: vec![0.0; dim],
        }
    }

    /// The uniform superposition `|+⟩^⊗n` — QAOA's initial state.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or exceeds [`MAX_QUBITS`].
    pub fn uniform_superposition(num_qubits: usize) -> Self {
        let mut psi = Self::zero_state(num_qubits);
        psi.set_uniform_superposition();
        psi
    }

    /// Resets this state to `|+⟩^⊗n` in place, reusing the existing
    /// allocation. This is what lets an evaluation loop (hundreds of
    /// optimizer-driven circuit runs per labeled graph) run without any
    /// state-vector allocations after setup.
    pub fn set_uniform_superposition(&mut self) {
        let amp = 1.0 / (self.dim() as f64).sqrt();
        self.re.fill(amp);
        self.im.fill(0.0);
    }

    /// Resets this state to the computational basis state `|index⟩` in
    /// place, reusing the existing allocation.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn set_basis_state(&mut self, index: u64) {
        assert!(
            (index as usize) < self.dim(),
            "basis index {index} out of range"
        );
        self.re.fill(0.0);
        self.im.fill(0.0);
        self.re[index as usize] = 1.0;
    }

    /// Builds a state from raw interleaved amplitudes (length must be a
    /// power of two).
    ///
    /// # Panics
    ///
    /// Panics if the length is not `2^k` for `1 <= k <= MAX_QUBITS`.
    pub fn from_amplitudes(amplitudes: Vec<Complex>) -> Self {
        let dim = amplitudes.len();
        assert!(dim >= 2 && dim.is_power_of_two(), "length must be a power of two >= 2");
        let num_qubits = dim.trailing_zeros() as usize;
        assert!(num_qubits <= MAX_QUBITS, "too many qubits");
        StateVector {
            num_qubits,
            re: amplitudes.iter().map(|a| a.re).collect(),
            im: amplitudes.iter().map(|a| a.im).collect(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Dimension `2^n` of the underlying vector.
    pub fn dim(&self) -> usize {
        self.re.len()
    }

    /// The real parts, one per basis state.
    pub fn re(&self) -> &[f64] {
        &self.re
    }

    /// The imaginary parts, one per basis state.
    pub fn im(&self) -> &[f64] {
        &self.im
    }

    /// Mutable views of both component arrays (used by gate kernels; one
    /// call because the borrow checker must see the two disjoint borrows
    /// at once).
    pub fn re_im_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.re, &mut self.im)
    }

    /// The amplitudes gathered into interleaved form — a convenience for
    /// tests and diagnostics; kernels work on the split arrays directly.
    pub fn to_amplitudes(&self) -> Vec<Complex> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&re, &im)| Complex::new(re, im))
            .collect()
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn amplitude(&self, index: usize) -> Complex {
        Complex::new(self.re[index], self.im[index])
    }

    /// `⟨self|self⟩^{1/2}`.
    pub fn norm(&self) -> f64 {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&re, &im)| re * re + im * im)
            .sum::<f64>()
            .sqrt()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics if the state is (numerically) the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        assert!(n > 1e-300, "cannot normalize the zero vector");
        let inv = 1.0 / n;
        for re in &mut self.re {
            *re *= inv;
        }
        for im in &mut self.im {
            *im *= inv;
        }
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn inner_product(&self, other: &StateVector) -> Complex {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "inner product requires equal qubit counts"
        );
        let mut acc = Complex::ZERO;
        for i in 0..self.dim() {
            acc += self.amplitude(i).conj() * other.amplitude(i);
        }
        acc
    }

    /// Fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn probability(&self, index: usize) -> f64 {
        self.re[index] * self.re[index] + self.im[index] * self.im[index]
    }

    /// All basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&re, &im)| re * re + im * im)
            .collect()
    }

    /// Samples one computational-basis measurement outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut u: f64 = rng.gen::<f64>() * self.norm().powi(2);
        for i in 0..self.dim() {
            u -= self.re[i] * self.re[i] + self.im[i] * self.im[i];
            if u <= 0.0 {
                return i as u64;
            }
        }
        (self.dim() - 1) as u64
    }

    /// Samples `shots` measurement outcomes and returns per-basis-state
    /// counts (length `2^n`).
    pub fn sample_counts<R: Rng + ?Sized>(&self, shots: usize, rng: &mut R) -> Vec<usize> {
        let mut counts = vec![0usize; self.dim()];
        for _ in 0..shots {
            counts[self.sample(rng) as usize] += 1;
        }
        counts
    }

    /// Expectation value of a real diagonal observable given as per-basis
    /// values.
    ///
    /// This serial path folds the sum left-to-right over basis states and
    /// is kept bit-identical across releases — the golden suites pin it.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n`.
    pub fn expectation_diagonal(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.dim(), "diagonal length must equal 2^n");
        self.re
            .iter()
            .zip(&self.im)
            .zip(values)
            .map(|((&re, &im), &v)| (re * re + im * im) * v)
            .sum()
    }

    /// [`Self::expectation_diagonal`] on an execution policy: above the
    /// policy's crossover the probability-weighted sum is computed in
    /// fixed-size chunks on the worker pool and the per-chunk partials are
    /// folded in index order.
    ///
    /// The chunk size is a constant (not a function of the thread count),
    /// so the result is **bit-identical for any pool width** — only the
    /// serial path's left-to-right fold groups differently, and the golden
    /// parallel suite pins that gap below 1e-12.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != 2^n`.
    pub fn expectation_diagonal_exec(&self, values: &[f64], exec: &Executor) -> f64 {
        assert_eq!(values.len(), self.dim(), "diagonal length must equal 2^n");
        let Some(pool) = exec.pool_for(self.num_qubits) else {
            return self.expectation_diagonal(values);
        };
        /// One fixed-size reduction chunk: borrowed inputs, owned partial.
        struct ReduceChunk<'a> {
            re: &'a [f64],
            im: &'a [f64],
            values: &'a [f64],
            partial: f64,
        }
        let mut chunks: Vec<ReduceChunk<'_>> = self
            .re
            .chunks(Executor::REDUCE_CHUNK)
            .zip(self.im.chunks(Executor::REDUCE_CHUNK))
            .zip(values.chunks(Executor::REDUCE_CHUNK))
            .map(|((re, im), values)| ReduceChunk {
                re,
                im,
                values,
                partial: 0.0,
            })
            .collect();
        pool.run_mut(&mut chunks, |_, chunk| {
            chunk.partial = chunk
                .re
                .iter()
                .zip(chunk.im)
                .zip(chunk.values)
                .map(|((&re, &im), &v)| (re * re + im * im) * v)
                .sum();
        });
        // Deterministic fold: chunk order is index order regardless of
        // which worker produced each partial.
        chunks.iter().map(|c| c.partial).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    #[test]
    fn zero_state_is_basis_zero() {
        let psi = StateVector::zero_state(3);
        assert_eq!(psi.dim(), 8);
        assert_eq!(psi.amplitude(0), Complex::ONE);
        assert!((psi.norm() - 1.0).abs() < 1e-15);
        assert_eq!(psi.probability(0), 1.0);
    }

    #[test]
    fn basis_state_places_amplitude() {
        let psi = StateVector::basis_state(2, 0b10);
        assert_eq!(psi.amplitude(2), Complex::ONE);
        assert_eq!(psi.amplitude(0), Complex::ZERO);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_state_rejects_large_index() {
        let _ = StateVector::basis_state(2, 4);
    }

    #[test]
    #[should_panic(expected = "num_qubits")]
    fn zero_qubits_rejected() {
        let _ = StateVector::zero_state(0);
    }

    #[test]
    fn uniform_superposition_probabilities() {
        let psi = StateVector::uniform_superposition(4);
        for i in 0..16 {
            assert!((psi.probability(i) - 1.0 / 16.0).abs() < 1e-15);
        }
    }

    #[test]
    fn in_place_resets_match_constructors() {
        let mut psi = StateVector::basis_state(3, 5);
        psi.set_uniform_superposition();
        assert_eq!(psi, StateVector::uniform_superposition(3));
        psi.set_basis_state(6);
        assert_eq!(psi, StateVector::basis_state(3, 6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_basis_state_rejects_large_index() {
        let mut psi = StateVector::zero_state(2);
        psi.set_basis_state(4);
    }

    #[test]
    fn from_amplitudes_round_trip() {
        let amps = vec![Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::ZERO];
        let psi = StateVector::from_amplitudes(amps);
        assert_eq!(psi.num_qubits(), 2);
        assert_eq!(psi, StateVector::zero_state(2));
    }

    #[test]
    fn split_and_interleaved_views_agree() {
        let amps = vec![
            Complex::new(0.1, -0.2),
            Complex::new(0.3, 0.4),
            Complex::new(-0.5, 0.6),
            Complex::new(0.7, -0.8),
        ];
        let psi = StateVector::from_amplitudes(amps.clone());
        assert_eq!(psi.to_amplitudes(), amps);
        for (i, a) in amps.iter().enumerate() {
            assert_eq!(psi.re()[i], a.re);
            assert_eq!(psi.im()[i], a.im);
            assert_eq!(psi.amplitude(i), *a);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_rejects_non_power_of_two() {
        let _ = StateVector::from_amplitudes(vec![Complex::ONE; 3]);
    }

    #[test]
    fn normalize_rescales() {
        let mut psi = StateVector::from_amplitudes(vec![
            Complex::new(3.0, 0.0),
            Complex::new(0.0, 4.0),
        ]);
        psi.normalize();
        assert!((psi.norm() - 1.0).abs() < 1e-15);
        assert!((psi.probability(0) - 0.36).abs() < 1e-12);
    }

    #[test]
    fn inner_product_orthogonal_and_self() {
        let a = StateVector::basis_state(2, 0);
        let b = StateVector::basis_state(2, 3);
        assert_eq!(a.inner_product(&b), Complex::ZERO);
        assert_eq!(a.inner_product(&a), Complex::ONE);
        assert_eq!(a.fidelity(&b), 0.0);
        assert_eq!(a.fidelity(&a), 1.0);
    }

    #[test]
    fn sampling_matches_distribution() {
        let psi = StateVector::uniform_superposition(2);
        let mut rng = StdRng::seed_from_u64(9);
        let counts = psi.sample_counts(40_000, &mut rng);
        for &c in &counts {
            let freq = c as f64 / 40_000.0;
            assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn deterministic_sampling_on_basis_state() {
        let psi = StateVector::basis_state(3, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(psi.sample(&mut rng), 5);
        }
    }

    #[test]
    fn expectation_diagonal_uniform() {
        let psi = StateVector::uniform_superposition(2);
        let values = [0.0, 1.0, 2.0, 3.0];
        assert!((psi.expectation_diagonal(&values) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn expectation_diagonal_exec_matches_serial_for_serial_policy() {
        let psi = StateVector::uniform_superposition(3);
        let values: Vec<f64> = (0..8).map(|i| i as f64 * 0.3).collect();
        let serial = psi.expectation_diagonal(&values);
        let via_exec = psi.expectation_diagonal_exec(&values, &Executor::serial());
        assert_eq!(serial.to_bits(), via_exec.to_bits());
    }

    #[test]
    fn expectation_diagonal_exec_parallel_is_close_and_pool_invariant() {
        let mut psi = StateVector::uniform_superposition(9);
        // Asymmetrize so the sum has non-trivial cancellation structure.
        crate::gates::ry(&mut psi, 3, 0.7);
        crate::gates::rz(&mut psi, 5, 1.1);
        let values: Vec<f64> = (0..512).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let serial = psi.expectation_diagonal(&values);
        let mut parallel = Vec::new();
        for threads in [1usize, 2, 4] {
            let exec = Executor::threaded_with_crossover(threads, 1);
            parallel.push(psi.expectation_diagonal_exec(&values, &exec));
        }
        for p in &parallel {
            assert!((p - serial).abs() < 1e-12, "parallel {p} vs serial {serial}");
            assert_eq!(p.to_bits(), parallel[0].to_bits(), "pool-width variance");
        }
    }

    #[test]
    #[should_panic(expected = "diagonal length")]
    fn expectation_diagonal_rejects_wrong_length() {
        let psi = StateVector::uniform_superposition(2);
        let _ = psi.expectation_diagonal(&[1.0, 2.0]);
    }
}
