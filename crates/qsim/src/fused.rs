//! Fused whole-register kernels for the QAOA labeling hot path.
//!
//! One QAOA layer is a diagonal phase `e^{-iγC}` followed by the mixer
//! `RX(2β)` on every qubit. Applied gate by gate that is `n + 1` full
//! sweeps over the `2^n` amplitudes per layer; the kernels here cut that
//! down in two ways:
//!
//! * **Qubit pairing.** `RX(θ)^⊗2` on a qubit pair is a single 4-amplitude
//!   butterfly, so [`rx_all`] processes qubits two at a time — `⌈n/2⌉`
//!   sweeps instead of `n`, and with shared sub-expressions fewer flops
//!   per amplitude than two independent 2×2 butterflies.
//! * **Phase fusion.** The diagonal phase is per-amplitude, so
//!   [`phase_rx_all`] folds it into the first mixer sweep: each amplitude
//!   is phased as it is first loaded, eliminating one full memory pass
//!   (and one pass of `cis` multiplications) per layer.
//!
//! Both kernels are exact — the golden equivalence suite in
//! `tests/fused.rs` pins them against the gate-by-gate path to 1e-12 —
//! and allocation-free: they mutate the state in place.

use crate::{Complex, StateVector};

/// Precomputed constants for the two-qubit `RX(θ)⊗RX(θ)` butterfly.
///
/// With `c = cos(θ/2)`, `s = sin(θ/2)` the tensor square works out to
/// (writing `p = x01 + x10`, `q = x00 + x11`):
///
/// ```text
/// y00 = c²·x00 − s²·x11 − i·cs·p
/// y01 = c²·x01 − s²·x10 − i·cs·q
/// y10 = c²·x10 − s²·x01 − i·cs·q
/// y11 = c²·x11 − s²·x00 − i·cs·p
/// ```
#[derive(Clone, Copy)]
struct RxPair {
    cc: f64,
    ss: f64,
    cs: f64,
}

impl RxPair {
    fn new(theta: f64) -> Self {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        RxPair {
            cc: c * c,
            ss: s * s,
            cs: c * s,
        }
    }

    /// One 4-amplitude butterfly.
    #[inline(always)]
    fn butterfly(self, x00: Complex, x01: Complex, x10: Complex, x11: Complex) -> [Complex; 4] {
        let p = x01 + x10;
        let q = x00 + x11;
        // Multiplication by −i·cs: −i·(re + i·im) = im − i·re.
        let rot_p = Complex::new(self.cs * p.im, -self.cs * p.re);
        let rot_q = Complex::new(self.cs * q.im, -self.cs * q.re);
        [
            x00.scale(self.cc) - x11.scale(self.ss) + rot_p,
            x01.scale(self.cc) - x10.scale(self.ss) + rot_q,
            x10.scale(self.cc) - x01.scale(self.ss) + rot_q,
            x11.scale(self.cc) - x00.scale(self.ss) + rot_p,
        ]
    }
}

/// Applies the `RX(θ)⊗RX(θ)` butterfly to qubit pair `(a, b)`, `a < b`,
/// in one sweep.
fn rx_pair_sweep(amps: &mut [Complex], a: usize, b: usize, k: RxPair) {
    let sa = 1usize << a;
    let sb = 1usize << b;
    let dim = amps.len();
    let mut hi = 0;
    while hi < dim {
        let mut mid = hi;
        while mid < hi + sb {
            for i00 in mid..mid + sa {
                let i01 = i00 + sa;
                let i10 = i00 + sb;
                let i11 = i10 + sa;
                let y = k.butterfly(amps[i00], amps[i01], amps[i10], amps[i11]);
                amps[i00] = y[0];
                amps[i01] = y[1];
                amps[i10] = y[2];
                amps[i11] = y[3];
            }
            mid += 2 * sa;
        }
        hi += 2 * sb;
    }
}

/// Like [`rx_pair_sweep`] on pair `(0, 1)`, but multiplies each amplitude
/// by `e^{-iγ·values[i]}` as it is loaded — the fused phase + first mixer
/// sweep. Indices `i00..i11` are the four consecutive amplitudes of the
/// quadruple, so the diagonal table is read in order.
fn phase_rx_pair01_sweep(amps: &mut [Complex], values: &[f64], gamma: f64, k: RxPair) {
    debug_assert_eq!(amps.len(), values.len());
    let mut i = 0;
    while i < amps.len() {
        let x00 = amps[i] * Complex::cis(-gamma * values[i]);
        let x01 = amps[i + 1] * Complex::cis(-gamma * values[i + 1]);
        let x10 = amps[i + 2] * Complex::cis(-gamma * values[i + 2]);
        let x11 = amps[i + 3] * Complex::cis(-gamma * values[i + 3]);
        let y = k.butterfly(x00, x01, x10, x11);
        amps[i] = y[0];
        amps[i + 1] = y[1];
        amps[i + 2] = y[2];
        amps[i + 3] = y[3];
        i += 4;
    }
}

/// Single-qubit `RX(θ)` sweep (for the leftover qubit when `n` is odd),
/// optionally phasing each amplitude by `e^{-iγ·values[i]}` first.
fn rx_single_sweep(
    amps: &mut [Complex],
    qubit: usize,
    theta: f64,
    phase: Option<(&[f64], f64)>,
) {
    let c = Complex::from((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    let stride = 1usize << qubit;
    let dim = amps.len();
    let mut base = 0;
    while base < dim {
        for offset in 0..stride {
            let i0 = base + offset;
            let i1 = i0 + stride;
            let (a0, a1) = match phase {
                Some((values, gamma)) => (
                    amps[i0] * Complex::cis(-gamma * values[i0]),
                    amps[i1] * Complex::cis(-gamma * values[i1]),
                ),
                None => (amps[i0], amps[i1]),
            };
            amps[i0] = c * a0 + s * a1;
            amps[i1] = s * a0 + c * a1;
        }
        base += 2 * stride;
    }
}

/// Applies `RX(θ)` to every qubit in `⌈n/2⌉` sweeps instead of `n`.
///
/// Exactly equivalent to [`crate::gates::rx_all`]; this is the fused fast
/// path the QAOA mixer layer uses (`θ = 2β`).
pub fn rx_all(psi: &mut StateVector, theta: f64) {
    let n = psi.num_qubits();
    let amps = psi.amplitudes_mut();
    if n == 1 {
        rx_single_sweep(amps, 0, theta, None);
        return;
    }
    let k = RxPair::new(theta);
    let mut q = 0;
    while q + 1 < n {
        rx_pair_sweep(amps, q, q + 1, k);
        q += 2;
    }
    if q < n {
        rx_single_sweep(amps, q, theta, None);
    }
}

/// One fused QAOA layer: the diagonal phase `e^{-iγD}` (with `D` given as
/// per-basis-state `values`) followed by `RX(θ)` on every qubit, with the
/// phase folded into the first mixer sweep.
///
/// Exactly equivalent to `DiagonalOperator::apply_phase` followed by
/// [`crate::gates::rx_all`], in `⌈n/2⌉` sweeps instead of `n + 1`.
///
/// # Panics
///
/// Panics if `values.len() != 2^n`.
pub fn phase_rx_all(psi: &mut StateVector, values: &[f64], gamma: f64, theta: f64) {
    let n = psi.num_qubits();
    assert_eq!(
        values.len(),
        psi.dim(),
        "diagonal length must equal 2^n"
    );
    let amps = psi.amplitudes_mut();
    if n == 1 {
        rx_single_sweep(amps, 0, theta, Some((values, gamma)));
        return;
    }
    let k = RxPair::new(theta);
    phase_rx_pair01_sweep(amps, values, gamma, k);
    let mut q = 2;
    while q + 1 < n {
        rx_pair_sweep(amps, q, q + 1, k);
        q += 2;
    }
    if q < n {
        rx_single_sweep(amps, q, theta, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagonal::DiagonalOperator;
    use crate::gates;

    fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
        a.amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (*x - *y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn rx_all_matches_per_qubit_path() {
        for n in 1..=7 {
            let mut fused = StateVector::uniform_superposition(n);
            // Break the symmetry so every amplitude is distinct.
            for q in 0..n {
                gates::rz(&mut fused, q, 0.3 + q as f64);
            }
            let mut unfused = fused.clone();
            rx_all(&mut fused, 0.77);
            gates::rx_all(&mut unfused, 0.77);
            assert!(
                max_amp_diff(&fused, &unfused) < 1e-13,
                "n={n}: fused RX layer diverges"
            );
        }
    }

    #[test]
    fn phase_rx_all_matches_sequential_path() {
        for n in 1..=7 {
            let op = DiagonalOperator::from_fn(n, |z| (z.count_ones() as f64) * 0.8 + z as f64 * 0.01);
            let mut fused = StateVector::uniform_superposition(n);
            for q in 0..n {
                gates::ry(&mut fused, q, 0.2 * (q + 1) as f64);
            }
            let mut unfused = fused.clone();
            phase_rx_all(&mut fused, op.values(), 0.41, 0.93);
            op.apply_phase(&mut unfused, 0.41);
            gates::rx_all(&mut unfused, 0.93);
            assert!(
                max_amp_diff(&fused, &unfused) < 1e-13,
                "n={n}: fused phase+mixer layer diverges"
            );
        }
    }

    #[test]
    fn fused_layers_preserve_norm() {
        let op = DiagonalOperator::from_fn(5, |z| z as f64);
        let mut psi = StateVector::uniform_superposition(5);
        for _ in 0..4 {
            phase_rx_all(&mut psi, op.values(), 0.9, 0.6);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "diagonal length")]
    fn phase_rx_all_rejects_wrong_table() {
        let mut psi = StateVector::uniform_superposition(3);
        phase_rx_all(&mut psi, &[0.0; 4], 0.1, 0.2);
    }
}
