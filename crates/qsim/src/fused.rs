//! Fused whole-register kernels for the QAOA labeling hot path.
//!
//! One QAOA layer is a diagonal phase `e^{-iγC}` followed by the mixer
//! `RX(2β)` on every qubit. Applied gate by gate that is `n + 1` full
//! sweeps over the `2^n` amplitudes per layer; the kernels here cut that
//! down in two ways:
//!
//! * **Qubit pairing.** `RX(θ)^⊗2` on a qubit pair is a single 4-amplitude
//!   butterfly, so [`rx_all`] processes qubits two at a time — `⌈n/2⌉`
//!   sweeps instead of `n`, and with shared sub-expressions fewer flops
//!   per amplitude than two independent 2×2 butterflies.
//! * **Phase fusion.** The diagonal phase is per-amplitude, so
//!   [`phase_rx_all`] folds it into the first mixer sweep: each amplitude
//!   is phased as it is first loaded, eliminating one full memory pass
//!   (and one pass of `cis` multiplications) per layer.
//!
//! The sweeps run directly on the state's split re/im `f64` arrays
//! (see [`StateVector`]); the butterfly body is straight-line scalar
//! arithmetic over same-index lanes, which the compiler auto-vectorizes.
//!
//! # Parallel execution
//!
//! The `_exec` variants ([`rx_all_exec`], [`phase_rx_all_exec`]) accept an
//! [`Executor`]; above its crossover, each sweep is split into contiguous
//! chunks aligned to the sweep's butterfly-block size and run on the
//! worker pool. Chunk boundaries never change per-element arithmetic, so
//! pooled sweeps are bit-identical to serial ones for **any** thread
//! count; a pair sweep on qubits `(a, a+1)` decomposes into independent
//! `2^{a+2}`-amplitude blocks, so the top one or two sweeps of a register
//! may run with reduced parallelism (at most 2 of `⌈n/2⌉` sweeps — a
//! bounded Amdahl tail; see DESIGN.md, "Simulator execution model").
//!
//! Both kernels are exact — the golden equivalence suite in
//! `tests/fused.rs` pins them against the gate-by-gate path to 1e-12, and
//! `tests/golden_parallel.rs` pins pooled-vs-serial — and allocation-free
//! on the serial path: they mutate the state in place.

use qpool::ThreadPool;

use crate::exec::Executor;
use crate::{Complex, StateVector};

/// Precomputed constants for the two-qubit `RX(θ)⊗RX(θ)` butterfly.
///
/// With `c = cos(θ/2)`, `s = sin(θ/2)` the tensor square works out to
/// (writing `p = x01 + x10`, `q = x00 + x11`):
///
/// ```text
/// y00 = c²·x00 − s²·x11 − i·cs·p
/// y01 = c²·x01 − s²·x10 − i·cs·q
/// y10 = c²·x10 − s²·x01 − i·cs·q
/// y11 = c²·x11 − s²·x00 − i·cs·p
/// ```
#[derive(Clone, Copy)]
struct RxPair {
    cc: f64,
    ss: f64,
    cs: f64,
}

impl RxPair {
    fn new(theta: f64) -> Self {
        let c = (theta / 2.0).cos();
        let s = (theta / 2.0).sin();
        RxPair {
            cc: c * c,
            ss: s * s,
            cs: c * s,
        }
    }

    /// One 4-amplitude butterfly on split components, returned as
    /// `[y00re, y00im, y01re, y01im, y10re, y10im, y11re, y11im]`.
    ///
    /// The re and im lanes are independent scalar expressions in the
    /// exact operation order of the historical `Complex` formulation, so
    /// results are bit-identical to it (the golden suites rely on this).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn butterfly(
        self,
        x00re: f64,
        x00im: f64,
        x01re: f64,
        x01im: f64,
        x10re: f64,
        x10im: f64,
        x11re: f64,
        x11im: f64,
    ) -> [f64; 8] {
        let p_re = x01re + x10re;
        let p_im = x01im + x10im;
        let q_re = x00re + x11re;
        let q_im = x00im + x11im;
        // Multiplication by −i·cs: −i·(re + i·im) = im − i·re.
        let rot_p_re = self.cs * p_im;
        let rot_p_im = -self.cs * p_re;
        let rot_q_re = self.cs * q_im;
        let rot_q_im = -self.cs * q_re;
        [
            x00re * self.cc - x11re * self.ss + rot_p_re,
            x00im * self.cc - x11im * self.ss + rot_p_im,
            x01re * self.cc - x10re * self.ss + rot_q_re,
            x01im * self.cc - x10im * self.ss + rot_q_im,
            x10re * self.cc - x01re * self.ss + rot_q_re,
            x10im * self.cc - x01im * self.ss + rot_q_im,
            x11re * self.cc - x00re * self.ss + rot_p_re,
            x11im * self.cc - x00im * self.ss + rot_p_im,
        ]
    }
}

/// Multiplies the amplitude `(re, im)` by `e^{it}` — the split-component
/// form of `Complex * Complex::cis(t)`, in its operation order.
#[inline(always)]
fn phased(re: f64, im: f64, t: f64) -> (f64, f64) {
    let ph_re = t.cos();
    let ph_im = t.sin();
    (re * ph_re - im * ph_im, re * ph_im + im * ph_re)
}

/// Applies the `RX(θ)⊗RX(θ)` butterfly to qubit pair `(a, b)`, `a < b`,
/// in one sweep. Works on any block-aligned sub-slice of the state (the
/// chunked parallel path passes chunks; serial passes the full arrays).
fn rx_pair_sweep(re: &mut [f64], im: &mut [f64], a: usize, b: usize, k: RxPair) {
    let sa = 1usize << a;
    let sb = 1usize << b;
    let dim = re.len();
    let mut hi = 0;
    while hi < dim {
        let mut mid = hi;
        while mid < hi + sb {
            for i00 in mid..mid + sa {
                let i01 = i00 + sa;
                let i10 = i00 + sb;
                let i11 = i10 + sa;
                let y = k.butterfly(
                    re[i00], im[i00], re[i01], im[i01], re[i10], im[i10], re[i11], im[i11],
                );
                re[i00] = y[0];
                im[i00] = y[1];
                re[i01] = y[2];
                im[i01] = y[3];
                re[i10] = y[4];
                im[i10] = y[5];
                re[i11] = y[6];
                im[i11] = y[7];
            }
            mid += 2 * sa;
        }
        hi += 2 * sb;
    }
}

/// Like [`rx_pair_sweep`] on pair `(0, 1)`, but multiplies each amplitude
/// by `e^{-iγ·values[i]}` as it is loaded — the fused phase + first mixer
/// sweep. Indices `i..i+3` are the four consecutive amplitudes of the
/// quadruple, so the diagonal table is read in order.
fn phase_rx_pair01_sweep(re: &mut [f64], im: &mut [f64], values: &[f64], gamma: f64, k: RxPair) {
    debug_assert_eq!(re.len(), values.len());
    let neg_gamma = -gamma;
    let mut i = 0;
    while i < re.len() {
        let (x00re, x00im) = phased(re[i], im[i], neg_gamma * values[i]);
        let (x01re, x01im) = phased(re[i + 1], im[i + 1], neg_gamma * values[i + 1]);
        let (x10re, x10im) = phased(re[i + 2], im[i + 2], neg_gamma * values[i + 2]);
        let (x11re, x11im) = phased(re[i + 3], im[i + 3], neg_gamma * values[i + 3]);
        let y = k.butterfly(x00re, x00im, x01re, x01im, x10re, x10im, x11re, x11im);
        re[i] = y[0];
        im[i] = y[1];
        re[i + 1] = y[2];
        im[i + 1] = y[3];
        re[i + 2] = y[4];
        im[i + 2] = y[5];
        re[i + 3] = y[6];
        im[i + 3] = y[7];
        i += 4;
    }
}

/// Single-qubit `RX(θ)` sweep (for the leftover qubit when `n` is odd),
/// optionally phasing each amplitude by `e^{-iγ·values[i]}` first.
///
/// Loads each amplitude pair into [`Complex`] and applies the historical
/// formulas verbatim — including the structural-zero matrix entries — so
/// even signed-zero results stay bit-identical to every prior release.
fn rx_single_sweep(
    re: &mut [f64],
    im: &mut [f64],
    qubit: usize,
    theta: f64,
    phase: Option<(&[f64], f64)>,
) {
    let c = Complex::from((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    let stride = 1usize << qubit;
    let dim = re.len();
    let mut base = 0;
    while base < dim {
        for offset in 0..stride {
            let i0 = base + offset;
            let i1 = i0 + stride;
            let mut a0 = Complex::new(re[i0], im[i0]);
            let mut a1 = Complex::new(re[i1], im[i1]);
            if let Some((values, gamma)) = phase {
                a0 *= Complex::cis(-gamma * values[i0]);
                a1 *= Complex::cis(-gamma * values[i1]);
            }
            let y0 = c * a0 + s * a1;
            let y1 = s * a0 + c * a1;
            re[i0] = y0.re;
            im[i0] = y0.im;
            re[i1] = y1.re;
            im[i1] = y1.im;
        }
        base += 2 * stride;
    }
}

/// One contiguous task of a pooled sweep: disjoint slices of the split
/// state plus the matching diagonal slice (empty for non-phase sweeps).
struct SweepChunk<'a> {
    re: &'a mut [f64],
    im: &'a mut [f64],
    values: &'a [f64],
}

/// Splits the state into per-worker contiguous chunks aligned to `block`
/// elements and runs `f` on each via the pool. `block` is the size of one
/// independent butterfly block, so every chunk is self-contained; chunk
/// boundaries never change per-element arithmetic, which is what makes
/// pooled sweeps bit-identical for any thread count.
fn run_chunked(
    pool: &ThreadPool,
    re: &mut [f64],
    im: &mut [f64],
    values: &[f64],
    block: usize,
    f: impl Fn(&mut SweepChunk<'_>) + Sync,
) {
    let nblocks = re.len() / block;
    let tasks = pool.threads().min(nblocks).max(1);
    let per = nblocks / tasks;
    let extra = nblocks % tasks;
    let mut chunks: Vec<SweepChunk<'_>> = Vec::with_capacity(tasks);
    let (mut re_rest, mut im_rest, mut v_rest) = (re, im, values);
    for t in 0..tasks {
        let take = block * (per + usize::from(t < extra));
        let (re_c, re_t) = std::mem::take(&mut re_rest).split_at_mut(take);
        let (im_c, im_t) = std::mem::take(&mut im_rest).split_at_mut(take);
        let (v_c, v_t) = v_rest.split_at(take.min(v_rest.len()));
        re_rest = re_t;
        im_rest = im_t;
        v_rest = v_t;
        chunks.push(SweepChunk {
            re: re_c,
            im: im_c,
            values: v_c,
        });
    }
    pool.run_mut(&mut chunks, |_, c| f(c));
}

/// The mixer sweeps on qubits `from_q..n` (consecutive pairs plus a
/// possible odd leftover), serial or chunked onto `pool`.
fn rx_tail(
    re: &mut [f64],
    im: &mut [f64],
    n: usize,
    from_q: usize,
    theta: f64,
    k: RxPair,
    pool: Option<&ThreadPool>,
) {
    let mut q = from_q;
    while q + 1 < n {
        match pool {
            Some(pool) => run_chunked(pool, re, im, &[], 4usize << q, |c| {
                rx_pair_sweep(c.re, c.im, q, q + 1, k)
            }),
            None => rx_pair_sweep(re, im, q, q + 1, k),
        }
        q += 2;
    }
    if q < n {
        match pool {
            Some(pool) => run_chunked(pool, re, im, &[], 2usize << q, |c| {
                rx_single_sweep(c.re, c.im, q, theta, None)
            }),
            None => rx_single_sweep(re, im, q, theta, None),
        }
    }
}

/// Applies `RX(θ)` to every qubit in `⌈n/2⌉` sweeps instead of `n`.
///
/// Exactly equivalent to [`crate::gates::rx_all`]; this is the fused fast
/// path the QAOA mixer layer uses (`θ = 2β`).
pub fn rx_all(psi: &mut StateVector, theta: f64) {
    rx_all_exec(psi, theta, &Executor::serial());
}

/// [`rx_all`] on an execution policy: pooled sweeps above the executor's
/// crossover, the bit-identical serial path below it.
pub fn rx_all_exec(psi: &mut StateVector, theta: f64, exec: &Executor) {
    let n = psi.num_qubits();
    let pool = exec.pool_for(n);
    let (re, im) = psi.re_im_mut();
    if n == 1 {
        rx_single_sweep(re, im, 0, theta, None);
        return;
    }
    rx_tail(re, im, n, 0, theta, RxPair::new(theta), pool);
}

/// One fused QAOA layer: the diagonal phase `e^{-iγD}` (with `D` given as
/// per-basis-state `values`) followed by `RX(θ)` on every qubit, with the
/// phase folded into the first mixer sweep.
///
/// Exactly equivalent to `DiagonalOperator::apply_phase` followed by
/// [`crate::gates::rx_all`], in `⌈n/2⌉` sweeps instead of `n + 1`.
///
/// # Panics
///
/// Panics if `values.len() != 2^n`.
pub fn phase_rx_all(psi: &mut StateVector, values: &[f64], gamma: f64, theta: f64) {
    phase_rx_all_exec(psi, values, gamma, theta, &Executor::serial());
}

/// [`phase_rx_all`] on an execution policy: pooled sweeps above the
/// executor's crossover, the bit-identical serial path below it.
///
/// # Panics
///
/// Panics if `values.len() != 2^n`.
pub fn phase_rx_all_exec(
    psi: &mut StateVector,
    values: &[f64],
    gamma: f64,
    theta: f64,
    exec: &Executor,
) {
    let n = psi.num_qubits();
    assert_eq!(values.len(), psi.dim(), "diagonal length must equal 2^n");
    let pool = exec.pool_for(n);
    let (re, im) = psi.re_im_mut();
    if n == 1 {
        rx_single_sweep(re, im, 0, theta, Some((values, gamma)));
        return;
    }
    let k = RxPair::new(theta);
    match pool {
        Some(pool) => run_chunked(pool, re, im, values, 4, |c| {
            phase_rx_pair01_sweep(c.re, c.im, c.values, gamma, k)
        }),
        None => phase_rx_pair01_sweep(re, im, values, gamma, k),
    }
    rx_tail(re, im, n, 2, theta, k, pool);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagonal::DiagonalOperator;
    use crate::gates;

    fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
        a.to_amplitudes()
            .iter()
            .zip(b.to_amplitudes())
            .map(|(x, y)| (*x - y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn rx_all_matches_per_qubit_path() {
        for n in 1..=7 {
            let mut fused = StateVector::uniform_superposition(n);
            // Break the symmetry so every amplitude is distinct.
            for q in 0..n {
                gates::rz(&mut fused, q, 0.3 + q as f64);
            }
            let mut unfused = fused.clone();
            rx_all(&mut fused, 0.77);
            gates::rx_all(&mut unfused, 0.77);
            assert!(
                max_amp_diff(&fused, &unfused) < 1e-13,
                "n={n}: fused RX layer diverges"
            );
        }
    }

    #[test]
    fn phase_rx_all_matches_sequential_path() {
        for n in 1..=7 {
            let op = DiagonalOperator::from_fn(n, |z| (z.count_ones() as f64) * 0.8 + z as f64 * 0.01);
            let mut fused = StateVector::uniform_superposition(n);
            for q in 0..n {
                gates::ry(&mut fused, q, 0.2 * (q + 1) as f64);
            }
            let mut unfused = fused.clone();
            phase_rx_all(&mut fused, op.values(), 0.41, 0.93);
            op.apply_phase(&mut unfused, 0.41);
            gates::rx_all(&mut unfused, 0.93);
            assert!(
                max_amp_diff(&fused, &unfused) < 1e-13,
                "n={n}: fused phase+mixer layer diverges"
            );
        }
    }

    #[test]
    fn fused_layers_preserve_norm() {
        let op = DiagonalOperator::from_fn(5, |z| z as f64);
        let mut psi = StateVector::uniform_superposition(5);
        for _ in 0..4 {
            phase_rx_all(&mut psi, op.values(), 0.9, 0.6);
        }
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_sweeps_are_bit_identical_to_serial() {
        // Chunking never changes per-element arithmetic, so even
        // parallel-vs-serial sweeps (not just different pool widths)
        // agree bit-for-bit; only reductions differ by grouping.
        for n in [2usize, 3, 5, 6, 8, 9] {
            let op = DiagonalOperator::from_fn(n, |z| z.count_ones() as f64 + 0.01 * z as f64);
            let mut serial = StateVector::uniform_superposition(n);
            for q in 0..n {
                gates::ry(&mut serial, q, 0.17 * (q + 1) as f64);
            }
            let pooled_src = serial.clone();
            phase_rx_all(&mut serial, op.values(), 0.41, 0.93);
            for threads in [1usize, 2, 4] {
                let exec = Executor::threaded_with_crossover(threads, 1);
                let mut pooled = pooled_src.clone();
                phase_rx_all_exec(&mut pooled, op.values(), 0.41, 0.93, &exec);
                assert_eq!(pooled, serial, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn below_crossover_threaded_executor_runs_serial() {
        let exec = Executor::threaded_with_crossover(4, 10);
        let mut a = StateVector::uniform_superposition(5);
        gates::ry(&mut a, 2, 0.4);
        let mut b = a.clone();
        rx_all(&mut a, 0.6);
        rx_all_exec(&mut b, 0.6, &exec);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "diagonal length")]
    fn phase_rx_all_rejects_wrong_table() {
        let mut psi = StateVector::uniform_superposition(3);
        phase_rx_all(&mut psi, &[0.0; 4], 0.1, 0.2);
    }
}
