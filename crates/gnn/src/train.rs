//! The §4.1 training loop.
//!
//! Per-graph (batch size 1) regression of normalized `(γ, β)` targets with
//! MSE loss, Adam, and the paper's ReduceLROnPlateau schedule monitoring the
//! training loss. Models train for 100 epochs before evaluation.

use qrand::rngs::StdRng;
use qrand::seq::SliceRandom;
use qrand::Rng;

use tensor::optim::{Adam, AdamState, Optimizer};
use tensor::sched::{PlateauState, ReduceLrOnPlateau};
use tensor::Matrix;

use crate::{GnnModel, GraphContext, WeightError};

/// One training example: a graph context and its normalized `(γ, β)` label.
#[derive(Debug, Clone)]
pub struct Example {
    /// Precomputed graph operands.
    pub context: GraphContext,
    /// Normalized target in `[0,1]²` (see [`crate::normalize_target`]).
    pub target: [f64; 2],
}

/// Training hyper-parameters; defaults follow §4.1.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs (paper: 100).
    pub epochs: usize,
    /// Initial Adam learning rate (the paper does not state it; 0.01 with
    /// the plateau schedule converges on all four architectures).
    pub learning_rate: f64,
    /// Shuffle examples every epoch.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            learning_rate: 0.01,
            shuffle: true,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for tests and CI-sized benches.
    pub fn quick(epochs: usize) -> Self {
        TrainConfig {
            epochs,
            ..TrainConfig::default()
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (from 0).
    pub epoch: usize,
    /// Mean training MSE over the epoch.
    pub train_loss: f64,
    /// Learning rate in effect during the epoch.
    pub learning_rate: f64,
}

/// A recorded training divergence: the epoch whose loss went non-finite.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceEvent {
    /// Epoch index at which the loss stopped being finite.
    pub epoch: usize,
    /// The offending loss value (NaN or ±∞).
    pub loss: f64,
}

/// The full training history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainHistory {
    /// One entry per *completed* (finite-loss) epoch.
    pub epochs: Vec<EpochStats>,
    /// Set when training halted early on a non-finite loss; the returned
    /// model holds the best finite-epoch parameters, not the diverged ones.
    pub diverged: Option<DivergenceEvent>,
}

impl TrainHistory {
    /// Final training loss, or `None` before any epoch ran.
    pub fn final_loss(&self) -> Option<f64> {
        self.epochs.last().map(|e| e.train_loss)
    }

    /// Best (lowest) finite training loss seen.
    pub fn best_loss(&self) -> Option<f64> {
        self.epochs
            .iter()
            .map(|e| e.train_loss)
            .filter(|l| l.is_finite())
            .min_by(f64::total_cmp)
    }
}

/// Trains `model` on `examples` and returns the history.
///
/// Divergence guard: the per-example loss is checked for finiteness
/// *before* its gradients are applied. The first non-finite loss halts
/// training, restores the best finite-epoch parameters (the initial
/// weights if no epoch completed), and records a [`DivergenceEvent`] in
/// the history — a diverged trajectory costs the run its remaining epochs,
/// never its model.
///
/// # Panics
///
/// Panics if `examples` is empty.
pub fn train<R: Rng + ?Sized>(
    model: &GnnModel,
    examples: &[Example],
    config: &TrainConfig,
    rng: &mut R,
) -> TrainHistory {
    assert!(!examples.is_empty(), "training set must be non-empty");
    let mut optimizer = Adam::new(config.learning_rate);
    let mut scheduler = ReduceLrOnPlateau::paper_default();
    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut history = TrainHistory::default();
    // Best-so-far weights, seeded with the initial ones so a divergence in
    // epoch 0 still leaves a usable (if untrained) model.
    let mut best: (f64, Vec<Matrix>) = (f64::INFINITY, model.snapshot());

    model.tape().set_training(true);
    for epoch in 0..config.epochs {
        if run_epoch(
            model,
            examples,
            config,
            &mut order,
            &mut optimizer,
            &mut scheduler,
            rng,
            epoch,
            &mut history,
            &mut best,
        ) {
            break;
        }
    }
    model.tape().reset();
    if history.diverged.is_some() {
        model.restore(&best.1);
    }
    model.tape().set_training(false);
    history
}

/// One epoch of the §4.1 loop, shared verbatim between [`train`] and
/// [`train_resumable`] so the two are bit-identical by construction: same
/// shuffle draw, same forward/backward order, same optimizer and scheduler
/// arithmetic. Returns `true` when the epoch diverged (recorded in
/// `history`); the caller stops training.
#[allow(clippy::too_many_arguments)]
fn run_epoch<R: Rng + ?Sized>(
    model: &GnnModel,
    examples: &[Example],
    config: &TrainConfig,
    order: &mut [usize],
    optimizer: &mut Adam,
    scheduler: &mut ReduceLrOnPlateau,
    rng: &mut R,
    epoch: usize,
    history: &mut TrainHistory,
    best: &mut (f64, Vec<Matrix>),
) -> bool {
    if config.shuffle {
        order.shuffle(rng);
    }
    let lr = optimizer.learning_rate();
    let mut total_loss = 0.0;
    for &i in order.iter() {
        let example = &examples[i];
        model.tape().reset();
        let out = model.forward(&example.context, rng);
        let target = Matrix::row_vector(&example.target);
        let loss = out.mse(&target);
        let loss_value = loss.value()[(0, 0)];
        if !loss_value.is_finite() {
            history.diverged = Some(DivergenceEvent {
                epoch,
                loss: loss_value,
            });
            return true;
        }
        total_loss += loss_value;
        model.tape().backward(&loss);
        optimizer.step(model.parameters());
    }
    model.tape().reset();
    let train_loss = total_loss / examples.len() as f64;
    scheduler.step(train_loss, optimizer);
    history.epochs.push(EpochStats {
        epoch,
        train_loss,
        learning_rate: lr,
    });
    if train_loss < best.0 {
        *best = (train_loss, model.snapshot());
    }
    false
}

/// Everything the training loop needs to continue from an epoch boundary:
/// the live parameters, both Adam moments and the step counter, the plateau
/// scheduler's streak, the divergence-guard best-finite snapshot, the exact
/// RNG stream position, the epoch permutation (the shuffle mutates it in
/// place across epochs), and the history so far.
///
/// Captured by [`train_resumable`] after each completed epoch and handed to
/// its `on_checkpoint` sink; feeding the state back as `resume` continues
/// the run bit-identically to one that was never interrupted.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Next epoch to run (= completed epoch count). Equals `config.epochs`
    /// in the final state.
    pub next_epoch: usize,
    /// True once training finished (all epochs done, or diverged and the
    /// best weights restored); resuming a done state is a no-op replay.
    pub done: bool,
    /// Live model parameters at the epoch boundary.
    pub params: Vec<Matrix>,
    /// Adam moments, step count, and (scheduler-reduced) learning rate.
    pub optimizer: AdamState,
    /// ReduceLROnPlateau best metric and bad-epoch streak.
    pub scheduler: PlateauState,
    /// Best finite train loss so far (`+∞` before the first epoch).
    pub best_loss: f64,
    /// Parameters at the best-loss epoch (the divergence-guard snapshot).
    pub best_params: Vec<Matrix>,
    /// Epoch example order; the per-epoch shuffle permutes the previous
    /// epoch's order, so the permutation itself is training state.
    pub order: Vec<usize>,
    /// xoshiro256** state words of the training RNG.
    pub rng_state: [u64; 4],
    /// Per-epoch stats (and any divergence event) accumulated so far.
    pub history: TrainHistory,
}

impl TrainState {
    /// Validates this state against a model and config before resuming:
    /// parameter/best/moment counts and shapes must match the architecture,
    /// the epoch cursor must lie inside the schedule, the permutation must
    /// cover the example range, and the RNG state must be legal. A foreign
    /// or corrupted checkpoint fails here — typed, without touching the
    /// model — so callers can fall back to a fresh start.
    ///
    /// # Errors
    ///
    /// [`WeightError::ParamCount`] / [`WeightError::ShapeMismatch`] for
    /// architecture conflicts, [`WeightError::BadConfig`] for everything
    /// else (epoch out of range, bad permutation, zero RNG state, …).
    pub fn compatible_with(
        &self,
        model: &GnnModel,
        config: &TrainConfig,
        num_examples: usize,
    ) -> Result<(), WeightError> {
        let shapes: Vec<(usize, usize)> =
            model.parameters().iter().map(|p| p.shape()).collect();
        for set in [&self.params, &self.best_params] {
            if set.len() != shapes.len() {
                return Err(WeightError::ParamCount {
                    expected: shapes.len(),
                    found: set.len(),
                });
            }
            for (index, (value, &expected)) in set.iter().zip(&shapes).enumerate() {
                if value.shape() != expected {
                    return Err(WeightError::ShapeMismatch {
                        index,
                        expected,
                        found: value.shape(),
                    });
                }
            }
        }
        for moments in [&self.optimizer.m, &self.optimizer.v] {
            for &(index, ref value) in moments {
                let Some(&expected) = shapes.get(index) else {
                    return Err(WeightError::BadConfig(format!(
                        "optimizer moment for parameter {index}, model has {}",
                        shapes.len()
                    )));
                };
                if value.shape() != expected {
                    return Err(WeightError::ShapeMismatch {
                        index,
                        expected,
                        found: value.shape(),
                    });
                }
            }
        }
        if self.next_epoch > config.epochs {
            return Err(WeightError::BadConfig(format!(
                "checkpoint is at epoch {} but the schedule has only {}",
                self.next_epoch, config.epochs
            )));
        }
        if !self.done && self.next_epoch != self.history.epochs.len() {
            return Err(WeightError::BadConfig(format!(
                "checkpoint epoch cursor {} disagrees with {} recorded epochs",
                self.next_epoch,
                self.history.epochs.len()
            )));
        }
        let mut seen = vec![false; num_examples];
        if self.order.len() != num_examples {
            return Err(WeightError::BadConfig(format!(
                "checkpoint permutation covers {} examples, dataset has {num_examples}",
                self.order.len()
            )));
        }
        for &i in &self.order {
            if i >= num_examples || seen[i] {
                return Err(WeightError::BadConfig(
                    "checkpoint permutation is not a permutation".into(),
                ));
            }
            seen[i] = true;
        }
        if self.rng_state.iter().all(|&w| w == 0) {
            return Err(WeightError::BadConfig(
                "checkpoint RNG state is all-zero".into(),
            ));
        }
        Ok(())
    }

    /// Captures the loop state at an epoch boundary.
    #[allow(clippy::too_many_arguments)]
    fn capture(
        next_epoch: usize,
        done: bool,
        model: &GnnModel,
        optimizer: &Adam,
        scheduler: &ReduceLrOnPlateau,
        best: &(f64, Vec<Matrix>),
        order: &[usize],
        rng: &StdRng,
        history: &TrainHistory,
    ) -> TrainState {
        TrainState {
            next_epoch,
            done,
            params: model.snapshot(),
            optimizer: optimizer.export_state(),
            scheduler: scheduler.export_state(),
            best_loss: best.0,
            best_params: best.1.clone(),
            order: order.to_vec(),
            rng_state: rng.state(),
            history: history.clone(),
        }
    }
}

/// [`train`] with epoch-granular checkpointing and kill-and-resume.
///
/// Runs the identical loop (same RNG draws, same floating-point op order),
/// but after every `checkpoint_every`-th completed epoch — and always once
/// more when training finishes — hands a [`TrainState`] to `on_checkpoint`.
/// Passing a state captured there back as `resume` continues the run from
/// that boundary; the concatenation of the two runs is bit-identical to an
/// uninterrupted [`train`] call with the same model, examples, config, and
/// RNG. Resuming a `done` state replays nothing: it restores the final
/// parameters and RNG position and returns the recorded history.
///
/// The caller owns durability: `on_checkpoint` is where a
/// `core::store::TrainCheckpoint` gets written. Its error aborts training
/// (the model keeps its current weights).
///
/// # Errors
///
/// Returns `InvalidData` if `resume` fails [`TrainState::compatible_with`]
/// (the model is left untouched), or whatever `on_checkpoint` returns.
///
/// # Panics
///
/// Panics if `examples` is empty or `checkpoint_every == 0`.
pub fn train_resumable(
    model: &GnnModel,
    examples: &[Example],
    config: &TrainConfig,
    rng: &mut StdRng,
    resume: Option<TrainState>,
    checkpoint_every: usize,
    mut on_checkpoint: impl FnMut(&TrainState) -> std::io::Result<()>,
) -> std::io::Result<TrainHistory> {
    assert!(!examples.is_empty(), "training set must be non-empty");
    assert!(checkpoint_every >= 1, "checkpoint stride must be positive");
    let invalid = |e: WeightError| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("incompatible training checkpoint: {e}"),
        )
    };

    let mut optimizer;
    let mut scheduler = ReduceLrOnPlateau::paper_default();
    let mut order: Vec<usize>;
    let mut history;
    let mut best: (f64, Vec<Matrix>);
    let start_epoch;
    match resume {
        Some(state) => {
            state
                .compatible_with(model, config, examples.len())
                .map_err(invalid)?;
            if state.done {
                model.try_restore(&state.params).map_err(invalid)?;
                *rng = StdRng::from_state(state.rng_state);
                return Ok(state.history);
            }
            model.try_restore(&state.params).map_err(invalid)?;
            optimizer = Adam::from_state(&state.optimizer);
            scheduler.import_state(&state.scheduler);
            order = state.order;
            history = state.history;
            best = (state.best_loss, state.best_params);
            *rng = StdRng::from_state(state.rng_state);
            start_epoch = state.next_epoch;
        }
        None => {
            optimizer = Adam::new(config.learning_rate);
            order = (0..examples.len()).collect();
            history = TrainHistory::default();
            best = (f64::INFINITY, model.snapshot());
            start_epoch = 0;
        }
    }

    model.tape().set_training(true);
    for epoch in start_epoch..config.epochs {
        let diverged = run_epoch(
            model,
            examples,
            config,
            &mut order,
            &mut optimizer,
            &mut scheduler,
            rng,
            epoch,
            &mut history,
            &mut best,
        );
        if diverged {
            break;
        }
        let completed = epoch + 1;
        if completed < config.epochs && completed % checkpoint_every == 0 {
            let state = TrainState::capture(
                completed, false, model, &optimizer, &scheduler, &best, &order, rng, &history,
            );
            if let Err(e) = on_checkpoint(&state) {
                model.tape().reset();
                model.tape().set_training(false);
                return Err(e);
            }
        }
    }
    model.tape().reset();
    if history.diverged.is_some() {
        model.restore(&best.1);
    }
    model.tape().set_training(false);
    let final_state = TrainState::capture(
        config.epochs,
        true,
        model,
        &optimizer,
        &scheduler,
        &best,
        &order,
        rng,
        &history,
    );
    on_checkpoint(&final_state)?;
    Ok(history)
}

/// Mean MSE of the model's (normalized) predictions over a labeled set,
/// with dropout disabled.
///
/// # Panics
///
/// Panics if `examples` is empty.
pub fn evaluate(model: &GnnModel, examples: &[Example]) -> f64 {
    assert!(!examples.is_empty(), "evaluation set must be non-empty");
    let total: f64 = examples
        .iter()
        .map(|ex| {
            let (gamma, beta) = model.predict_ctx(&ex.context);
            let predicted = crate::normalize_target(gamma, beta);
            let d0 = predicted[0] - ex.target[0];
            let d1 = predicted[1] - ex.target[1];
            (d0 * d0 + d1 * d1) / 2.0
        })
        .sum();
    total / examples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GnnKind, ModelConfig};
    use qgraph::features::FeatureConfig;
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn toy_dataset() -> Vec<Example> {
        // Cycles map to one target, stars to another: learnable from
        // degree features alone.
        let mut examples = Vec::new();
        for n in 4..=9 {
            let g = Graph::cycle(n).unwrap();
            examples.push(Example {
                context: GraphContext::new(&g, &FeatureConfig::default(), 0.0),
                target: [0.2, 0.8],
            });
            let g = Graph::star(n).unwrap();
            examples.push(Example {
                context: GraphContext::new(&g, &FeatureConfig::default(), 0.0),
                target: [0.7, 0.3],
            });
        }
        examples
    }

    #[test]
    fn training_reduces_loss_for_every_architecture() {
        let data = toy_dataset();
        for &kind in &GnnKind::ALL {
            let mut rng = StdRng::seed_from_u64(101);
            let config = ModelConfig {
                dropout: 0.0, // deterministic toy check
                hidden_dim: 16,
                ..ModelConfig::default()
            };
            let model = GnnModel::new(kind, config, &mut rng);
            let history = train(&model, &data, &TrainConfig::quick(30), &mut rng);
            let first = history.epochs.first().unwrap().train_loss;
            let last = history.final_loss().unwrap();
            assert!(
                last < first * 0.8,
                "{kind:?}: loss {first} -> {last} did not improve"
            );
        }
    }

    #[test]
    fn trained_model_separates_the_two_classes() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(102);
        let config = ModelConfig {
            dropout: 0.0,
            hidden_dim: 16,
            ..ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gin, config, &mut rng);
        train(&model, &data, &TrainConfig::quick(60), &mut rng);
        // Held-out sizes.
        let cycle = Graph::cycle(10).unwrap();
        let star = Graph::star(10).unwrap();
        let (gc, _) = model.predict(&cycle);
        let (gs, _) = model.predict(&star);
        let nc = crate::normalize_target(gc, 0.0)[0];
        let ns = crate::normalize_target(gs, 0.0)[0];
        assert!(
            nc < ns,
            "cycle gamma ({nc}) should be below star gamma ({ns})"
        );
    }

    #[test]
    fn evaluate_is_zero_for_perfect_labels() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(103);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        // Self-labeling: evaluate against the model's own predictions.
        let self_labeled: Vec<Example> = data
            .iter()
            .map(|ex| {
                let (g, b) = model.predict_ctx(&ex.context);
                Example {
                    context: ex.context.clone(),
                    target: crate::normalize_target(g, b),
                }
            })
            .collect();
        assert!(evaluate(&model, &self_labeled) < 1e-18);
    }

    #[test]
    fn scheduler_reduces_learning_rate_on_plateau() {
        // Constant targets equal to the sigmoid's saturated region make
        // progress stall quickly; the recorded learning rate must drop.
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(104);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let history = train(&model, &data, &TrainConfig::quick(60), &mut rng);
        let first_lr = history.epochs.first().unwrap().learning_rate;
        let last_lr = history.epochs.last().unwrap().learning_rate;
        assert!(last_lr <= first_lr);
    }

    #[test]
    fn history_accessors() {
        let h = TrainHistory {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 0.5,
                    learning_rate: 0.01,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.2,
                    learning_rate: 0.01,
                },
            ],
            diverged: None,
        };
        assert_eq!(h.final_loss(), Some(0.2));
        assert_eq!(h.best_loss(), Some(0.2));
        assert_eq!(TrainHistory::default().final_loss(), None);
    }

    #[test]
    fn best_loss_ignores_non_finite_epochs() {
        let stats = |epoch, train_loss| EpochStats {
            epoch,
            train_loss,
            learning_rate: 0.01,
        };
        let h = TrainHistory {
            epochs: vec![stats(0, 0.4), stats(1, f64::NAN), stats(2, 0.3)],
            diverged: None,
        };
        assert_eq!(h.best_loss(), Some(0.3));
        let all_nan = TrainHistory {
            epochs: vec![stats(0, f64::NAN)],
            diverged: None,
        };
        assert_eq!(all_nan.best_loss(), None);
    }

    #[test]
    fn nan_target_halts_training_and_restores_weights() {
        // A poisoned label makes the very first loss NaN: training must
        // stop, record the divergence, and leave the model with its
        // pre-training (best finite) weights instead of NaN-soaked ones.
        let mut data = toy_dataset();
        data[0].target = [f64::NAN, 0.5];
        let mut rng = StdRng::seed_from_u64(106);
        let config = ModelConfig {
            dropout: 0.0,
            hidden_dim: 16,
            ..ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
        let g = Graph::cycle(10).unwrap();
        let before = model.predict(&g);
        let history = train(
            &model,
            &data,
            &TrainConfig {
                shuffle: false, // poisoned example is hit first
                ..TrainConfig::quick(20)
            },
            &mut rng,
        );
        let event = history.diverged.expect("divergence must be recorded");
        assert_eq!(event.epoch, 0);
        assert!(event.loss.is_nan());
        assert!(history.epochs.is_empty(), "no epoch completed");
        assert_eq!(model.predict(&g), before, "weights restored to initial");
    }

    #[test]
    fn infinite_loss_halts_with_infinite_event_loss() {
        // A target beyond ±1.3e154 makes (out − target)² overflow to +∞:
        // the squared-error path to divergence, distinct from NaN.
        let mut data = toy_dataset();
        let last = data.len() - 1;
        data[last].target = [1e155, 0.5];
        let mut rng = StdRng::seed_from_u64(107);
        let config = ModelConfig {
            dropout: 0.0,
            hidden_dim: 16,
            ..ModelConfig::default()
        };
        let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
        let history = train(
            &model,
            &data,
            &TrainConfig {
                shuffle: false, // poisoned example is hit last in epoch 0
                ..TrainConfig::quick(20)
            },
            &mut rng,
        );
        let event = history.diverged.expect("overflowed loss must diverge");
        assert_eq!(event.epoch, 0);
        assert_eq!(event.loss, f64::INFINITY);
        let g = Graph::cycle(10).unwrap();
        let (gamma, beta) = model.predict(&g);
        assert!(gamma.is_finite() && beta.is_finite());
        for e in &history.epochs {
            assert!(e.train_loss.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_training_set_rejected() {
        let mut rng = StdRng::seed_from_u64(105);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let _ = train(&model, &[], &TrainConfig::default(), &mut rng);
    }

    /// Bits of every parameter, for exact model comparison.
    fn param_bits(model: &GnnModel) -> Vec<u64> {
        model
            .snapshot()
            .iter()
            .flat_map(|m| {
                let mut bits = Vec::with_capacity(m.rows() * m.cols());
                for r in 0..m.rows() {
                    for c in 0..m.cols() {
                        bits.push(m[(r, c)].to_bits());
                    }
                }
                bits
            })
            .collect()
    }

    /// With no resume state and a discarding sink, `train_resumable` is the
    /// same computation as `train`: identical history and identical final
    /// parameter bits (dropout on, so the RNG stream is exercised too).
    #[test]
    fn resumable_with_no_interruption_matches_train() {
        let data = toy_dataset();
        let config = TrainConfig::quick(8);
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng)
        };

        let model_a = mk(200);
        let mut rng_a = StdRng::seed_from_u64(201);
        let history_a = train(&model_a, &data, &config, &mut rng_a);

        let model_b = mk(200);
        let mut rng_b = StdRng::seed_from_u64(201);
        let history_b =
            train_resumable(&model_b, &data, &config, &mut rng_b, None, 1, |_| Ok(()))
                .unwrap();

        assert_eq!(history_a, history_b);
        assert_eq!(param_bits(&model_a), param_bits(&model_b));
        assert_eq!(rng_a, rng_b, "RNG must end at the same stream position");
    }

    /// Kill-and-resume from *every* epoch boundary reproduces the
    /// uninterrupted run bit-for-bit: history, parameters, and the RNG
    /// position all match.
    #[test]
    fn resume_from_any_epoch_boundary_is_bit_identical() {
        let data = toy_dataset();
        let config = TrainConfig::quick(6);
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            GnnModel::new(GnnKind::Gat, ModelConfig::default(), &mut rng)
        };

        // Control: uninterrupted, collecting every checkpoint state.
        let control = mk(210);
        let mut control_rng = StdRng::seed_from_u64(211);
        let mut states: Vec<TrainState> = Vec::new();
        let control_history = train_resumable(
            &control,
            &data,
            &config,
            &mut control_rng,
            None,
            1,
            |s| {
                states.push(s.clone());
                Ok(())
            },
        )
        .unwrap();
        // 5 mid-run boundaries (epochs 1..=5) plus the final done state.
        assert_eq!(states.len(), config.epochs);
        assert!(states.last().unwrap().done);
        let control_bits = param_bits(&control);

        for state in &states {
            let resumed = mk(210);
            // Deliberately wrong seed: resume must overwrite the stream.
            let mut rng = StdRng::seed_from_u64(999);
            let history = train_resumable(
                &resumed,
                &data,
                &config,
                &mut rng,
                Some(state.clone()),
                1,
                |_| Ok(()),
            )
            .unwrap();
            assert_eq!(
                history, control_history,
                "resume from epoch {} diverged",
                state.next_epoch
            );
            assert_eq!(
                param_bits(&resumed),
                control_bits,
                "parameters diverged resuming from epoch {}",
                state.next_epoch
            );
            assert_eq!(rng, control_rng, "RNG diverged from epoch {}", state.next_epoch);
        }
    }

    /// The checkpoint stride is honored: with `checkpoint_every = 2` only
    /// even epoch boundaries (plus the final state) reach the sink.
    #[test]
    fn checkpoint_stride_skips_boundaries() {
        let data = toy_dataset();
        let config = TrainConfig::quick(5);
        let mut rng = StdRng::seed_from_u64(220);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let mut cursors = Vec::new();
        let _ = train_resumable(&model, &data, &config, &mut rng, None, 2, |s| {
            cursors.push((s.next_epoch, s.done));
            Ok(())
        })
        .unwrap();
        assert_eq!(cursors, vec![(2, false), (4, false), (5, true)]);
    }

    /// A foreign state (different architecture) is rejected with a typed
    /// error before any parameter is touched.
    #[test]
    fn incompatible_resume_state_is_rejected_cleanly() {
        let data = toy_dataset();
        let config = TrainConfig::quick(3);
        let mut rng = StdRng::seed_from_u64(230);
        let gin = GnnModel::new(GnnKind::Gin, ModelConfig::default(), &mut rng);
        let mut state_sink = None;
        let _ = train_resumable(&gin, &data, &config, &mut rng, None, 1, |s| {
            state_sink = Some(s.clone());
            Ok(())
        })
        .unwrap();
        let foreign = state_sink.unwrap();

        let mut rng = StdRng::seed_from_u64(231);
        let gcn = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let before = param_bits(&gcn);
        let err = train_resumable(
            &gcn,
            &data,
            &config,
            &mut rng,
            Some(foreign.clone()),
            1,
            |_| Ok(()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert_eq!(param_bits(&gcn), before, "rejection must not mutate");

        // compatible_with also flags a too-short schedule and a truncated
        // permutation.
        assert!(foreign
            .compatible_with(&gin, &TrainConfig::quick(2), data.len())
            .is_err());
        assert!(foreign
            .compatible_with(&gin, &config, data.len() - 1)
            .is_err());
        assert!(foreign.compatible_with(&gin, &config, data.len()).is_ok());
    }

    /// Resuming a `done` state replays nothing and restores everything.
    #[test]
    fn resuming_done_state_restores_and_returns() {
        let data = toy_dataset();
        let config = TrainConfig::quick(4);
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            GnnModel::new(GnnKind::Sage, ModelConfig::default(), &mut rng)
        };
        let control = mk(240);
        let mut control_rng = StdRng::seed_from_u64(241);
        let mut last = None;
        let history = train_resumable(&control, &data, &config, &mut control_rng, None, 1, |s| {
            last = Some(s.clone());
            Ok(())
        })
        .unwrap();
        let done = last.unwrap();
        assert!(done.done);

        let resumed = mk(240);
        let mut rng = StdRng::seed_from_u64(999);
        let replayed = train_resumable(
            &resumed,
            &data,
            &config,
            &mut rng,
            Some(done),
            1,
            |_| panic!("done state must not re-checkpoint"),
        )
        .unwrap();
        assert_eq!(replayed, history);
        assert_eq!(param_bits(&resumed), param_bits(&control));
        assert_eq!(rng, control_rng);
    }

    /// A failing checkpoint sink aborts training with its error and leaves
    /// the model usable (training flag off, tape clean).
    #[test]
    fn checkpoint_sink_error_aborts_training() {
        let data = toy_dataset();
        let mut rng = StdRng::seed_from_u64(250);
        let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
        let err = train_resumable(
            &model,
            &data,
            &TrainConfig::quick(4),
            &mut rng,
            None,
            1,
            |_| Err(std::io::Error::other("disk full")),
        )
        .unwrap_err();
        assert_eq!(err.to_string(), "disk full");
        let g = Graph::cycle(6).unwrap();
        let (gamma, beta) = model.predict(&g);
        assert!(gamma.is_finite() && beta.is_finite());
    }
}
