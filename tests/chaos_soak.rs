//! The deterministic chaos-soak harness: a seeded [`FaultSchedule`] is
//! armed process-wide and a single driver pushes a numbered request
//! stream through a live [`ServeLoop`] while workers are killed, the GNN
//! rung is poisoned (tripping the circuit breaker), hot-swaps are
//! refused, admissions error, and persistence hiccups — all scripted as
//! pure functions of one seed. The invariants under fire:
//!
//! - **Exactly once**: every submitted ticket resolves with exactly one
//!   reply; `stats().total()` equals the submission count; nothing is
//!   dropped or double-answered (a double answer would panic the reply
//!   channel).
//! - **Census restored**: after every worker kill the supervisor respawns
//!   the pool back to its target before the run ends.
//! - **Breaker bounded**: the poison storm trips the breaker Open within
//!   its failure window, open-state requests are answered model-free
//!   (`SkipReason::BreakerOpen`, fixed cost), and the clean tail re-closes
//!   it within cooldown + probe requests — all counted in requests, never
//!   wall time.
//! - **Bit-identical**: two runs of the same seed produce the same
//!   outcome fingerprints (rung, skips, angle bits, generation, envelope,
//!   verification bits), the same counters, and the same fault firings.
//!
//! Every test here arms a schedule (possibly empty) to hold the
//! process-wide fault lock: scheduled faults fire on *any* tagged thread,
//! so chaos tests must never overlap another loop's workers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::train::TrainHistory;
use gnn::{GnnKind, GnnModel};
use qaoa_gnn::dataset::LabelReport;
use qaoa_gnn::faults::{self, FaultAction, FaultSchedule, ScheduledFault};
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn::serve_loop::{Completed, LoopConfig, ServeLoop};
use qaoa_gnn::{
    BreakerConfig, BreakerState, Health, HealthReason, Json, Rung, RunArtifact, ServeRequest,
    ToJson, TrainingEnvelope,
};
use qgraph::Graph;

/// Same cheap fixture as `tests/serve_loop.rs`: valid weights seeded by
/// `seed`, wide envelope.
fn artifact(seed: u64) -> RunArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = gnn::ModelConfig {
        hidden_dim: 4,
        ..gnn::ModelConfig::default()
    };
    let model = GnnModel::new(GnnKind::Gcn, config, &mut rng);
    RunArtifact {
        config: PipelineConfig::quick(),
        weights: model.export_weights(),
        history: TrainHistory::default(),
        label_report: LabelReport::clean(1),
        dataset_fingerprint: seed,
        envelope: Some(TrainingEnvelope {
            min_nodes: 2,
            max_nodes: 15,
            max_degree: 14,
            feature_dim: 16,
            mean_gamma: 1.0,
            mean_beta: 0.5,
        }),
    }
}

/// A breaker sized for request-count tests: trips after 4 failures in a
/// window of 8, recovers within ~cooldown(8)+2·probe_interval(2) clean
/// requests.
fn tight_breaker() -> BreakerConfig {
    BreakerConfig::default()
        .with_window(8)
        .with_min_samples(4)
        .with_failure_threshold(0.5)
        .with_cooldown(8)
        .with_max_cooldown(32)
        .with_probe_interval(2)
        .with_probe_successes(2)
}

fn chaos_loop(seed: u64) -> ServeLoop {
    ServeLoop::new(
        artifact(seed),
        LoopConfig::default()
            .with_workers(2)
            .with_queue_capacity(64)
            .with_shed_watermark(64)
            .with_batch_size(4)
            .with_breaker(tight_breaker()),
    )
}

/// Everything observable about one reply that must be bit-identical
/// across runs of the same seed — provenance and payload, never timing.
fn fingerprint(index: u64, done: &Completed) -> String {
    match &done.response.result {
        Ok(outcome) => {
            let (gamma, beta) = outcome.angles();
            format!(
                "{index} g{} rung={:?} skips={:?} env={:?} clamped={} score={:?} γ={:016x} β={:016x}",
                done.generation,
                outcome.rung,
                outcome.skips,
                outcome.envelope,
                outcome.clamped,
                outcome.verified_score.map(f64::to_bits),
                gamma.to_bits(),
                beta.to_bits(),
            )
        }
        Err(error) => format!("{index} g{} err={error:?}", done.generation),
    }
}

/// Blocks until the supervisor restores the worker census (bounded).
fn await_census(serve: &ServeLoop) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let m = serve.metrics();
        if m.workers_alive == m.workers_target {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "census not restored: {}/{} alive",
            m.workers_alive,
            m.workers_target
        );
        std::thread::yield_now();
    }
}

/// The replayable subset of [`qaoa_gnn::LoopMetrics`]: counters that are
/// pure functions of the seed, excluding racy gauges (queue depth, live
/// census) and wall-clock artifacts.
fn counter_digest(serve: &ServeLoop) -> String {
    let m = serve.metrics();
    format!(
        "served={} shed={} rejected={} breaker_open={} trips={} swaps={} gen={} respawns={} gnn={} fixed={} fallback={}",
        m.served,
        m.shed,
        m.rejected,
        m.breaker_open_served,
        m.breaker_trips,
        m.swaps,
        m.generation,
        m.respawns,
        m.rung_gnn,
        m.rung_fixed,
        m.rung_fallback,
    )
}

struct SoakRun {
    fingerprints: Vec<String>,
    counters: String,
    fired: u64,
    kills: u64,
}

/// One full soak: arm the seeded schedule, drive `requests` numbered
/// requests sequentially (submit → wait, so the request clock is total),
/// hot-swap once mid-stream, and exercise the persistence failpoints at a
/// tagged index. Returns everything that must replay bit-for-bit.
fn run_soak(seed: u64, requests: u64, tag: &str) -> SoakRun {
    let schedule = FaultSchedule::from_seed(seed, requests);
    let kills = schedule
        .entries
        .iter()
        .filter(|e| e.failpoint == faults::WORKER)
        .map(|e| e.budget)
        .sum();
    let guard = faults::arm_schedule(schedule);
    let serve = chaos_loop(seed);
    let mut fingerprints = Vec::with_capacity(requests as usize + 2);
    for i in 0..requests {
        let n = 3 + (i % 10) as usize;
        let done = serve
            .submit(ServeRequest::from_graph(Graph::cycle(n).unwrap()))
            .wait();
        fingerprints.push(fingerprint(i, &done));
        if i == requests / 2 {
            // Mid-stream hot swap; lands inside the schedule's HOT_SWAP
            // window or not as a pure function of the seed.
            let swap = serve.swap_artifact(artifact(seed ^ 1));
            fingerprints.push(format!("swap@{i} -> {swap:?}"));
        }
        if i == requests / 3 {
            // Persistence under chaos: the driver thread is tagged with
            // request index `i` (the tag lingers past submit by design),
            // so ARTIFACT_LOAD / JOURNAL_IO windows covering `i` fire
            // here. Panics are contained; only the outcome kind is
            // recorded (paths and io text are not replayable).
            let dir = std::env::temp_dir().join(format!("qaoa-chaos-{seed}-{tag}"));
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join("artifact.json");
            let saved = catch_unwind(AssertUnwindSafe(|| {
                artifact(seed).save(&path).map_err(|_| "io")
            }));
            let loaded = catch_unwind(AssertUnwindSafe(|| {
                RunArtifact::load(&path).map(|_| ()).map_err(|_| "load")
            }));
            fingerprints.push(format!(
                "persist@{i} save={} load={}",
                match &saved {
                    Ok(Ok(())) => "ok",
                    Ok(Err(_)) => "err",
                    Err(_) => "panic",
                },
                match &loaded {
                    Ok(Ok(())) => "ok",
                    Ok(Err(_)) => "err",
                    Err(_) => "panic",
                },
            ));
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    // The tail of the schedule is clean: the loop must end recovered.
    await_census(&serve);
    let stats = serve.stats();
    assert_eq!(
        stats.total(),
        requests,
        "exactly-once violated: {} answers for {requests} submissions",
        stats.total()
    );
    let fired = guard.fired();
    SoakRun {
        fingerprints,
        counters: counter_digest(&serve),
        fired,
        kills,
    }
}

// ------------------------------------------------------------- the soak

/// The headline test: two runs of the same seed, every invariant, and a
/// bit-identical replay.
#[test]
fn chaos_soak_answers_exactly_once_and_replays_bit_identically() {
    const SEED: u64 = 42;
    const REQUESTS: u64 = 400;
    let first = run_soak(SEED, REQUESTS, "a");
    let second = run_soak(SEED, REQUESTS, "b");

    // Bit-identical replay: same fingerprints in the same order, same
    // counters, same number of scheduled firings.
    assert_eq!(first.fingerprints.len(), second.fingerprints.len());
    for (i, (a, b)) in first
        .fingerprints
        .iter()
        .zip(&second.fingerprints)
        .enumerate()
    {
        assert_eq!(a, b, "replay diverged at entry {i}");
    }
    assert_eq!(first.counters, second.counters, "counters diverged");
    assert_eq!(first.fired, second.fired, "fault firings diverged");

    // The schedule actually did damage (seed 42 is empirically violent:
    // worker kills fire and the FORWARD storm trips the breaker).
    assert!(first.fired > 0, "schedule never fired");
    assert!(first.kills >= 3, "seed 42 must script >= 3 worker kills");
    assert!(
        first.counters.contains("respawns=")
            && !first.counters.contains("respawns=0 "),
        "worker kills must force respawns: {}",
        first.counters
    );
    assert!(
        !first.counters.contains("trips=0 "),
        "the poison storm must trip the breaker: {}",
        first.counters
    );
    assert!(
        !first.counters.contains("breaker_open=0 "),
        "open-state requests must be answered model-free: {}",
        first.counters
    );
}

/// The clean tail guarantees the soak ends *recovered*, not merely done:
/// census full, breaker closed, health Ready.
#[test]
fn chaos_soak_ends_recovered() {
    let schedule = FaultSchedule::from_seed(42, 400);
    let _guard = faults::arm_schedule(schedule);
    let serve = chaos_loop(42);
    for i in 0..400u64 {
        let n = 3 + (i % 10) as usize;
        let done = serve
            .submit(ServeRequest::from_graph(Graph::cycle(n).unwrap()))
            .wait();
        assert!(
            done.response.result.is_ok() || i < 320,
            "the clean tail (last 20%) must serve outcomes, got {:?} at {i}",
            done.response.result
        );
    }
    await_census(&serve);
    let metrics = serve.metrics();
    assert_eq!(
        metrics.breaker_state,
        BreakerState::Closed,
        "breaker must re-close in the clean tail"
    );
    let health = serve.health();
    assert_eq!(
        health.state,
        Health::Ready,
        "loop must end Ready, reasons: {:?}",
        health.reasons
    );
    assert_eq!(metrics.workers_alive, metrics.workers_target);
}

// ----------------------------------------------------- focused scenarios

/// One scripted kill: the in-flight request is requeued and answered
/// (exactly once), and the supervisor restores the census.
#[test]
fn worker_kill_requeues_in_flight_and_census_recovers() {
    let schedule = FaultSchedule::new().push(ScheduledFault {
        failpoint: faults::WORKER,
        action: FaultAction::Panic,
        from_index: 2,
        to_index: 3,
        budget: 1,
    });
    let guard = faults::arm_schedule(schedule);
    let serve = chaos_loop(7001);
    for i in 0..20u64 {
        let done = serve
            .submit(ServeRequest::from_graph(Graph::cycle(5).unwrap()))
            .wait();
        let outcome = done.response.result.expect("every request answered");
        let (gamma, beta) = outcome.angles();
        assert!(gamma.is_finite() && beta.is_finite(), "bad angles at {i}");
    }
    assert_eq!(guard.fired(), 1, "the kill window must fire exactly once");
    await_census(&serve);
    let metrics = serve.metrics();
    assert_eq!(serve.stats().total(), 20);
    assert!(metrics.respawns >= 1, "supervisor must respawn the victim");
    assert_eq!(metrics.workers_alive, metrics.workers_target);
}

/// The breaker lifecycle in request counts: a poison window trips it
/// Open, open-state requests serve model-free via `BreakerOpen`, and the
/// clean stream after the window re-closes it within cooldown + probes.
#[test]
fn breaker_trips_serves_model_free_then_recovers() {
    let schedule = FaultSchedule::new().push(ScheduledFault {
        failpoint: faults::FORWARD,
        action: FaultAction::Panic,
        from_index: 0,
        to_index: 8,
        budget: 8,
    });
    let _guard = faults::arm_schedule(schedule);
    let serve = chaos_loop(7101);
    let mut breaker_open_seen = false;
    let mut recovered_at = None;
    for i in 0..64u64 {
        let done = serve
            .submit(ServeRequest::from_graph(Graph::cycle(6).unwrap()))
            .wait();
        let outcome = done.response.result.expect("answered");
        if outcome.was_breaker_skipped() {
            breaker_open_seen = true;
            // Open-state answers are the fixed-angle shed answer: cheap,
            // valid, honestly attributed.
            assert_ne!(outcome.rung, Rung::Gnn);
        }
        if recovered_at.is_none()
            && i >= 8
            && outcome.rung == Rung::Gnn
            && serve.metrics().breaker_state == BreakerState::Closed
        {
            recovered_at = Some(i);
        }
    }
    let metrics = serve.metrics();
    assert!(metrics.breaker_trips >= 1, "4 failures in window 8 must trip");
    assert!(breaker_open_seen, "open state must answer via BreakerOpen");
    assert!(metrics.breaker_open_served >= 1);
    let recovered_at = recovered_at.expect("breaker must re-close within the run");
    // Bounded recovery: poison ends at 8; worst case is one re-trip
    // cascade within max_cooldown(32) + probes — far inside 64.
    assert!(
        recovered_at < 56,
        "recovery took until request {recovered_at}, not bounded"
    );
    assert_eq!(metrics.breaker_state, BreakerState::Closed);
}

/// Publishing a fresh artifact resets the breaker: the new generation
/// starts Closed instead of inheriting the dead model's Open state.
#[test]
fn hot_swap_resets_breaker_to_closed() {
    let schedule = FaultSchedule::new().push(ScheduledFault {
        failpoint: faults::FORWARD,
        action: FaultAction::Panic,
        from_index: 0,
        to_index: 8,
        budget: 8,
    });
    let _guard = faults::arm_schedule(schedule);
    let serve = chaos_loop(7201);
    for _ in 0..8u64 {
        serve
            .submit(ServeRequest::from_graph(Graph::cycle(6).unwrap()))
            .wait();
    }
    assert_ne!(
        serve.metrics().breaker_state,
        BreakerState::Closed,
        "poison must have tripped the breaker"
    );
    let health = serve.health();
    assert_eq!(health.state, Health::Degraded);
    assert!(
        health
            .reasons
            .iter()
            .any(|r| matches!(r, HealthReason::BreakerTripped(_))),
        "degradation must name the breaker: {:?}",
        health.reasons
    );
    // Swap in a fresh artifact (the poison window is spent): breaker
    // resets immediately and the GNN rung serves again.
    assert_eq!(serve.swap_artifact(artifact(7301)).expect("swap"), 1);
    assert_eq!(serve.metrics().breaker_state, BreakerState::Closed);
    let done = serve
        .submit(ServeRequest::from_graph(Graph::cycle(6).unwrap()))
        .wait();
    assert_eq!(done.generation, 1);
    assert_eq!(done.response.result.unwrap().rung, Rung::Gnn);
}

/// Health attribution for a structurally dead model: Degraded with
/// `ModelUnavailable`, while a healthy loop reports Ready.
#[test]
fn health_names_model_unavailable_for_headless_artifact() {
    let _guard = faults::arm_schedule(FaultSchedule::new());
    let mut headless = artifact(7401);
    headless.weights.params.pop();
    let serve = ServeLoop::new(
        headless,
        LoopConfig::default().with_workers(1).with_batch_size(4),
    );
    let done = serve
        .submit(ServeRequest::from_graph(Graph::cycle(6).unwrap()))
        .wait();
    assert_ne!(done.response.result.unwrap().rung, Rung::Gnn);
    let health = serve.health();
    assert_eq!(health.state, Health::Degraded);
    assert!(
        health
            .reasons
            .iter()
            .any(|r| matches!(r, HealthReason::ModelUnavailable)),
        "must name the dead model: {:?}",
        health.reasons
    );
    // A healthy loop with traffic reports Ready.
    let healthy = chaos_loop(7501);
    healthy
        .submit(ServeRequest::from_graph(Graph::cycle(6).unwrap()))
        .wait();
    assert_eq!(healthy.health().state, Health::Ready);
}

/// `wait_timeout` is the caller-side seatbelt: a timeout hands the live
/// ticket back (reply guarantee intact), and a resolved ticket returns
/// immediately.
#[test]
fn wait_timeout_returns_live_ticket_on_timeout() {
    let _guard = faults::arm_schedule(FaultSchedule::new());
    let serve = ServeLoop::new(
        artifact(7601),
        LoopConfig::default()
            .with_workers(1)
            .with_queue_capacity(256)
            .with_shed_watermark(256)
            .with_batch_size(4),
    );
    // Pile slow work in front so the probe request cannot resolve
    // instantly.
    let patient: Vec<_> = (0..24)
        .map(|_| serve.submit(ServeRequest::from_graph(Graph::cycle(12).unwrap())))
        .collect();
    let probe = serve.submit(ServeRequest::from_graph(Graph::cycle(4).unwrap()));
    let timed_out = probe
        .wait_timeout(Duration::ZERO)
        .expect_err("zero timeout behind a full queue must time out");
    assert_eq!(timed_out.waited, Duration::ZERO);
    let text = timed_out.to_string();
    assert!(text.contains("still live"), "Display must reassure: {text}");
    // The returned ticket is still live: waiting again resolves it.
    let done = timed_out.ticket.wait();
    assert!(done.response.result.is_ok());
    for ticket in patient {
        assert!(ticket.wait().response.result.is_ok());
    }
    assert_eq!(serve.stats().total(), 25, "timeout must not double-answer");
}

/// The metrics snapshot serializes via `core::json` and parses back with
/// the counters intact — the bench bin and dashboards consume this.
#[test]
fn metrics_snapshot_round_trips_through_json() {
    let _guard = faults::arm_schedule(FaultSchedule::new());
    let serve = chaos_loop(7701);
    for _ in 0..5 {
        serve
            .submit(ServeRequest::from_graph(Graph::cycle(6).unwrap()))
            .wait();
    }
    let metrics = serve.metrics();
    let text = metrics.to_json().to_pretty();
    let parsed = Json::parse(&text).expect("metrics JSON must parse");
    assert_eq!(parsed.get("served").unwrap().as_u64().unwrap(), 5);
    assert_eq!(
        parsed.get("breaker_state").unwrap().as_str().unwrap(),
        "closed"
    );
    assert_eq!(parsed.get("health").unwrap().as_str().unwrap(), "ready");
    assert_eq!(
        parsed.get("workers_target").unwrap().as_u64().unwrap(),
        2
    );
}
