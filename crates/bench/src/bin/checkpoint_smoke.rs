//! CI smoke test for the checkpoint/resume path: label a small batch with
//! journaling, simulate a mid-run kill by truncating the journal to half
//! its records (plus a torn partial line), resume, and diff the result
//! against the straight-through run. Exits non-zero on any mismatch.
//!
//! ```text
//! cargo run --release -p qaoa-gnn-bench --bin checkpoint_smoke
//! ```

use std::fs;
use std::process::ExitCode;

use qaoa_gnn::dataset::LabelConfig;
use qaoa_gnn::store::JOURNAL_FILE;
use qaoa_gnn::Dataset;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

fn main() -> ExitCode {
    let seed = 2024;
    let count = 12;
    let config = LabelConfig::quick(40);
    let mut rng = StdRng::seed_from_u64(seed);
    let graphs: Vec<_> = (0..count)
        .map(|i| {
            qgraph::generate::erdos_renyi(5 + i % 4, 0.5, &mut rng).expect("generate graph")
        })
        .collect();

    println!("straight-through: labeling {count} graphs...");
    let (reference, report) = Dataset::label_graphs_checked(&graphs, &config, seed);
    if !report.is_complete() {
        eprintln!("FAIL: straight-through labeling lost graphs: {:?}", report.unrecovered());
        return ExitCode::FAILURE;
    }

    let dir = std::env::temp_dir().join("qaoa_gnn_checkpoint_smoke");
    let _ = fs::remove_dir_all(&dir);

    println!("journaled: labeling into {}...", dir.display());
    let (full, _) = match Dataset::resume_labeling(&dir, &graphs, &config, seed) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("FAIL: journaled labeling errored: {e}");
            return ExitCode::FAILURE;
        }
    };
    if full != reference {
        eprintln!("FAIL: journaled run differs from straight-through run");
        return ExitCode::FAILURE;
    }

    // Simulate a SIGKILL mid-append: keep half the journal records and a
    // torn (unterminated) fragment of the next line.
    let journal_path = dir.join(JOURNAL_FILE);
    let text = fs::read_to_string(&journal_path).expect("read journal");
    let lines: Vec<&str> = text.lines().collect();
    let keep = lines.len() / 2;
    let mut truncated: String = lines[..keep].iter().flat_map(|l| [*l, "\n"]).collect();
    truncated.push_str(&lines[keep][..lines[keep].len().min(5)]);
    fs::write(&journal_path, &truncated).expect("truncate journal");
    println!("truncated journal to {keep}/{} records plus a torn tail", lines.len());

    let (resumed, resumed_report) = match Dataset::resume_labeling(&dir, &graphs, &config, seed) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("FAIL: resume errored: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !resumed_report.is_complete() {
        eprintln!("FAIL: resume lost graphs: {:?}", resumed_report.unrecovered());
        return ExitCode::FAILURE;
    }
    if resumed != reference {
        eprintln!("FAIL: resumed dataset differs from straight-through run");
        return ExitCode::FAILURE;
    }

    let _ = fs::remove_dir_all(&dir);
    println!("checkpoint/resume smoke OK: resumed dataset is bit-identical ({count} graphs)");
    ExitCode::SUCCESS
}
