//! Landscape study: how rugged is the p=1 objective random initialization
//! must navigate?
//!
//! Quantifies §3.3's claim that "random initialization may lead the
//! optimizer into regions where not even local optima exist": per degree,
//! scan the canonical `(γ, β)` domain of a random regular instance, count
//! local maxima, and measure the basin of attraction of the global
//! optimum — i.e. the probability that a uniform random start hill-climbs
//! to the top.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qaoa::landscape::Landscape;
use qaoa::MaxCutHamiltonian;
use qaoa_gnn_bench::{f4, print_table, write_csv};

fn main() {
    let mut rng = StdRng::seed_from_u64(505);
    let resolution = 41;
    let mut rows = Vec::new();
    for degree in [2usize, 3, 4, 6, 8, 10] {
        let n = if (12 * degree) % 2 == 0 { 12 } else { 13 };
        let graph = qgraph::generate::random_regular(n, degree, &mut rng)
            .expect("feasible regular shape");
        let hamiltonian = MaxCutHamiltonian::new(&graph);
        let landscape = Landscape::scan(&hamiltonian, resolution);
        let maxima = landscape.local_maxima();
        let basin = landscape.global_basin_fraction(0.02 * landscape.max_value());
        rows.push(vec![
            degree.to_string(),
            n.to_string(),
            maxima.len().to_string(),
            f4(landscape.max_value() / landscape.optimal),
            f4(basin),
        ]);
        println!(
            "degree {degree}: {} local maxima, basin fraction {:.3}",
            maxima.len(),
            basin
        );
    }
    let header = [
        "degree",
        "n",
        "local_maxima",
        "grid_best_ar",
        "global_basin_fraction",
    ];
    print_table(
        "p=1 landscape ruggedness (41x41 canonical-domain scan)",
        &header,
        &rows,
    );
    let path = write_csv("landscape_scan.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
