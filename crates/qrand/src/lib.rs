//! In-tree deterministic random number generation.
//!
//! The whole reproduction rests on seeded determinism — 9598 seeded
//! synthetic graphs, seeded labeling runs, seeded train/test splits — so the
//! generator itself lives in-tree: a [SplitMix64] seeder feeding a
//! [xoshiro256**] core, with no external dependencies and a bit-stable
//! output stream that is safe to hard-code in regression tests.
//!
//! The API mirrors the subset of `rand` 0.8 this workspace uses, so call
//! sites read identically: a [`Rng`] extension trait ([`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`Rng::gen_normal`]), a
//! [`SeedableRng`] constructor trait, [`rngs::StdRng`], the
//! [`rngs::mock::StepRng`] test double, and [`seq::SliceRandom`] for
//! Fisher–Yates shuffling and uniform choice. Distribution structs
//! ([`distr::Bernoulli`], [`distr::Normal`], [`distr::Uniform`]) cover the
//! cases where a distribution is a value rather than a method call.
//!
//! Independent substreams come from [`rngs::StdRng::jump`] (the xoshiro
//! 2^128 jump polynomial) and [`rngs::StdRng::split`] — worker `i` of a
//! parallel loop can take `rng.split()` or `base.substream(i)` and never
//! overlap the parent stream in practice.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c
//!
//! # Example
//!
//! ```
//! use qrand::{Rng, SeedableRng};
//!
//! let mut rng = qrand::rngs::StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.gen_range(0..10usize);
//! assert!(k < 10);
//! // Identical seeds give identical streams.
//! let mut a = qrand::rngs::StdRng::seed_from_u64(42);
//! let mut b = qrand::rngs::StdRng::seed_from_u64(42);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distr;
pub mod rngs;
pub mod seq;

use core::ops::{Range, RangeInclusive};

/// The raw entropy source: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Constructs a generator from a 64-bit seed.
///
/// Seeding runs the seed through SplitMix64, so nearby seeds (0, 1, 2, …)
/// still produce decorrelated streams.
pub trait SeedableRng: Sized {
    /// A generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled "standardly" from raw bits: uniform over the
/// full domain for integers and `bool`, uniform in `[0, 1)` for floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Highest bit: xoshiro256**'s strongest bits are the upper ones.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Uniform over `[0, n)` without modulo bias (Lemire's multiply-shift
/// rejection).
fn uniform_u64_below<R: RngCore + ?Sized>(n: u64, rng: &mut R) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(n);
        if m as u64 >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types with an unbiased uniform sampler over a finite range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform over `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform over `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let width = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64_below(width, rng) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Full 64-bit domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(width as u64, rng) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = <$t as Standard>::sample(rng);
                let v = lo + u * (hi - lo);
                // Guard the open upper bound against rounding.
                if v < hi { v } else { <$t>::from_bits(hi.to_bits() - 1) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`] (`lo..hi` or `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A standard sample: full-domain integer, `[0,1)` float, or fair bool.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform over `range` (`lo..hi` or `lo..=hi`), unbiased for integers.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli trial: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        self.gen::<f64>() < p
    }

    /// A normal sample via the Box–Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    fn gen_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "gen_normal: invalid std_dev {std_dev}"
        );
        // Box–Muller: u1 in (0, 1] so ln(u1) is finite.
        let u1 = 1.0 - self.gen::<f64>();
        let u2 = self.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * r * (core::f64::consts::TAU * u2).cos()
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let overlap = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.gen_range(0..10usize);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let k = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn gen_range_float_symmetric() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0).abs() < 0.05, "mean {}", sum / 10_000.0);
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_normal_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal(1.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn full_u64_range_inclusive_does_not_hang() {
        let mut rng = StdRng::seed_from_u64(10);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(11);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn uniform_below_is_unbiased_ish() {
        // Chi-square-ish sanity: 3 buckets over 30k draws.
        let mut rng = StdRng::seed_from_u64(12);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[uniform_u64_below(3, &mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((9_500..10_500).contains(&c), "counts {counts:?}");
        }
    }
}
