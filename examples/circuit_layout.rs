//! Circuit layout: Max-Cut as two-way min-interference placement.
//!
//! ```text
//! cargo run --release --example circuit_layout
//! ```
//!
//! The paper's other motivating domain is circuit layout design: place
//! cells on two sides of a channel so that nets carrying switching noise
//! are separated. The netlist is modeled as a grid-plus-shortcut graph with
//! net weights; a GNN trained on small instances predicts QAOA angles for
//! the layout instance.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::{GnnKind, GnnModel, ModelConfig};
use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
use qaoa_gnn::dataset::{Dataset, LabelConfig};
use qaoa_gnn::pipeline;
use qgraph::generate::DatasetSpec;
use qgraph::{maxcut, Graph};

/// A 3×4 cell grid with two long "critical nets" crossing it.
fn netlist() -> Result<Graph, qgraph::GraphError> {
    let mut g = Graph::grid(3, 4)?; // 12 cells, unit-weight adjacent nets
    g.add_edge(0, 11, 1.0)?; // corner-to-corner critical net
    g.add_edge(3, 8, 1.0)?; // the other diagonal
    Ok(g)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(77);
    let layout = netlist()?;
    let optimal = maxcut::brute_force(&layout);
    println!(
        "netlist: {} cells, {} nets, optimal separation {:.1}",
        layout.n(),
        layout.m(),
        optimal.value
    );

    // Train GIN (the paper's best performer) on generic labeled graphs —
    // the model has never seen a grid.
    println!("training GIN on 80 generic regular graphs...");
    let dataset = Dataset::generate(
        &DatasetSpec {
            count: 80,
            ..DatasetSpec::default()
        },
        &LabelConfig::quick(100),
        5,
    )?;
    let model_config = ModelConfig::default();
    let model = GnnModel::new(GnnKind::Gin, model_config.clone(), &mut rng);
    let examples = pipeline::to_examples(&dataset, &model_config);
    gnn::train::train(
        &model,
        &examples,
        &gnn::train::TrainConfig::quick(25),
        &mut rng,
    );

    // Fixed-parameter comparison on the layout instance (§4 setting).
    let hamiltonian = MaxCutHamiltonian::new(&layout);
    let circuit = QaoaCircuit::new(hamiltonian.clone());
    let (gamma, beta) = model.predict(&layout);
    let gnn_ratio = circuit.approximation_ratio(&Params::new(vec![gamma], vec![beta]));

    let trials = 10;
    let mut random_sum = 0.0;
    for _ in 0..trials {
        random_sum += circuit.approximation_ratio(&Params::random(1, &mut rng));
    }
    let random_mean = random_sum / trials as f64;

    println!("\nfixed-parameter QAOA on the layout instance:");
    println!("  GIN-predicted (γ={gamma:.3}, β={beta:.3}) AR: {gnn_ratio:.3}");
    println!("  random initialization AR (mean of {trials}): {random_mean:.3}");
    println!(
        "  improvement: {:+.1} percentage points",
        (gnn_ratio - random_mean) * 100.0
    );

    // Show the best placement QAOA sampling would report.
    let params = Params::new(vec![gamma], vec![beta]);
    let best_sampled = circuit.best_sampled_cut(&params, 256, &mut rng);
    println!(
        "  best of 256 sampled placements: {:.1} / {:.1} optimal",
        best_sampled, optimal.value
    );
    Ok(())
}
