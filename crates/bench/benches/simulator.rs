//! Criterion micro-benchmarks for the state-vector simulator: the inner
//! loop of dataset labeling. One QAOA objective evaluation is a diagonal
//! phase pass plus an RX layer per depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
use qsim::diagonal::DiagonalOperator;
use qsim::{gates, StateVector};

fn bench_hadamard_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("h_all");
    for qubits in [8usize, 12, 15] {
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &qubits, |b, &n| {
            b.iter(|| {
                let mut psi = StateVector::zero_state(n);
                gates::h_all(&mut psi);
                psi.amplitude(0)
            });
        });
    }
    group.finish();
}

fn bench_diagonal_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagonal_phase");
    for qubits in [8usize, 12, 15] {
        let op = DiagonalOperator::from_fn(qubits, |z| z.count_ones() as f64);
        group.bench_with_input(BenchmarkId::from_parameter(qubits), &qubits, |b, &n| {
            let mut psi = StateVector::uniform_superposition(n);
            b.iter(|| {
                op.apply_phase(&mut psi, 0.137);
                psi.amplitude(0)
            });
        });
    }
    group.finish();
}

fn bench_qaoa_expectation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("qaoa_expectation_p1");
    for nodes in [8usize, 12, 15] {
        let graph = qgraph::generate::random_regular(nodes, 3, &mut rng)
            .expect("feasible shape");
        let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));
        let params = Params::new(vec![0.7], vec![0.3]);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| circuit.expectation(&params));
        });
    }
    group.finish();
}

fn bench_qaoa_depth_scaling(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = qgraph::generate::random_regular(12, 3, &mut rng).expect("feasible shape");
    let circuit = QaoaCircuit::new(MaxCutHamiltonian::new(&graph));
    let mut group = c.benchmark_group("qaoa_expectation_depth");
    for depth in [1usize, 2, 4, 8] {
        let params = Params::new(vec![0.5; depth], vec![0.2; depth]);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| circuit.expectation(&params));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hadamard_layer,
    bench_diagonal_phase,
    bench_qaoa_expectation,
    bench_qaoa_depth_scaling
);
criterion_main!(benches);
