//! Figure 4: possible approximation ratio by degree.
//!
//! The companion of `fig3_ar_by_size`, grouping the same random-init labels
//! by (regular) degree instead of graph size.

use qaoa_gnn::dataset::Dataset;
use qaoa_gnn::pipeline::PipelineConfig;
use qaoa_gnn_bench::{f4, print_table, write_csv};
use qgraph::stats::grouped_summary;

fn main() {
    let config = PipelineConfig::from_env();
    println!(
        "labeling {} graphs with {} optimizer iterations each...",
        config.dataset.count, config.labeling.iterations
    );
    let dataset = Dataset::generate(&config.dataset, &config.labeling, config.seed)
        .expect("default dataset spec is valid");

    let summary = grouped_summary(&dataset.ar_by_degree());
    let rows: Vec<Vec<String>> = summary
        .iter()
        .map(|s| {
            vec![
                s.key.to_string(),
                s.count.to_string(),
                f4(s.min),
                f4(s.mean),
                f4(s.max),
                f4(s.std),
            ]
        })
        .collect();
    let header = ["degree", "count", "ar_min", "ar_mean", "ar_max", "ar_std"];
    print_table("Figure 4: possible AR by degree", &header, &rows);
    let path = write_csv("fig4_ar_by_degree.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
