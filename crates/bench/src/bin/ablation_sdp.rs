//! §3.3 ablation: Selective Data Pruning threshold × selective-rate sweep.
//!
//! Labels one dataset, then for each (threshold, selective rate) cell prunes
//! the training split, retrains a GIN and reports surviving dataset size,
//! mean label quality, test MSE and the Table-1-style improvement.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::GnnKind;
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::sdp::SdpConfig;
use qaoa_gnn_bench::{f2, f4, label_dataset, print_table, write_csv};

fn main() {
    let base = PipelineConfig::from_env();
    println!("labeling {} graphs once...", base.dataset.count);
    let dataset = label_dataset(&base);

    let thresholds = [0.5, 0.6, 0.7, 0.8];
    let rates = [0.0, 0.3, 0.7, 1.0];
    let mut rows = Vec::new();
    for &threshold in &thresholds {
        for &rate in &rates {
            let config = base.clone().with_sdp(Some(SdpConfig::new(threshold, rate)));
            let mut rng = StdRng::seed_from_u64(base.seed ^ 0x51);
            let p = Pipeline::run_on_dataset(GnnKind::Gin, dataset.clone(), &config, &mut rng);
            let stats = p.sdp_stats.expect("sdp enabled");
            rows.push(vec![
                f2(threshold),
                f2(rate),
                p.train_dataset.len().to_string(),
                stats.pruned.to_string(),
                f4(p.train_dataset.mean_approx_ratio()),
                f4(p.test_mse),
                f2(p.report.mean_improvement),
            ]);
            println!(
                "threshold {threshold:.1} rate {rate:.1}: kept {}, improvement {} pts",
                p.train_dataset.len(),
                f2(p.report.mean_improvement)
            );
        }
    }
    let header = [
        "threshold",
        "selective_rate",
        "train_size",
        "pruned",
        "mean_label_ar",
        "test_mse",
        "improvement_pts",
    ];
    print_table("SDP ablation (GIN)", &header, &rows);
    let path = write_csv("ablation_sdp.csv", &header, &rows).expect("write csv");
    println!("wrote {}", path.display());
}
