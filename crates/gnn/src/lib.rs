//! # gnn — graph neural networks for QAOA parameter prediction
//!
//! Implements the paper's §3.2 model zoo on the [`tensor`] autodiff engine:
//!
//! * [`GraphContext`] — per-graph precomputed operands: node features
//!   (degree + one-hot id, §3.1), GCN-normalized adjacency, GAT attention
//!   mask, GIN aggregation matrix and GraphSAGE neighbor lists.
//! * [`GnnKind`] — the four benchmarked architectures: GCN (Eq. 5), GAT
//!   (Eqs. 6–7), GIN (Eq. 8) and GraphSAGE (Eqs. 3–4).
//! * [`GnnModel`] — `layers` message-passing layers, mean-pooling readout
//!   (Eq. 9) and an MLP head predicting normalized `(γ, β)`.
//! * [`train`] — the §4.1 training loop: Adam, ReduceLROnPlateau (min mode,
//!   factor 5, patience 5, min-lr 1e-5), dropout 0.5, 100 epochs.
//!
//! ## Example
//!
//! ```
//! use gnn::{GnnKind, GnnModel, ModelConfig};
//! use qgraph::Graph;
//! use qrand::SeedableRng;
//!
//! # fn main() -> Result<(), qgraph::GraphError> {
//! let mut rng = qrand::rngs::StdRng::seed_from_u64(1);
//! let model = GnnModel::new(GnnKind::Gcn, ModelConfig::default(), &mut rng);
//! let g = Graph::cycle(6)?;
//! let (gamma, beta) = model.predict(&g);
//! assert!((0.0..=std::f64::consts::TAU).contains(&gamma));
//! assert!((0.0..=std::f64::consts::PI).contains(&beta));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod context;
mod model;

pub mod train;

pub use checkpoint::{expected_shapes, ModelWeights, WeightError};
pub use context::GraphContext;
pub use model::{GnnKind, GnnModel, ModelConfig, Readout};

/// Normalizes QAOA angles into the unit square the model predicts:
/// `γ/2π` and `β/(π/2)` (β has period π/2 for Max-Cut, see
/// `qaoa::Params::canonical`).
pub fn normalize_target(gamma: f64, beta: f64) -> [f64; 2] {
    [
        gamma / std::f64::consts::TAU,
        beta / std::f64::consts::FRAC_PI_2,
    ]
}

/// Inverse of [`normalize_target`].
pub fn denormalize_target(normalized: [f64; 2]) -> (f64, f64) {
    (
        normalized[0] * std::f64::consts::TAU,
        normalized[1] * std::f64::consts::FRAC_PI_2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_normalization_round_trips() {
        let (g, b) = (1.234, 0.567);
        let n = normalize_target(g, b);
        assert!(n.iter().all(|v| (0.0..=1.0).contains(v)));
        let (g2, b2) = denormalize_target(n);
        assert!((g - g2).abs() < 1e-12);
        assert!((b - b2).abs() < 1e-12);
    }

    #[test]
    fn normalization_maps_extremes_to_unit_interval() {
        assert_eq!(normalize_target(0.0, 0.0), [0.0, 0.0]);
        let n = normalize_target(std::f64::consts::TAU, std::f64::consts::FRAC_PI_2);
        assert!((n[0] - 1.0).abs() < 1e-12);
        assert!((n[1] - 1.0).abs() < 1e-12);
    }
}
