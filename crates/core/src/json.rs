//! Hand-rolled JSON encoding and decoding for persisted configurations and
//! reports.
//!
//! The workspace is hermetic (no external crates), so the serialization the
//! experiment binaries need — saving a [`PipelineConfig`] next to a run,
//! emitting an [`EvaluationReport`] for plotting — is implemented here
//! directly: a small [`Json`] value tree, a recursive-descent parser, a
//! writer, and [`ToJson`]/[`FromJson`] impls for every persisted struct.
//!
//! Numbers are kept as parsed ([`Number::U64`]/[`Number::I64`]/
//! [`Number::F64`]) so 64-bit seeds survive a round trip exactly; floats are
//! written with Rust's shortest-round-trip `{:?}` formatting.

use gnn::train::{DivergenceEvent, EpochStats, TrainConfig, TrainHistory, TrainState};
use gnn::{GnnKind, ModelConfig, ModelWeights, Readout};
use tensor::optim::AdamState;
use tensor::sched::PlateauState;
use tensor::Matrix;
use qgraph::features::FeatureConfig;
use qgraph::generate::DatasetSpec;

use crate::dataset::{FailurePolicy, LabelConfig, LabelFailure, LabelFailureReason, LabelReport};
use crate::eval::{EvalConfig, EvaluationReport, GraphComparison};
use crate::pipeline::PipelineConfig;
use crate::sdp::SdpConfig;

/// A JSON numeric value, preserving the lexical class it was parsed from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer without fraction or exponent.
    U64(u64),
    /// Negative integer without fraction or exponent.
    I64(i64),
    /// Anything with a fraction or exponent.
    F64(f64),
}

impl Number {
    /// The value as a float (lossy for integers beyond 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(v) => v as f64,
            Number::I64(v) => v as f64,
            Number::F64(v) => v,
        }
    }
}

/// A JSON value tree. Object keys keep insertion order so output is
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key–value list.
    Obj(Vec<(String, Json)>),
}

/// Errors from [`Json::parse`] or [`FromJson`] decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Convenience constructor for integer-valued numbers.
    pub fn uint(v: u64) -> Json {
        Json::Num(Number::U64(v))
    }

    /// Convenience constructor for float-valued numbers.
    pub fn float(v: f64) -> Json {
        Json::Num(Number::F64(v))
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(n.as_f64()),
            other => err(format!("expected number, found {other:?}")),
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(Number::U64(v)) => Ok(*v),
            other => err(format!("expected unsigned integer, found {other:?}")),
        }
    }

    /// The value as `usize`, if a non-negative integer that fits.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let v = self.as_u64()?;
        usize::try_from(v).map_err(|_| JsonError(format!("{v} does not fit in usize")))
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => err(format!("expected bool, found {other:?}")),
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, found {other:?}")),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, found {other:?}")),
        }
    }

    /// The value as an object's key–value list.
    pub fn as_obj(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => err(format!("expected object, found {other:?}")),
        }
    }

    /// Looks up a required object field.
    pub fn get(&self, key: &str) -> Result<&Json, JsonError> {
        let fields = self.as_obj()?;
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError(format!("missing field '{key}'")))
    }

    /// Looks up an optional object field (`None` when absent or `null`).
    pub fn get_opt(&self, key: &str) -> Result<Option<&Json>, JsonError> {
        let fields = self.as_obj()?;
        Ok(fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .filter(|v| !matches!(v, Json::Null)))
    }

    /// Parses a JSON document.
    ///
    /// Accepts the standard grammar (objects, arrays, strings with escapes,
    /// numbers, booleans, null); rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(Number::U64(v)) => out.push_str(&v.to_string()),
            Json::Num(Number::I64(v)) => out.push_str(&v.to_string()),
            Json::Num(Number::F64(v)) => write_f64(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes a float with shortest-round-trip formatting; non-finite values
/// (which JSON cannot represent) become `null`.
fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back exactly.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then handle the interesting one.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| JsonError("unterminated escape".into()))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError("bad codepoint".into()))?,
                            );
                        }
                        other => {
                            return err(format!("unknown escape '\\{}'", other as char))
                        }
                    }
                }
                _ => return err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii");
        let number = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| JsonError(format!("bad number '{text}'")))?,
            )
        } else if let Some(rest) = text.strip_prefix('-') {
            let _ = rest;
            Number::I64(
                text.parse::<i64>()
                    .map_err(|_| JsonError(format!("bad integer '{text}'")))?,
            )
        } else {
            Number::U64(
                text.parse::<u64>()
                    .map_err(|_| JsonError(format!("bad integer '{text}'")))?,
            )
        };
        Ok(Json::Num(number))
    }
}

/// Converts a value to its JSON representation.
pub trait ToJson {
    /// Builds the JSON tree for this value.
    fn to_json(&self) -> Json;
}

/// Reconstructs a value from its JSON representation.
pub trait FromJson: Sized {
    /// Decodes the value; unknown fields are ignored, missing ones error.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

impl ToJson for LabelConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("depth", Json::uint(self.depth as u64)),
            ("iterations", Json::uint(self.iterations as u64)),
            ("threads", Json::uint(self.threads as u64)),
            ("sim_threads", Json::uint(self.sim_threads as u64)),
            ("dedupe_isomorphic", Json::Bool(self.dedupe_isomorphic)),
        ])
    }
}

impl FromJson for LabelConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LabelConfig {
            depth: json.get("depth")?.as_usize()?,
            iterations: json.get("iterations")?.as_usize()?,
            threads: json.get("threads")?.as_usize()?,
            // Absent in artifacts written before the pooled simulator
            // existed; those runs were serial, which 0 encodes.
            sim_threads: match json.get("sim_threads") {
                Ok(v) => v.as_usize()?,
                Err(_) => 0,
            },
            // Absent before the isomorphism deduper existed; those runs
            // labeled every graph, which `false` encodes.
            dedupe_isomorphic: match json.get("dedupe_isomorphic") {
                Ok(v) => v.as_bool()?,
                Err(_) => false,
            },
        })
    }
}

impl ToJson for DatasetSpec {
    fn to_json(&self) -> Json {
        obj(vec![
            ("count", Json::uint(self.count as u64)),
            ("min_nodes", Json::uint(self.min_nodes as u64)),
            ("max_nodes", Json::uint(self.max_nodes as u64)),
            ("min_degree", Json::uint(self.min_degree as u64)),
            ("max_degree", Json::uint(self.max_degree as u64)),
        ])
    }
}

impl FromJson for DatasetSpec {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(DatasetSpec {
            count: json.get("count")?.as_usize()?,
            min_nodes: json.get("min_nodes")?.as_usize()?,
            max_nodes: json.get("max_nodes")?.as_usize()?,
            min_degree: json.get("min_degree")?.as_usize()?,
            max_degree: json.get("max_degree")?.as_usize()?,
        })
    }
}

impl ToJson for SdpConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("threshold", Json::float(self.threshold)),
            ("selective_rate", Json::float(self.selective_rate)),
        ])
    }
}

impl FromJson for SdpConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let threshold = json.get("threshold")?.as_f64()?;
        let selective_rate = json.get("selective_rate")?.as_f64()?;
        if !(0.0..=1.0).contains(&threshold) || !(0.0..=1.0).contains(&selective_rate) {
            return err("SdpConfig values must be in [0, 1]");
        }
        Ok(SdpConfig::new(threshold, selective_rate))
    }
}

impl ToJson for FeatureConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("one_hot_dim", Json::uint(self.one_hot_dim as u64)),
            ("include_degree", Json::Bool(self.include_degree)),
        ])
    }
}

impl FromJson for FeatureConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(FeatureConfig {
            one_hot_dim: json.get("one_hot_dim")?.as_usize()?,
            include_degree: json.get("include_degree")?.as_bool()?,
        })
    }
}

impl ToJson for Readout {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Readout::Mean => "mean",
                Readout::Sum => "sum",
                Readout::Max => "max",
            }
            .to_string(),
        )
    }
}

impl FromJson for Readout {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str()? {
            "mean" => Ok(Readout::Mean),
            "sum" => Ok(Readout::Sum),
            "max" => Ok(Readout::Max),
            other => err(format!("unknown readout '{other}'")),
        }
    }
}

impl ToJson for ModelConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("features", self.features.to_json()),
            ("hidden_dim", Json::uint(self.hidden_dim as u64)),
            ("layers", Json::uint(self.layers as u64)),
            ("dropout", Json::float(self.dropout)),
            ("leaky_slope", Json::float(self.leaky_slope)),
            ("gin_eps", Json::float(self.gin_eps)),
            ("readout", self.readout.to_json()),
        ])
    }
}

impl FromJson for ModelConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ModelConfig {
            features: FeatureConfig::from_json(json.get("features")?)?,
            hidden_dim: json.get("hidden_dim")?.as_usize()?,
            layers: json.get("layers")?.as_usize()?,
            dropout: json.get("dropout")?.as_f64()?,
            leaky_slope: json.get("leaky_slope")?.as_f64()?,
            gin_eps: json.get("gin_eps")?.as_f64()?,
            readout: Readout::from_json(json.get("readout")?)?,
        })
    }
}

impl ToJson for GnnKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                GnnKind::Gcn => "gcn",
                GnnKind::Gat => "gat",
                GnnKind::Gin => "gin",
                GnnKind::Sage => "sage",
            }
            .to_string(),
        )
    }
}

impl FromJson for GnnKind {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str()? {
            "gcn" => Ok(GnnKind::Gcn),
            "gat" => Ok(GnnKind::Gat),
            "gin" => Ok(GnnKind::Gin),
            "sage" => Ok(GnnKind::Sage),
            other => err(format!("unknown architecture '{other}'")),
        }
    }
}

impl ToJson for Matrix {
    fn to_json(&self) -> Json {
        obj(vec![
            ("rows", Json::uint(self.rows() as u64)),
            ("cols", Json::uint(self.cols() as u64)),
            (
                "data",
                Json::Arr(self.data().iter().map(|&v| Json::float(v)).collect()),
            ),
        ])
    }
}

impl FromJson for Matrix {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let rows = json.get("rows")?.as_usize()?;
        let cols = json.get("cols")?.as_usize()?;
        if rows == 0 || cols == 0 {
            return err(format!("matrix dimensions must be positive, got {rows}x{cols}"));
        }
        let expected = rows
            .checked_mul(cols)
            .ok_or_else(|| JsonError(format!("matrix size {rows}x{cols} overflows")))?;
        let entries = json.get("data")?.as_arr()?;
        if entries.len() != expected {
            return err(format!(
                "matrix {rows}x{cols} needs {expected} entries, found {}",
                entries.len()
            ));
        }
        // Weights must be finite; a `null` here (the encoding of NaN/±∞)
        // or any non-numeric entry is data corruption, not a valid weight.
        let data = entries
            .iter()
            .map(Json::as_f64)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Matrix::from_flat(rows, cols, data))
    }
}

impl ToJson for ModelWeights {
    fn to_json(&self) -> Json {
        obj(vec![
            ("kind", self.kind.to_json()),
            ("config", self.config.to_json()),
            (
                "params",
                Json::Arr(self.params.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for ModelWeights {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ModelWeights {
            kind: GnnKind::from_json(json.get("kind")?)?,
            config: ModelConfig::from_json(json.get("config")?)?,
            params: json
                .get("params")?
                .as_arr()?
                .iter()
                .map(Matrix::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ToJson for TrainConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("epochs", Json::uint(self.epochs as u64)),
            ("learning_rate", Json::float(self.learning_rate)),
            ("shuffle", Json::Bool(self.shuffle)),
        ])
    }
}

impl FromJson for TrainConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TrainConfig {
            epochs: json.get("epochs")?.as_usize()?,
            learning_rate: json.get("learning_rate")?.as_f64()?,
            shuffle: json.get("shuffle")?.as_bool()?,
        })
    }
}

impl ToJson for EvalConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            (
                "refine_iterations",
                Json::uint(self.refine_iterations as u64),
            ),
            ("depth", Json::uint(self.depth as u64)),
        ])
    }
}

impl FromJson for EvalConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(EvalConfig {
            refine_iterations: json.get("refine_iterations")?.as_usize()?,
            depth: json.get("depth")?.as_usize()?,
        })
    }
}

fn moments_to_json(moments: &[(usize, Matrix)]) -> Json {
    Json::Arr(
        moments
            .iter()
            .map(|(index, matrix)| {
                obj(vec![
                    ("index", Json::uint(*index as u64)),
                    ("matrix", matrix.to_json()),
                ])
            })
            .collect(),
    )
}

fn moments_from_json(json: &Json) -> Result<Vec<(usize, Matrix)>, JsonError> {
    json.as_arr()?
        .iter()
        .map(|entry| {
            Ok((
                entry.get("index")?.as_usize()?,
                Matrix::from_json(entry.get("matrix")?)?,
            ))
        })
        .collect()
}

impl ToJson for AdamState {
    fn to_json(&self) -> Json {
        obj(vec![
            ("lr", Json::float(self.lr)),
            ("beta1", Json::float(self.beta1)),
            ("beta2", Json::float(self.beta2)),
            ("eps", Json::float(self.eps)),
            ("weight_decay", Json::float(self.weight_decay)),
            ("t", Json::uint(self.t)),
            ("m", moments_to_json(&self.m)),
            ("v", moments_to_json(&self.v)),
        ])
    }
}

impl FromJson for AdamState {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(AdamState {
            lr: json.get("lr")?.as_f64()?,
            beta1: json.get("beta1")?.as_f64()?,
            beta2: json.get("beta2")?.as_f64()?,
            eps: json.get("eps")?.as_f64()?,
            weight_decay: json.get("weight_decay")?.as_f64()?,
            t: json.get("t")?.as_u64()?,
            m: moments_from_json(json.get("m")?)?,
            v: moments_from_json(json.get("v")?)?,
        })
    }
}

impl ToJson for PlateauState {
    fn to_json(&self) -> Json {
        obj(vec![
            (
                "best",
                self.best.map_or(Json::Null, Json::float),
            ),
            ("bad_epochs", Json::uint(self.bad_epochs as u64)),
        ])
    }
}

impl FromJson for PlateauState {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(PlateauState {
            best: json.get_opt("best")?.map(Json::as_f64).transpose()?,
            bad_epochs: json.get("bad_epochs")?.as_usize()?,
        })
    }
}

impl ToJson for TrainState {
    fn to_json(&self) -> Json {
        obj(vec![
            ("next_epoch", Json::uint(self.next_epoch as u64)),
            ("done", Json::Bool(self.done)),
            (
                "params",
                Json::Arr(self.params.iter().map(ToJson::to_json).collect()),
            ),
            ("optimizer", self.optimizer.to_json()),
            ("scheduler", self.scheduler.to_json()),
            // Bit-pattern encoding: before the first epoch the best loss is
            // `+∞`, which a plain JSON float cannot carry.
            ("best_loss_bits", Json::uint(self.best_loss.to_bits())),
            (
                "best_params",
                Json::Arr(self.best_params.iter().map(ToJson::to_json).collect()),
            ),
            (
                "order",
                Json::Arr(self.order.iter().map(|&i| Json::uint(i as u64)).collect()),
            ),
            (
                "rng_state",
                Json::Arr(self.rng_state.iter().map(|&w| Json::uint(w)).collect()),
            ),
            ("history", self.history.to_json()),
        ])
    }
}

impl FromJson for TrainState {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let words = json.get("rng_state")?.as_arr()?;
        if words.len() != 4 {
            return err(format!("rng_state needs 4 words, found {}", words.len()));
        }
        let mut rng_state = [0u64; 4];
        for (slot, word) in rng_state.iter_mut().zip(words) {
            *slot = word.as_u64()?;
        }
        Ok(TrainState {
            next_epoch: json.get("next_epoch")?.as_usize()?,
            done: json.get("done")?.as_bool()?,
            params: json
                .get("params")?
                .as_arr()?
                .iter()
                .map(Matrix::from_json)
                .collect::<Result<_, _>>()?,
            optimizer: AdamState::from_json(json.get("optimizer")?)?,
            scheduler: PlateauState::from_json(json.get("scheduler")?)?,
            best_loss: f64::from_bits(json.get("best_loss_bits")?.as_u64()?),
            best_params: json
                .get("best_params")?
                .as_arr()?
                .iter()
                .map(Matrix::from_json)
                .collect::<Result<_, _>>()?,
            order: json
                .get("order")?
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect::<Result<_, _>>()?,
            rng_state,
            history: TrainHistory::from_json(json.get("history")?)?,
        })
    }
}

impl ToJson for EpochStats {
    fn to_json(&self) -> Json {
        obj(vec![
            ("epoch", Json::uint(self.epoch as u64)),
            ("train_loss", Json::float(self.train_loss)),
            ("learning_rate", Json::float(self.learning_rate)),
        ])
    }
}

impl FromJson for EpochStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(EpochStats {
            epoch: json.get("epoch")?.as_usize()?,
            train_loss: json.get("train_loss")?.as_f64()?,
            learning_rate: json.get("learning_rate")?.as_f64()?,
        })
    }
}

impl ToJson for DivergenceEvent {
    fn to_json(&self) -> Json {
        obj(vec![
            ("epoch", Json::uint(self.epoch as u64)),
            // Non-finite (the usual case) serializes as null.
            ("loss", Json::float(self.loss)),
        ])
    }
}

impl FromJson for DivergenceEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(DivergenceEvent {
            epoch: json.get("epoch")?.as_usize()?,
            // A null/absent loss decodes as NaN: JSON cannot carry the
            // non-finite value the event recorded.
            loss: json
                .get_opt("loss")?
                .map(Json::as_f64)
                .transpose()?
                .unwrap_or(f64::NAN),
        })
    }
}

impl ToJson for TrainHistory {
    fn to_json(&self) -> Json {
        obj(vec![
            (
                "epochs",
                Json::Arr(self.epochs.iter().map(ToJson::to_json).collect()),
            ),
            (
                "diverged",
                self.diverged
                    .as_ref()
                    .map_or(Json::Null, DivergenceEvent::to_json),
            ),
        ])
    }
}

impl FromJson for TrainHistory {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(TrainHistory {
            epochs: json
                .get("epochs")?
                .as_arr()?
                .iter()
                .map(EpochStats::from_json)
                .collect::<Result<_, _>>()?,
            diverged: json
                .get_opt("diverged")?
                .map(DivergenceEvent::from_json)
                .transpose()?,
        })
    }
}

impl ToJson for LabelFailureReason {
    fn to_json(&self) -> Json {
        let (kind, detail) = match self {
            LabelFailureReason::Panic(msg) => ("panic", msg),
            LabelFailureReason::NonFinite(what) => ("non_finite", what),
        };
        obj(vec![
            ("kind", Json::Str(kind.to_string())),
            ("detail", Json::Str(detail.clone())),
        ])
    }
}

impl FromJson for LabelFailureReason {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let detail = json.get("detail")?.as_str()?.to_string();
        match json.get("kind")?.as_str()? {
            "panic" => Ok(LabelFailureReason::Panic(detail)),
            "non_finite" => Ok(LabelFailureReason::NonFinite(detail)),
            other => err(format!("unknown failure kind '{other}'")),
        }
    }
}

impl ToJson for LabelFailure {
    fn to_json(&self) -> Json {
        obj(vec![
            ("index", Json::uint(self.index as u64)),
            ("reason", self.reason.to_json()),
            ("recovered", Json::Bool(self.recovered)),
        ])
    }
}

impl FromJson for LabelFailure {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LabelFailure {
            index: json.get("index")?.as_usize()?,
            reason: LabelFailureReason::from_json(json.get("reason")?)?,
            recovered: json.get("recovered")?.as_bool()?,
        })
    }
}

impl ToJson for LabelReport {
    fn to_json(&self) -> Json {
        obj(vec![
            ("total", Json::uint(self.total as u64)),
            ("labeled", Json::uint(self.labeled as u64)),
            (
                "skipped_isomorphic",
                Json::uint(self.skipped_isomorphic as u64),
            ),
            (
                "failures",
                Json::Arr(self.failures.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for LabelReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(LabelReport {
            total: json.get("total")?.as_usize()?,
            labeled: json.get("labeled")?.as_usize()?,
            // Absent in reports written before the isomorphism deduper
            // existed; those runs simulated every graph, which 0 encodes.
            skipped_isomorphic: match json.get("skipped_isomorphic") {
                Ok(v) => v.as_usize()?,
                Err(_) => 0,
            },
            failures: json
                .get("failures")?
                .as_arr()?
                .iter()
                .map(LabelFailure::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ToJson for crate::store::TrainingEnvelope {
    fn to_json(&self) -> Json {
        obj(vec![
            ("min_nodes", Json::uint(self.min_nodes as u64)),
            ("max_nodes", Json::uint(self.max_nodes as u64)),
            ("max_degree", Json::uint(self.max_degree as u64)),
            ("feature_dim", Json::uint(self.feature_dim as u64)),
            ("mean_gamma", Json::float(self.mean_gamma)),
            ("mean_beta", Json::float(self.mean_beta)),
        ])
    }
}

impl FromJson for crate::store::TrainingEnvelope {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(crate::store::TrainingEnvelope {
            min_nodes: json.get("min_nodes")?.as_usize()?,
            max_nodes: json.get("max_nodes")?.as_usize()?,
            max_degree: json.get("max_degree")?.as_usize()?,
            feature_dim: json.get("feature_dim")?.as_usize()?,
            mean_gamma: json.get("mean_gamma")?.as_f64()?,
            mean_beta: json.get("mean_beta")?.as_f64()?,
        })
    }
}

impl ToJson for FailurePolicy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                FailurePolicy::Skip => "skip",
                FailurePolicy::Halt => "halt",
            }
            .to_string(),
        )
    }
}

impl FromJson for FailurePolicy {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str()? {
            "skip" => Ok(FailurePolicy::Skip),
            "halt" => Ok(FailurePolicy::Halt),
            other => err(format!("unknown failure policy '{other}'")),
        }
    }
}

impl ToJson for PipelineConfig {
    fn to_json(&self) -> Json {
        obj(vec![
            ("dataset", self.dataset.to_json()),
            ("labeling", self.labeling.to_json()),
            (
                "sdp",
                self.sdp.as_ref().map_or(Json::Null, SdpConfig::to_json),
            ),
            ("fixed_angles", Json::Bool(self.fixed_angles)),
            ("model", self.model.to_json()),
            ("training", self.training.to_json()),
            ("test_size", Json::uint(self.test_size as u64)),
            ("eval", self.eval.to_json()),
            ("seed", Json::uint(self.seed)),
            (
                "checkpoint_dir",
                self.checkpoint_dir
                    .as_ref()
                    .map_or(Json::Null, |p| Json::Str(p.display().to_string())),
            ),
            ("failure_policy", self.failure_policy.to_json()),
            (
                "artifact_path",
                self.artifact_path
                    .as_ref()
                    .map_or(Json::Null, |p| Json::Str(p.display().to_string())),
            ),
            (
                "checkpoint_every",
                Json::uint(self.checkpoint_every as u64),
            ),
        ])
    }
}

impl FromJson for PipelineConfig {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(PipelineConfig {
            dataset: DatasetSpec::from_json(json.get("dataset")?)?,
            labeling: LabelConfig::from_json(json.get("labeling")?)?,
            sdp: json
                .get_opt("sdp")?
                .map(SdpConfig::from_json)
                .transpose()?,
            fixed_angles: json.get("fixed_angles")?.as_bool()?,
            model: ModelConfig::from_json(json.get("model")?)?,
            training: TrainConfig::from_json(json.get("training")?)?,
            test_size: json.get("test_size")?.as_usize()?,
            eval: EvalConfig::from_json(json.get("eval")?)?,
            seed: json.get("seed")?.as_u64()?,
            // Both absent in configs written before the fault-tolerance
            // layer existed; default to the old behavior.
            checkpoint_dir: json
                .get_opt("checkpoint_dir")?
                .map(|v| Ok::<_, JsonError>(std::path::PathBuf::from(v.as_str()?)))
                .transpose()?,
            failure_policy: json
                .get_opt("failure_policy")?
                .map(FailurePolicy::from_json)
                .transpose()?
                .unwrap_or_default(),
            artifact_path: json
                .get_opt("artifact_path")?
                .map(|v| Ok::<_, JsonError>(std::path::PathBuf::from(v.as_str()?)))
                .transpose()?,
            // Absent in configs written before training checkpoints
            // existed; every-epoch is the default stride.
            checkpoint_every: json
                .get_opt("checkpoint_every")?
                .map(Json::as_usize)
                .transpose()?
                .unwrap_or(1),
        })
    }
}

impl ToJson for GraphComparison {
    fn to_json(&self) -> Json {
        obj(vec![
            ("nodes", Json::uint(self.nodes as u64)),
            ("degree", Json::uint(self.degree as u64)),
            ("random_ratio", Json::float(self.random_ratio)),
            ("gnn_ratio", Json::float(self.gnn_ratio)),
        ])
    }
}

impl FromJson for GraphComparison {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(GraphComparison {
            nodes: json.get("nodes")?.as_usize()?,
            degree: json.get("degree")?.as_usize()?,
            random_ratio: json.get("random_ratio")?.as_f64()?,
            gnn_ratio: json.get("gnn_ratio")?.as_f64()?,
        })
    }
}

impl ToJson for EvaluationReport {
    fn to_json(&self) -> Json {
        obj(vec![
            (
                "per_graph",
                Json::Arr(self.per_graph.iter().map(ToJson::to_json).collect()),
            ),
            ("mean_improvement", Json::float(self.mean_improvement)),
            ("std_improvement", Json::float(self.std_improvement)),
            ("mean_random_ratio", Json::float(self.mean_random_ratio)),
            ("mean_gnn_ratio", Json::float(self.mean_gnn_ratio)),
        ])
    }
}

impl FromJson for EvaluationReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(EvaluationReport {
            per_graph: json
                .get("per_graph")?
                .as_arr()?
                .iter()
                .map(GraphComparison::from_json)
                .collect::<Result<_, _>>()?,
            mean_improvement: json.get("mean_improvement")?.as_f64()?,
            std_improvement: json.get("std_improvement")?.as_f64()?,
            mean_random_ratio: json.get("mean_random_ratio")?.as_f64()?,
            mean_gnn_ratio: json.get("mean_gnn_ratio")?.as_f64()?,
        })
    }
}

impl ToJson for crate::serve_loop::LoopMetrics {
    fn to_json(&self) -> Json {
        obj(vec![
            ("served", Json::uint(self.served)),
            ("shed", Json::uint(self.shed)),
            ("rejected", Json::uint(self.rejected)),
            ("shed_watermark", Json::uint(self.shed_watermark)),
            ("shed_capacity", Json::uint(self.shed_capacity)),
            ("shed_deadline", Json::uint(self.shed_deadline)),
            ("reaped_deadline", Json::uint(self.reaped_deadline)),
            ("breaker_open_served", Json::uint(self.breaker_open_served)),
            ("breaker_trips", Json::uint(self.breaker_trips)),
            ("breaker_state", Json::Str(self.breaker_state.to_string())),
            ("swaps", Json::uint(self.swaps)),
            ("generation", Json::uint(self.generation)),
            ("max_depth", Json::uint(self.max_depth as u64)),
            ("queue_depth", Json::uint(self.queue_depth as u64)),
            ("respawns", Json::uint(self.respawns)),
            ("workers_alive", Json::uint(self.workers_alive as u64)),
            ("workers_target", Json::uint(self.workers_target as u64)),
            ("rung_gnn", Json::uint(self.rung_gnn)),
            ("rung_fixed", Json::uint(self.rung_fixed)),
            ("rung_fallback", Json::uint(self.rung_fallback)),
            ("cache_hits", Json::uint(self.cache_hits)),
            ("cache_misses", Json::uint(self.cache_misses)),
            ("cache_inserts", Json::uint(self.cache_inserts)),
            ("cache_evictions", Json::uint(self.cache_evictions)),
            ("cache_invalidations", Json::uint(self.cache_invalidations)),
            ("cache_collisions", Json::uint(self.cache_collisions)),
            ("cache_lookup_faults", Json::uint(self.cache_lookup_faults)),
            ("health", Json::Str(self.health.to_string())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: ToJson + FromJson + PartialEq + std::fmt::Debug>(value: &T) {
        for text in [value.to_json().to_compact(), value.to_json().to_pretty()] {
            let parsed = Json::parse(&text).expect("parse back");
            let decoded = T::from_json(&parsed).expect("decode back");
            assert_eq!(&decoded, value, "round trip through: {text}");
        }
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::uint(42));
        assert_eq!(
            Json::parse("-17").unwrap(),
            Json::Num(Number::I64(-17))
        );
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::float(2500.0));
        assert_eq!(
            Json::parse("\"hi\"").unwrap(),
            Json::Str("hi".to_string())
        );
    }

    #[test]
    fn parses_structures_and_escapes() {
        let v = Json::parse(r#"{"a": [1, 2.0, "x\nyA"], "b": {}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_str().unwrap(),
            "x\nyA"
        );
        assert_eq!(v.get("b").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "tru", "\"open", "1 2", "{\"a\":}", ""] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn u64_seed_survives_exactly() {
        // Beyond 2^53: would be corrupted by a float-only number type.
        let seed = u64::MAX - 1;
        let text = Json::uint(seed).to_compact();
        assert_eq!(Json::parse(&text).unwrap().as_u64().unwrap(), seed);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for v in [0.1, 1.0 / 3.0, 0.7f64.ln(), f64::MIN_POSITIVE, 1e300] {
            let text = Json::float(v).to_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    /// Bit-level float round trip through encode → parse. Returns the
    /// re-decoded bits so callers can assert exact equality (plain `==`
    /// would treat -0.0 and 0.0 as equal and hide a lost sign).
    fn round_trip_bits(v: f64) -> u64 {
        let text = Json::float(v).to_compact();
        Json::parse(&text)
            .unwrap_or_else(|e| panic!("reparse {text:?}: {e}"))
            .as_f64()
            .unwrap()
            .to_bits()
    }

    #[test]
    fn f64_edge_cases_round_trip_bit_exactly() {
        for v in [
            0.0,
            -0.0, // sign of zero must survive
            f64::from_bits(1),         // smallest positive subnormal (5e-324)
            f64::from_bits(u64::MAX >> 12), // largest subnormal
            -f64::from_bits(1),
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            f64::EPSILON,
            0.123_456_789_012_345_68, // 17 significant digits
            1.000_000_000_000_000_2,  // one ulp above 1.0
            std::f64::consts::PI,
            2.225_073_858_507_201e-308, // largest subnormal, decimal form
        ] {
            assert_eq!(round_trip_bits(v), v.to_bits(), "{v:e}");
        }
    }

    #[test]
    fn f64_non_finite_encodes_as_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let text = Json::float(v).to_compact();
            assert_eq!(text, "null");
            assert_eq!(Json::parse(&text).unwrap(), Json::Null);
        }
    }

    qcheck::properties! {
        cases = 512;

        fn f64_round_trips_bit_exactly_from_any_bits(bits in qcheck::any_u64()) {
            // Every finite bit pattern — normal, subnormal, either zero —
            // must survive encode → parse with identical bits. (Non-finite
            // patterns encode as null by design; skip them.)
            let v = f64::from_bits(bits);
            qcheck::prop_assume!(v.is_finite());
            qcheck::prop_assert_eq!(round_trip_bits(v), bits);
        }

        fn f64_round_trips_inside_structures(
            values in qcheck::vec(qcheck::any_u64(), 0usize..8),
        ) {
            // The same guarantee when floats are nested in arrays/objects —
            // the path model weights actually take.
            let floats: Vec<f64> = values
                .iter()
                .map(|&b| f64::from_bits(b))
                .filter(|v| v.is_finite())
                .collect();
            let json = Json::Obj(vec![(
                "data".to_string(),
                Json::Arr(floats.iter().map(|&v| Json::float(v)).collect()),
            )]);
            for text in [json.to_compact(), json.to_pretty()] {
                let back = Json::parse(&text).unwrap();
                let arr = back.get("data").unwrap().as_arr().unwrap();
                qcheck::prop_assert_eq!(arr.len(), floats.len());
                for (got, want) in arr.iter().zip(&floats) {
                    qcheck::prop_assert_eq!(
                        got.as_f64().unwrap().to_bits(),
                        want.to_bits()
                    );
                }
            }
        }

        fn f64_uniform_range_round_trips(mantissa in qcheck::any_u64(), exp in 0u32..600) {
            // Decimal-ish magnitudes (1e-300 .. 1e300) rather than raw bit
            // patterns, to cover the values real configs carry.
            let v = (mantissa as f64 / u64::MAX as f64) * 10f64.powi(exp as i32 - 300);
            qcheck::prop_assume!(v.is_finite());
            qcheck::prop_assert_eq!(round_trip_bits(v), v.to_bits());
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "tab\there \"quoted\" back\\slash\nnew\u{1}line";
        let text = Json::Str(s.to_string()).to_compact();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn configs_round_trip() {
        round_trip(&LabelConfig::default());
        round_trip(&DatasetSpec::default());
        round_trip(&SdpConfig::paper_default());
        round_trip(&ModelConfig::default());
        round_trip(&TrainConfig::default());
        round_trip(&EvalConfig::default());
        round_trip(&PipelineConfig::paper_scale());
        round_trip(&PipelineConfig {
            sdp: None,
            seed: u64::MAX,
            ..PipelineConfig::quick()
        });
    }

    #[test]
    fn readout_variants_round_trip() {
        for r in [Readout::Mean, Readout::Sum, Readout::Max] {
            round_trip(&r);
        }
    }

    #[test]
    fn report_round_trips() {
        let report = EvaluationReport::from_comparisons(vec![
            GraphComparison {
                nodes: 8,
                degree: 3,
                random_ratio: 0.61,
                gnn_ratio: 0.87,
            },
            GraphComparison {
                nodes: 12,
                degree: 4,
                random_ratio: 0.7,
                gnn_ratio: 0.66,
            },
        ]);
        round_trip(&report);
    }

    #[test]
    fn train_history_round_trips() {
        let history = TrainHistory {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 0.31,
                    learning_rate: 0.01,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.22,
                    learning_rate: 0.005,
                },
            ],
            diverged: None,
        };
        round_trip(&history);
        round_trip(&TrainHistory::default());
    }

    #[test]
    fn divergence_event_survives_with_nan_loss_as_null() {
        let history = TrainHistory {
            epochs: vec![EpochStats {
                epoch: 0,
                train_loss: 0.5,
                learning_rate: 0.01,
            }],
            diverged: Some(DivergenceEvent {
                epoch: 1,
                loss: f64::NAN,
            }),
        };
        let text = history.to_json().to_compact();
        assert!(text.contains("\"loss\":null"), "{text}");
        let back = TrainHistory::from_json(&Json::parse(&text).unwrap()).unwrap();
        let event = back.diverged.expect("event survives");
        assert_eq!(event.epoch, 1);
        assert!(event.loss.is_nan());
        assert_eq!(back.epochs, history.epochs);
    }

    #[test]
    fn label_report_round_trips() {
        let report = LabelReport {
            total: 10,
            labeled: 8,
            skipped_isomorphic: 2,
            failures: vec![
                LabelFailure {
                    index: 3,
                    reason: LabelFailureReason::Panic("index out of bounds".to_string()),
                    recovered: true,
                },
                LabelFailure {
                    index: 7,
                    reason: LabelFailureReason::NonFinite("expectation".to_string()),
                    recovered: false,
                },
            ],
        };
        round_trip(&report);
        round_trip(&LabelReport::clean(5));
    }

    #[test]
    fn failure_policy_round_trips() {
        round_trip(&FailurePolicy::Skip);
        round_trip(&FailurePolicy::Halt);
        assert!(FailurePolicy::from_json(&Json::Str("abort".into())).is_err());
    }

    #[test]
    fn checkpointed_pipeline_config_round_trips() {
        round_trip(&PipelineConfig {
            checkpoint_dir: Some(std::path::PathBuf::from("/tmp/ckpt")),
            failure_policy: FailurePolicy::Halt,
            ..PipelineConfig::quick()
        });
    }

    #[test]
    fn pre_fault_tolerance_config_still_decodes() {
        // A config written before checkpoint_dir/failure_policy existed.
        let mut old = PipelineConfig::quick().to_json();
        if let Json::Obj(fields) = &mut old {
            fields.retain(|(k, _)| k != "checkpoint_dir" && k != "failure_policy");
        }
        let cfg = PipelineConfig::from_json(&Json::parse(&old.to_compact()).unwrap()).unwrap();
        assert_eq!(cfg.checkpoint_dir, None);
        assert_eq!(cfg.failure_policy, FailurePolicy::Skip);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let text = r#"{"depth": 1, "iterations": 80, "threads": 2, "future": true}"#;
        let cfg = LabelConfig::from_json(&Json::parse(text).unwrap()).unwrap();
        assert_eq!(cfg.iterations, 80);
    }

    #[test]
    fn missing_field_reports_its_name() {
        let text = r#"{"depth": 1}"#;
        let e = LabelConfig::from_json(&Json::parse(text).unwrap()).unwrap_err();
        assert!(e.0.contains("iterations"), "{e}");
    }
}
