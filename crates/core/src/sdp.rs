//! Selective Data Pruning (§3.3).
//!
//! Random initialization leaves many labels with approximation ratios near
//! 50%, which "misdirect the GNN's learning". Plain thresholding fixes the
//! quality but shrinks the dataset too much, so the paper adds a *selective
//! rate*: of the entries below the AR threshold, only a fraction is pruned
//! and the rest is preserved for coverage. `selective_rate = 0.7` keeps 70%
//! of the would-be-discarded data.

use qrand::Rng;

use crate::dataset::Dataset;

/// Selective-Data-Pruning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdpConfig {
    /// Approximation-ratio threshold below which an entry is a pruning
    /// candidate (paper's initial experiment: 0.7).
    pub threshold: f64,
    /// Fraction of below-threshold entries to *keep* (paper's example: 0.7
    /// keeps 70% of the otherwise-discarded data). `0.0` reduces to plain
    /// threshold pruning; `1.0` disables pruning entirely.
    pub selective_rate: f64,
}

impl SdpConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless both values lie in `[0, 1]`.
    pub fn new(threshold: f64, selective_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&selective_rate),
            "selective rate must be in [0, 1]"
        );
        SdpConfig {
            threshold,
            selective_rate,
        }
    }

    /// The paper's §3.3 working point: threshold 0.7, selective rate 0.7.
    pub fn paper_default() -> Self {
        SdpConfig::new(0.7, 0.7)
    }
}

/// Outcome statistics of one pruning pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdpStats {
    /// Entries in the input dataset.
    pub input: usize,
    /// Entries below the threshold (pruning candidates).
    pub below_threshold: usize,
    /// Candidates that were kept by the selective rate.
    pub kept_low_quality: usize,
    /// Entries actually removed.
    pub pruned: usize,
}

/// Applies Selective Data Pruning, returning the surviving dataset and the
/// pass statistics. Entry order is preserved.
pub fn prune<R: Rng + ?Sized>(
    dataset: &Dataset,
    config: &SdpConfig,
    rng: &mut R,
) -> (Dataset, SdpStats) {
    let mut below = 0usize;
    let mut kept_low = 0usize;
    let entries: Vec<_> = dataset
        .entries
        .iter()
        .filter(|e| {
            if e.approx_ratio >= config.threshold {
                return true;
            }
            below += 1;
            if rng.gen::<f64>() < config.selective_rate {
                kept_low += 1;
                true
            } else {
                false
            }
        })
        .cloned()
        .collect();
    let stats = SdpStats {
        input: dataset.len(),
        below_threshold: below,
        kept_low_quality: kept_low,
        pruned: below - kept_low,
    };
    (Dataset { entries }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledGraph;
    use qaoa::Params;
    use qgraph::Graph;
    use qrand::rngs::StdRng;
    use qrand::SeedableRng;

    fn entry(ar: f64) -> LabeledGraph {
        let graph = Graph::cycle(4).unwrap();
        LabeledGraph {
            graph,
            params: Params::zeros(1),
            expectation: ar * 4.0,
            optimal: 4.0,
            approx_ratio: ar,
        }
    }

    fn dataset(ars: &[f64]) -> Dataset {
        ars.iter().map(|&ar| entry(ar)).collect()
    }

    #[test]
    fn zero_threshold_is_noop() {
        let ds = dataset(&[0.1, 0.5, 0.9]);
        let mut rng = StdRng::seed_from_u64(121);
        let (pruned, stats) = prune(&ds, &SdpConfig::new(0.0, 0.0), &mut rng);
        assert_eq!(pruned, ds);
        assert_eq!(stats.pruned, 0);
        assert_eq!(stats.below_threshold, 0);
    }

    #[test]
    fn selective_rate_one_keeps_everything() {
        let ds = dataset(&[0.1, 0.2, 0.3]);
        let mut rng = StdRng::seed_from_u64(122);
        let (pruned, stats) = prune(&ds, &SdpConfig::new(0.9, 1.0), &mut rng);
        assert_eq!(pruned.len(), 3);
        assert_eq!(stats.below_threshold, 3);
        assert_eq!(stats.kept_low_quality, 3);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn selective_rate_zero_is_hard_threshold() {
        let ds = dataset(&[0.95, 0.4, 0.8, 0.2]);
        let mut rng = StdRng::seed_from_u64(123);
        let (pruned, stats) = prune(&ds, &SdpConfig::new(0.7, 0.0), &mut rng);
        assert_eq!(pruned.len(), 2);
        assert!(pruned.entries.iter().all(|e| e.approx_ratio >= 0.7));
        assert_eq!(stats.pruned, 2);
    }

    #[test]
    fn pruned_is_subset_and_order_preserved() {
        let ars: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let ds = dataset(&ars);
        let mut rng = StdRng::seed_from_u64(124);
        let (pruned, stats) = prune(&ds, &SdpConfig::paper_default(), &mut rng);
        assert!(pruned.len() <= ds.len());
        assert_eq!(stats.input, 50);
        assert_eq!(
            stats.input - stats.pruned,
            pruned.len(),
            "stats must be consistent"
        );
        // Surviving ARs appear in original relative order.
        let survivors: Vec<u64> = pruned.entries.iter().map(|e| e.approx_ratio.to_bits()).collect();
        let mut it = ds.entries.iter().map(|e| e.approx_ratio.to_bits());
        for s in survivors {
            assert!(it.any(|o| o == s), "survivor out of order");
        }
    }

    #[test]
    fn selective_rate_statistics() {
        // With rate 0.5 and many candidates, roughly half survive.
        let ds = dataset(&vec![0.1; 2000]);
        let mut rng = StdRng::seed_from_u64(125);
        let (pruned, stats) = prune(&ds, &SdpConfig::new(0.7, 0.5), &mut rng);
        let frac = pruned.len() as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "kept fraction {frac}");
        assert_eq!(stats.below_threshold, 2000);
    }

    #[test]
    fn pruning_raises_mean_quality() {
        let ars: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let ds = dataset(&ars);
        let before = ds.mean_approx_ratio();
        let mut rng = StdRng::seed_from_u64(126);
        let (pruned, _) = prune(&ds, &SdpConfig::new(0.7, 0.3), &mut rng);
        assert!(pruned.mean_approx_ratio() > before);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let _ = SdpConfig::new(1.5, 0.5);
    }

    #[test]
    #[should_panic(expected = "selective rate")]
    fn bad_rate_rejected() {
        let _ = SdpConfig::new(0.5, -0.1);
    }
}
