//! Micro-benchmarks for graph generation and exact Max-Cut — the
//! remaining fixed costs of building the labeled dataset.

use qbench::Bench;
use qrand::rngs::StdRng;
use qrand::SeedableRng;

use qgraph::{generate, maxcut};

fn bench_random_regular(bench: &mut Bench) {
    for degree in [2usize, 4, 8, 14] {
        let mut rng = StdRng::seed_from_u64(31);
        bench.bench_with_input("random_regular_n15", degree, move || {
            // n*d parity: 15 only works with even degrees; bump to 16.
            let n = if (15 * degree) % 2 == 0 { 15 } else { 16 };
            generate::random_regular(n, degree, &mut rng).expect("feasible shape")
        });
    }
}

fn bench_brute_force_maxcut(bench: &mut Bench) {
    bench.sample_size(10);
    for nodes in [10usize, 13, 15] {
        let mut rng = StdRng::seed_from_u64(32);
        let graph = generate::erdos_renyi(nodes, 0.4, &mut rng).expect("valid p");
        bench.bench_with_input("brute_force_maxcut", nodes, move || {
            maxcut::brute_force(&graph)
        });
    }
}

fn bench_heuristics(bench: &mut Bench) {
    let mut rng = StdRng::seed_from_u64(33);
    let graph = generate::erdos_renyi(15, 0.4, &mut rng).expect("valid p");
    bench.bench("maxcut_heuristics_n15/greedy", || maxcut::greedy(&graph));
    bench.bench("maxcut_heuristics_n15/local_search", || {
        maxcut::local_search(&graph, vec![false; 15])
    });
}

fn main() {
    let mut bench = Bench::from_env();
    bench_random_regular(&mut bench);
    bench_brute_force_maxcut(&mut bench);
    bench_heuristics(&mut bench);
    bench.finish();
}
