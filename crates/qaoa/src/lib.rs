//! # qaoa — Quantum Approximate Optimization Algorithm for Max-Cut
//!
//! The QAOA stack of the reproduction:
//!
//! * [`MaxCutHamiltonian`] — the diagonal cost operator
//!   `C = Σ w_uv (1 - Z_u Z_v)/2` built from a [`qgraph::Graph`], with its
//!   classical optimum attached.
//! * [`Params`] — the `(γ_1..γ_p, β_1..β_p)` parameter vector with random
//!   initialization (the paper's baseline).
//! * [`QaoaCircuit`] — prepares `|+⟩^n`, alternates phase separation
//!   `e^{-iγC}` and mixer `e^{-iβΣX}` layers on the [`qsim`] simulator, and
//!   evaluates the expectation `⟨C⟩`.
//! * [`Evaluator`] — the execution engine behind `QaoaCircuit`: owns a
//!   scratch state vector and runs every layer on [`qsim::fused`] kernels,
//!   so optimization traces perform zero state-vector allocations after
//!   setup. Hot paths (optimizers, labeling, landscape scans) use this
//!   directly; the one-shot `QaoaCircuit` calls are convenience wrappers.
//! * [`analytic`] — the closed-form p=1 edge expectation (Wang et al.),
//!   used both as an independent oracle for simulator tests and as the basis
//!   of the fixed-angle module.
//! * [`optimize`] — classical outer-loop optimizers: Nelder–Mead, SPSA,
//!   finite-difference Adam and p=1 grid search, all reporting iteration
//!   histories (the paper runs 500 iterations from random starts, §3.1).
//! * [`fixed_angle`] — the fixed-angle conjecture (Wurtz & Lykov) for
//!   d-regular graphs, §3.3.
//! * [`warm_start`] — end-to-end runner: initialize (randomly or from a
//!   prediction), optimize, report the approximation ratio.
//!
//! ## Example
//!
//! ```
//! use qaoa::{MaxCutHamiltonian, Params, QaoaCircuit};
//! use qgraph::Graph;
//!
//! # fn main() -> Result<(), qgraph::GraphError> {
//! let g = Graph::cycle(4)?;
//! let ham = MaxCutHamiltonian::new(&g);
//! let circuit = QaoaCircuit::new(ham);
//! // The paper-style p=1 ansatz at some angles:
//! let params = qaoa::Params::new(vec![0.6], vec![0.4]);
//! let expectation = circuit.expectation(&params);
//! assert!(expectation >= 0.0 && expectation <= 4.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod evaluator;
mod hamiltonian;
mod params;

pub mod analytic;
pub mod fixed_angle;
pub mod interp;
pub mod landscape;
pub mod optimize;
pub mod warm_start;

pub use circuit::QaoaCircuit;
pub use evaluator::Evaluator;
pub use hamiltonian::MaxCutHamiltonian;
pub use params::Params;
