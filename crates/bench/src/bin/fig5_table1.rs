//! Figure 5 + Table 1: approximation ratio of random initialization vs the
//! four GNN benchmarks on a held-out test set.
//!
//! Labels one dataset, then trains GAT, GCN, GIN and GraphSAGE on identical
//! splits and compares each against random initialization in the paper's
//! fixed-parameter setting. Per-graph AR series (Fig. 5) land in one CSV per
//! architecture; the improvement summary (Table 1) is printed and saved.

use qrand::rngs::StdRng;
use qrand::SeedableRng;

use gnn::GnnKind;
use qaoa_gnn::pipeline::{Pipeline, PipelineConfig};
use qaoa_gnn::store::artifact_path_for_kind;
use qaoa_gnn_bench::{f2, f4, label_dataset, print_table, write_csv};

fn main() {
    let config = PipelineConfig::from_env();
    println!(
        "dataset: {} graphs, {} labeling iterations, {} epochs, {} test graphs",
        config.dataset.count,
        config.labeling.iterations,
        config.training.epochs,
        config.test_size
    );
    println!("labeling (parallel across {} threads)...", config.labeling.threads);
    let dataset = label_dataset(&config);
    println!("mean label AR: {:.4}", dataset.mean_approx_ratio());

    let mut table1_rows = Vec::new();
    for kind in GnnKind::ALL {
        println!("\ntraining {kind}...");
        // With QAOA_GNN_ARTIFACT set, each architecture's run is saved as
        // its own artifact (base path suffixed per kind).
        let arch_config = config.clone().with_artifact_path(
            config
                .artifact_path
                .as_deref()
                .map(|base| artifact_path_for_kind(base, kind)),
        );
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xab);
        let pipeline = Pipeline::run_on_dataset(kind, dataset.clone(), &arch_config, &mut rng);
        if let Some(path) = &arch_config.artifact_path {
            println!("{kind}: saved run artifact -> {}", path.display());
        }
        if let Some(event) = &pipeline.history.diverged {
            println!(
                "{kind}: training diverged at epoch {} — best finite-epoch weights restored",
                event.epoch
            );
        }
        let report = &pipeline.report;

        // Figure 5 series: per test graph, random vs GNN AR.
        let rows: Vec<Vec<String>> = report
            .per_graph
            .iter()
            .enumerate()
            .map(|(i, c)| {
                vec![
                    i.to_string(),
                    c.nodes.to_string(),
                    c.degree.to_string(),
                    f4(c.random_ratio),
                    f4(c.gnn_ratio),
                    f2(c.improvement()),
                ]
            })
            .collect();
        let header = ["graph", "nodes", "degree", "ar_random", "ar_gnn", "improvement_pts"];
        let name = format!("fig5_{}.csv", kind.to_string().to_lowercase());
        let path = write_csv(&name, &header, &rows).expect("write csv");
        println!(
            "{kind}: mean improvement {} ± {} pts, win rate {:.2}, test MSE {:.5} -> {}",
            f2(report.mean_improvement),
            f2(report.std_improvement),
            report.win_rate(),
            pipeline.test_mse,
            path.display()
        );
        table1_rows.push(vec![
            kind.to_string(),
            format!("{} ± {}", f2(report.mean_improvement), f2(report.std_improvement)),
            f4(report.mean_random_ratio),
            f4(report.mean_gnn_ratio),
            f2(report.win_rate() * 100.0),
        ]);
    }

    let header = [
        "method",
        "improvement (pts)",
        "mean AR random",
        "mean AR gnn",
        "win rate %",
    ];
    print_table(
        "Table 1: average improvement over random initialization",
        &header,
        &table1_rows,
    );
    let path = write_csv("table1_improvements.csv", &header, &table1_rows).expect("write csv");
    println!("wrote {}", path.display());
    println!("(paper: GAT 3.28±9.99, GCN 3.65±10.17, GIN 3.66±9.97, GraphSAGE 2.86±10.01)");
}
